//! End-to-end smoke tests of the compiled `ddcr` binary: exit codes,
//! stdout/stderr routing, and argument diagnostics — what a packager's CI
//! would run.

use std::process::Command;

fn ddcr(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ddcr"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = ddcr(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(out.stderr.is_empty());
}

#[test]
fn xi_value_on_stdout() {
    let out = ddcr(&["xi", "--m", "4", "--n", "3", "--k", "2"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("xi_2 = 11"));
}

#[test]
fn unknown_command_fails_with_diagnostic_on_stderr() {
    let out = ddcr(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_flag_fails_with_flag_name() {
    let out = ddcr(&["xi", "--m", "4", "--n", "3", "--bogus", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn missing_value_reports_the_flag() {
    let out = ddcr(&["xi", "--m"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--m"));
}

#[test]
fn feasibility_pipeline_works_end_to_end() {
    let out = ddcr(&[
        "feasibility",
        "--scenario",
        "uniform",
        "--sources",
        "2",
        "--load",
        "0.1",
        "--deadline-ms",
        "10",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("FEASIBLE"));
}
