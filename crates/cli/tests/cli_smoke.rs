//! End-to-end smoke tests of the compiled `ddcr` binary: exit codes,
//! stdout/stderr routing, and argument diagnostics — what a packager's CI
//! would run.

use std::process::Command;

fn ddcr(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ddcr"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = ddcr(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(out.stderr.is_empty());
}

#[test]
fn xi_value_on_stdout() {
    let out = ddcr(&["xi", "--m", "4", "--n", "3", "--k", "2"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("xi_2 = 11"));
}

#[test]
fn unknown_command_fails_with_diagnostic_on_stderr() {
    let out = ddcr(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_flag_fails_with_flag_name() {
    let out = ddcr(&["xi", "--m", "4", "--n", "3", "--bogus", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn missing_value_reports_the_flag() {
    let out = ddcr(&["xi", "--m"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--m"));
}

// The two halves of `ddcr metrics`' live-ξ exit contract, previously only
// exercised by CI shell lines: a conforming run prints PASS and exits zero;
// any `Err` out of the command layer (a ξ violation takes exactly this
// path — see `metrics_verdict_is_err_on_xi_violation` in the command unit
// tests) lands on stderr with a non-zero exit.
#[test]
fn metrics_pass_exits_zero_and_command_errors_exit_nonzero() {
    let out = ddcr(&[
        "metrics",
        "--scenario",
        "uniform",
        "--sources",
        "4",
        "--load",
        "0.2",
        "--horizon-ms",
        "2",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("within the analytic bound: PASS"), "{stdout}");
    // `--stepper` belongs to `trace`; `metrics` rejects it inside the
    // command (not the parser), so this drives the same `Err` arm of `main`
    // a ξ violation would.
    let out = ddcr(&[
        "metrics",
        "--scenario",
        "uniform",
        "--sources",
        "4",
        "--stepper",
        "fast",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("stepper"));
}

// The fast-forward bisection flags must reject bad values with a non-zero
// exit naming the flag, and accept the documented on/off forms.
#[test]
fn trace_skip_flags_parse_strictly_at_the_binary_level() {
    // The bad value is rejected before the sink file is created, so the
    // --out path never materializes.
    let sink = std::env::temp_dir().join("ddcr_smoke_never_written.jsonl");
    let sink = sink.to_str().unwrap();
    for flag in ["--busy-skip", "--contention-skip"] {
        let out = ddcr(&[
            "trace",
            "--scenario",
            "uniform",
            "--sources",
            "2",
            "--horizon-ms",
            "1",
            "--out",
            sink,
            flag,
            "maybe",
        ]);
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(&flag[2..]), "{flag}: {stderr}");
    }
}

#[test]
fn feasibility_pipeline_works_end_to_end() {
    let out = ddcr(&[
        "feasibility",
        "--scenario",
        "uniform",
        "--sources",
        "2",
        "--load",
        "0.1",
        "--deadline-ms",
        "10",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("FEASIBLE"));
}
