//! `ddcr` — command-line front end for the CSMA/DDCR toolkit.
//!
//! ```text
//! ddcr xi --m 4 --n 3                  # Fig. 1's table
//! ddcr feasibility --scenario atc --sources 4 --medium gigabit
//! ddcr simulate --scenario stock --sources 6 --protocol ddcr
//! ```
//!
//! Run `ddcr help` for the full command list.

mod args;
mod commands;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
