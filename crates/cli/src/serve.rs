//! `ddcr serve` — long-running online admission control over JSONL.
//!
//! Reads one JSON object per line on stdin, applies it to a live
//! [`Membership`], and streams one JSON decision line per request on
//! stdout. The session protocol (see `docs/ADMISSION.md`):
//!
//! ```text
//! {"op":"join","station":0}
//! {"op":"leave","station":0}
//! {"op":"flow","station":0,"name":"telemetry","bits":8000,
//!  "deadline":5000000,"arrivals":1,"window":1000000}
//! {"op":"force-flow", ...same fields...}      operator override
//! {"op":"status"}
//! ```
//!
//! Every line gets exactly one reply; malformed input yields an
//! `{"ok":false,...}` line, never a crash — the whole input path is
//! panic-free by construction (hand-rolled field extraction, typed errors
//! end to end). At EOF a summary line is emitted and the process exits
//! non-zero iff a safety violation occurred (an operator override broke
//! the feasible-set invariant, or the invariant check itself failed).
//!
//! The reply stream is a pure function of the input stream and the
//! options: replaying a session is byte-identical (pinned in CI by the
//! `serve-smoke` job).

use ddcr_core::{AdmissionDecision, DdcrConfig, FlowRequest, Membership};
use ddcr_sim::{MediumConfig, SourceId, Ticks};
use std::io::{BufRead, Write};

/// Configuration of one serve session.
#[derive(Debug, Clone)]
pub struct Options {
    /// Attachment points `z`.
    pub sources: u32,
    /// Shared-medium timing.
    pub medium: MediumConfig,
    /// Deadline-class width `c` in ticks.
    pub class_width: Ticks,
    /// Static leaves granted per join.
    pub join_nu: u64,
    /// Parallel channels the admission predicate shards over (1 = the
    /// single shared medium of §4.3).
    pub channels: usize,
}

/// Extracts the raw value of `"key"` from a flat JSON object line.
///
/// Deliberately minimal (the serve protocol is flat objects with number
/// and plain-string values, no escapes or nesting) and panic-free: any
/// shape it does not understand is simply `None`, which the caller reports
/// as a malformed request.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let mut rest = line;
    loop {
        let at = rest.find(&pat)?;
        let after = &rest[at + pat.len()..];
        let trimmed = after.trim_start();
        if let Some(value) = trimmed.strip_prefix(':') {
            let value = value.trim_start();
            return if let Some(s) = value.strip_prefix('"') {
                s.find('"').map(|end| &s[..end])
            } else {
                let end = value
                    .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
                    .unwrap_or(value.len());
                Some(value[..end].trim())
            };
        }
        // The match was a value, not a key (e.g. a name containing the
        // pattern); keep scanning.
        rest = after;
    }
}

fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    field(line, key)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        .parse()
        .map_err(|_| format!("field \"{key}\" is not a non-negative integer"))
}

fn field_u32(line: &str, key: &str) -> Result<u32, String> {
    field(line, key)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        .parse()
        .map_err(|_| format!("field \"{key}\" is not a station index"))
}

/// JSON string escaping for the tiny subset our error messages need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn leaves_json(leaves: &[u64]) -> String {
    let items: Vec<String> = leaves.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn flow_request(line: &str) -> Result<FlowRequest, String> {
    Ok(FlowRequest {
        source: SourceId(field_u32(line, "station")?),
        name: field(line, "name").unwrap_or("flow").to_owned(),
        bits: field_u64(line, "bits")?,
        deadline: Ticks(field_u64(line, "deadline")?),
        arrivals: field_u64(line, "arrivals")?,
        window: Ticks(field_u64(line, "window")?),
    })
}

fn decision_json(op: &str, decision: &AdmissionDecision, forced: bool) -> String {
    let forced_part = if forced { ",\"forced\":true" } else { "" };
    match decision {
        AdmissionDecision::Admitted { class, bound, slack } => format!(
            "{{\"ok\":true,\"op\":\"{op}\",\"decision\":\"admit\",\"class\":{},\
             \"bound\":{bound:.3},\"slack\":{slack:.3}{forced_part}}}",
            class.0
        ),
        AdmissionDecision::Rejected { binding } => format!(
            "{{\"ok\":true,\"op\":\"{op}\",\"decision\":\"reject\",\
             \"binding_class\":{},\"bound\":{:.3},\"deadline\":{},\
             \"slack\":{:.3},\"term\":{}{forced_part}}}",
            binding.class.0,
            binding.bound,
            binding.deadline.as_u64(),
            binding.slack(),
            json_str(binding.dominant_term()),
        ),
        // `AdmissionDecision` is non-exhaustive upstream; an unknown
        // variant still gets a deterministic reply.
        _ => format!("{{\"ok\":true,\"op\":\"{op}\",\"decision\":\"unknown\"{forced_part}}}"),
    }
}

fn process_line(membership: &mut Membership, opts: &Options, line: &str) -> String {
    let op = match field(line, "op") {
        Some(op) => op,
        None => return "{\"ok\":false,\"error\":\"missing field \\\"op\\\"\"}".to_owned(),
    };
    let result: Result<String, String> = match op {
        "join" => field_u32(line, "station").and_then(|s| {
            membership
                .join(SourceId(s))
                .map(|r| {
                    format!(
                        "{{\"ok\":true,\"op\":\"join\",\"station\":{s},\"leaves\":{}}}",
                        leaves_json(&r.leaves)
                    )
                })
                .map_err(|e| e.to_string())
        }),
        "leave" => field_u32(line, "station").and_then(|s| {
            membership
                .leave(SourceId(s))
                .map(|r| {
                    let dropped: Vec<u64> =
                        r.dropped_flows.iter().map(|c| u64::from(c.0)).collect();
                    format!(
                        "{{\"ok\":true,\"op\":\"leave\",\"station\":{s},\
                         \"reclaimed\":{},\"dropped\":{}}}",
                        leaves_json(&r.leaves),
                        leaves_json(&dropped)
                    )
                })
                .map_err(|e| e.to_string())
        }),
        "flow" | "force-flow" => flow_request(line).and_then(|flow| {
            let forced = op == "force-flow";
            let decision = if forced {
                membership.force_admit(&flow).map_err(|e| e.to_string())?
            } else if opts.channels > 1 {
                let (decision, _budgets) = membership
                    .admit_multichannel(&flow, opts.channels)
                    .map_err(|e| e.to_string())?;
                decision
            } else {
                membership.admit(&flow).map_err(|e| e.to_string())?
            };
            Ok(decision_json(op, &decision, forced))
        }),
        "status" => Ok(format!(
            "{{\"ok\":true,\"op\":\"status\",\"members\":{},\"flows\":{},\
             \"free_leaves\":{},\"violations\":{}}}",
            membership.present_count(),
            membership.admitted().len(),
            membership.allocation().free_leaves().len(),
            membership.safety_violations()
        )),
        other => Err(format!("unknown op \"{other}\"")),
    };
    match result {
        Ok(reply) => reply,
        Err(e) => format!(
            "{{\"ok\":false,\"op\":{},\"error\":{}}}",
            json_str(op),
            json_str(&e)
        ),
    }
}

/// Runs one serve session: processes `input` line by line, writing one
/// reply line each plus a final summary. Returns whether the session ended
/// *safe* (no invariant breach, no operator-forced violation).
///
/// # Errors
///
/// Returns a message on configuration or I/O failure; request-level
/// problems are reported in-band as `{"ok":false,...}` lines.
pub fn run_session<R: BufRead, W: Write>(
    input: R,
    out: &mut W,
    opts: &Options,
) -> Result<bool, String> {
    let config = DdcrConfig::for_sources(opts.sources, opts.class_width)
        .map_err(|e| e.to_string())?;
    let mut membership =
        Membership::new(config, opts.medium, opts.sources, opts.join_nu)
            .map_err(|e| e.to_string())?;
    for line in input.lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = process_line(&mut membership, opts, trimmed);
        writeln!(out, "{reply}").map_err(|e| format!("stdout write failed: {e}"))?;
    }
    let invariant = membership.check_invariants();
    let safe = membership.safety_violations() == 0 && invariant.is_ok();
    let detail = match &invariant {
        Ok(()) => String::new(),
        Err(e) => format!(",\"invariant_error\":{}", json_str(&e.to_string())),
    };
    writeln!(
        out,
        "{{\"summary\":true,\"members\":{},\"flows\":{},\"violations\":{},\
         \"safe\":{safe}{detail}}}",
        membership.present_count(),
        membership.admitted().len(),
        membership.safety_violations()
    )
    .map_err(|e| format!("stdout write failed: {e}"))?;
    Ok(safe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            sources: 4,
            medium: MediumConfig::ethernet(),
            class_width: Ticks(100_000),
            join_nu: 1,
            channels: 1,
        }
    }

    fn run(script: &str, opts: &Options) -> (String, bool) {
        let mut out = Vec::new();
        let safe = run_session(script.as_bytes(), &mut out, opts).unwrap();
        (String::from_utf8(out).unwrap(), safe)
    }

    #[test]
    fn field_extraction_handles_the_protocol_subset() {
        let line = r#"{"op":"flow","station":2,"name":"a b","bits": 8000 ,"window":10}"#;
        assert_eq!(field(line, "op"), Some("flow"));
        assert_eq!(field(line, "station"), Some("2"));
        assert_eq!(field(line, "name"), Some("a b"));
        assert_eq!(field(line, "bits"), Some("8000"));
        assert_eq!(field(line, "window"), Some("10"));
        assert_eq!(field(line, "absent"), None);
        // A value that happens to contain a key pattern is skipped over.
        let tricky = r#"{"name":"\"op\" is not here","op":"join"}"#;
        assert_eq!(field(tricky, "op"), Some("join"));
    }

    #[test]
    fn clean_session_is_safe_and_replies_per_line() {
        let script = "\
{\"op\":\"join\",\"station\":0}\n\
{\"op\":\"flow\",\"station\":0,\"name\":\"t\",\"bits\":8000,\"deadline\":50000000,\"arrivals\":1,\"window\":10000000}\n\
{\"op\":\"status\"}\n\
{\"op\":\"leave\",\"station\":0}\n";
        let (out, safe) = run(script, &opts());
        assert!(safe);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "4 replies + summary: {out}");
        assert!(lines[0].contains("\"op\":\"join\"") && lines[0].contains("\"leaves\":[0]"));
        assert!(lines[1].contains("\"decision\":\"admit\""));
        assert!(lines[2].contains("\"flows\":1"));
        assert!(lines[3].contains("\"dropped\":[0]"));
        assert!(lines[4].contains("\"safe\":true"));
    }

    #[test]
    fn rejection_cites_the_violated_term() {
        let script = "\
{\"op\":\"join\",\"station\":0}\n\
{\"op\":\"flow\",\"station\":0,\"name\":\"hog\",\"bits\":8000,\"deadline\":500000,\"arrivals\":1000,\"window\":100000}\n";
        let (out, safe) = run(script, &opts());
        assert!(safe, "a rejection is safe — the flow was refused");
        let reject = out.lines().nth(1).unwrap();
        assert!(reject.contains("\"decision\":\"reject\""), "{reject}");
        assert!(reject.contains("\"term\":\""), "{reject}");
        assert!(reject.contains("\"slack\":-"), "{reject}");
    }

    #[test]
    fn forced_violation_marks_the_session_unsafe() {
        let script = "\
{\"op\":\"join\",\"station\":0}\n\
{\"op\":\"force-flow\",\"station\":0,\"name\":\"hog\",\"bits\":8000,\"deadline\":500000,\"arrivals\":1000,\"window\":100000}\n";
        let (out, safe) = run(script, &opts());
        assert!(!safe);
        assert!(out.contains("\"forced\":true"));
        assert!(out.contains("\"violations\":1"));
        assert!(out.contains("\"safe\":false"));
    }

    #[test]
    fn malformed_lines_get_error_replies_not_crashes() {
        let script = "\
not json at all\n\
{\"op\":\"warp\",\"station\":0}\n\
{\"op\":\"join\"}\n\
{\"op\":\"join\",\"station\":99}\n\
{\"op\":\"flow\",\"station\":0}\n\
\n\
{\"op\":\"join\",\"station\":1}\n";
        let (out, safe) = run(script, &opts());
        assert!(safe);
        let lines: Vec<&str> = out.lines().collect();
        // 6 non-empty inputs → 6 replies + summary.
        assert_eq!(lines.len(), 7, "{out}");
        for bad in &lines[..5] {
            assert!(bad.contains("\"ok\":false"), "{bad}");
        }
        assert!(lines[5].contains("\"ok\":true"));
    }

    #[test]
    fn replay_is_byte_identical() {
        let script = "\
{\"op\":\"join\",\"station\":0}\n\
{\"op\":\"join\",\"station\":1}\n\
{\"op\":\"flow\",\"station\":0,\"name\":\"a\",\"bits\":8000,\"deadline\":50000000,\"arrivals\":1,\"window\":10000000}\n\
{\"op\":\"leave\",\"station\":0}\n\
{\"op\":\"join\",\"station\":2}\n\
{\"op\":\"status\"}\n";
        let (a, _) = run(script, &opts());
        let (b, _) = run(script, &opts());
        assert_eq!(a, b);
    }

    #[test]
    fn multichannel_predicate_runs() {
        let mut o = opts();
        o.channels = 4;
        let script = "\
{\"op\":\"join\",\"station\":0}\n\
{\"op\":\"flow\",\"station\":0,\"name\":\"t\",\"bits\":8000,\"deadline\":50000000,\"arrivals\":1,\"window\":10000000}\n";
        let (out, safe) = run(script, &o);
        assert!(safe);
        assert!(out.contains("\"decision\":\"admit\""), "{out}");
    }
}
