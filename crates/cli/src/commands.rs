//! The `ddcr` subcommands: analysis, feasibility, dimensioning, and
//! simulation front ends over the library crates.

use crate::args::{ArgError, Args};
use ddcr_baseline::QueueDiscipline;
use ddcr_core::{dimensioning, feasibility, federate, multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::federation::{FederationFaultSpec, FederationOptions};
use ddcr_sim::{
    CollisionMode, Engine, FaultPlan, FaultRates, JsonlSink, MediumConfig, SimMetrics, SourceId,
    Ticks,
};
use ddcr_traffic::{scenario, MessageSet, ScheduleBuilder};
use ddcr_tree::{asymptotic, closed_form, witness, TreeShape};
use std::fmt::Write as _;

/// Top-level dispatch; returns the text to print.
///
/// # Errors
///
/// Returns a user-facing message for unknown commands, bad flags, or
/// failed runs.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command() {
        Some("xi") => cmd_xi(args).map_err(|e| e.to_string()),
        Some("witness") => cmd_witness(args).map_err(|e| e.to_string()),
        Some("feasibility") => cmd_feasibility(args),
        Some("dimension") => cmd_dimension(args),
        Some("simulate") => cmd_simulate(args),
        Some("sweep") => cmd_sweep(args),
        Some("multibus") => cmd_multibus(args),
        Some("run") => cmd_run(args),
        Some("check") => cmd_check(args),
        Some("faults") => cmd_faults(args),
        Some("metrics") => cmd_metrics(args),
        Some("trace") => cmd_trace(args),
        Some("bench-engine") => cmd_bench_engine(args),
        Some("serve") => cmd_serve(args),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "\
ddcr — CSMA/Deadline-Driven Collision Resolution toolkit (Hermant & Le Lann, ICDCS 1998)

USAGE: ddcr <command> [--flag value]...

COMMANDS
  xi           worst-case tree-search times ξ_k^t
                 --m M --n N [--k K]            (table when --k omitted)
  witness      a leaf placement achieving ξ_k^t
                 --m M --n N --k K
  feasibility  §4.3 feasibility report for a scenario
                 --scenario video|atc|stock|uniform --sources Z
                 [--load L --deadline-ms D --bits B] (uniform only)
                 [--medium ethernet|gigabit|atm]
  dimension    automated search for a provable configuration
                 --scenario ... --sources Z [--medium ...]
  simulate     run a peak-load workload through a protocol
                 --scenario ... --sources Z --protocol ddcr|csma-cd|dcr|np-edf
                 [--horizon-ms H] [--seed S] [--medium ...]
  sweep        compare all protocols over a peak-load workload, in parallel
                 --scenario ... --sources Z
                 [--horizon-ms H] [--seed S] [--jobs J] [--medium ...]
                 (J worker threads; default from DDCR_JOBS or core count;
                  results are identical for every J)
  multibus     per-bus feasibility over parallel media
                 --scenario ... --sources Z --buses B [--medium ...]
  run          multichannel parallel DDCR: shard the medium over C channels,
                 one deterministic engine per channel on a worker pool, with
                 per-channel xi budgets, metrics, optional channel-tagged
                 JSONL trace, and optional per-channel fault plans
                 --scenario ... --sources Z [--channels C] [--jobs J]
                 [--horizon-ms H] [--seed S] [--trace-out PATH]
                 [--corrupt P --erase P --crash P --down SLOTS] [--medium ...]
                 (output and trace are identical for every J; C=1 trace is
                  byte-identical to `ddcr trace`; see docs/MULTICHANNEL.md)
                 or: --segments N [--epoch-ms E] [same flags, minus
                 --channels]: federated DDCR — N bridged segments advance
                 in epoch-aligned rounds on a shared virtual clock, transit
                 classes handed off at epoch boundaries, scheduled over a
                 work-stealing pool of J workers (output and trace are
                 identical for every J; N=1 trace is byte-identical to
                 `ddcr trace`; see docs/FEDERATION.md)
  check        bounded exhaustive model check of the protocol
                 [--scope small|medium] [--mode destructive|arbitrating]
                 [--membership true [--seed S]]  (interleave seeded
                   leave/rejoin churn with adversarial faults and check no
                   surviving flow misses its deadline)
  faults       deterministic fault injection (slot corruption, frame
                 erasure, station crashes)
                 --check small|medium [--mode destructive|arbitrating] [--seed S]
                   (seeded adversarial model check: safety + bounded healing)
                 or: --scenario ... --sources Z [--corrupt P --erase P
                     --crash P --down SLOTS] [--horizon-ms H] [--seed S]
                     [--medium ...]  (one faulted DDCR run, replayable by seed)
  metrics      streaming observability report for a DDCR run: phase slot
                 accounting, per-station counters, latency percentiles, and
                 live observed-ξ checks against the analytic ξ_k^t bound
                 (exits non-zero on any violation)
                 --scenario ... --sources Z [--horizon-ms H] [--retain N]
                 [--medium ...]  (see docs/OBSERVABILITY.md)
  trace        stream the slot-level channel trace of a DDCR run as JSONL
                 --scenario ... --sources Z --out PATH
                 [--stepper fast|reference] [--busy-skip on|off]
                 [--contention-skip on|off] [--active-set on|off]
                 [--horizon-ms H] [--medium ...]
                 (the byte stream is identical for every stepper,
                  busy-skip, contention-skip, and active-set combination;
                  the independent switches exist for bisecting a
                  divergence to one fast path)
  bench-engine engine hot-path perf suite; writes the BENCH_engine.json gate
                 [--profile smoke|full] [--out PATH]  (see docs/PERF.md)
  serve        long-running online admission control: JSONL requests on
                 stdin (join/leave/flow/force-flow/status), one decision
                 line each on stdout, B_DDCR as the admission predicate
                 --sources Z [--class-width TICKS] [--join-nu N]
                 [--channels C] [--medium ...]
                 (replaying a session is byte-identical; exits non-zero on
                  any safety violation; see docs/ADMISSION.md)
  help         this text
"
    .to_owned()
}

fn shape_from(args: &Args) -> Result<TreeShape, ArgError> {
    let m: u64 = args.require_typed("m")?;
    let n: u32 = args.require_typed("n")?;
    TreeShape::new(m, n).map_err(|e| ArgError(e.to_string()))
}

fn cmd_xi(args: &Args) -> Result<String, ArgError> {
    args.allow_only(&["m", "n", "k"])?;
    let shape = shape_from(args)?;
    let table = ddcr_tree::cache::global()
        .worst_case(shape)
        .map_err(|e| ArgError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "{shape}");
    match args.get("k") {
        Some(_) => {
            let k: u64 = args.require_typed("k")?;
            let xi = table.xi(k).map_err(|e| ArgError(e.to_string()))?;
            let _ = writeln!(out, "xi_{k} = {xi}");
            if (2..=2 * shape.leaves() / shape.branching()).contains(&k) {
                let _ = writeln!(
                    out,
                    "xi~_{k} = {:.4} (asymptotic bound, Eq. 11)",
                    asymptotic::xi_tilde(shape, k as f64)
                );
            }
        }
        None => {
            let _ = writeln!(out, "{:>5} {:>10}", "k", "xi_k");
            for (k, xi) in table.iter() {
                let _ = writeln!(out, "{k:>5} {xi:>10}");
            }
            let _ = writeln!(
                out,
                "peak at k = {} (value {}, Eq. 6); xi_t = {} (Eq. 7)",
                closed_form::peak_k(shape),
                closed_form::xi_peak(shape),
                closed_form::xi_full(shape)
            );
        }
    }
    Ok(out)
}

fn cmd_witness(args: &Args) -> Result<String, ArgError> {
    args.allow_only(&["m", "n", "k"])?;
    let shape = shape_from(args)?;
    let k: u64 = args.require_typed("k")?;
    let leaves =
        witness::worst_case_witness(shape, k).map_err(|e| ArgError(e.to_string()))?;
    let xi = closed_form::xi_closed(shape, k).map_err(|e| ArgError(e.to_string()))?;
    Ok(format!(
        "{shape}, k = {k}: xi = {xi} slots\nworst-case active leaves: {leaves:?}\n"
    ))
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    args.allow_only(&["sources", "medium", "class-width", "join-nu", "channels"])
        .map_err(|e| e.to_string())?;
    let opts = crate::serve::Options {
        sources: args.require_typed("sources").map_err(|e| e.to_string())?,
        medium: medium_from(args)?,
        class_width: Ticks(args.get_or("class-width", 100_000).map_err(|e| e.to_string())?),
        join_nu: args.get_or("join-nu", 1).map_err(|e| e.to_string())?,
        channels: args.get_or("channels", 1).map_err(|e| e.to_string())?,
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let safe = crate::serve::run_session(stdin.lock(), &mut stdout.lock(), &opts)?;
    if safe {
        Ok(String::new())
    } else {
        Err("serve session ended with a safety violation (see summary line)".to_owned())
    }
}

fn medium_from(args: &Args) -> Result<MediumConfig, String> {
    match args.get("medium").unwrap_or("ethernet") {
        "ethernet" => Ok(MediumConfig::ethernet()),
        "gigabit" => Ok(MediumConfig::gigabit_ethernet()),
        "atm" => Ok(MediumConfig::atm_internal_bus()),
        other => Err(format!("unknown medium `{other}` (ethernet|gigabit|atm)")),
    }
}

fn set_from(args: &Args) -> Result<MessageSet, String> {
    let z: u32 = args.require_typed("sources").map_err(|e| e.to_string())?;
    match args.require("scenario").map_err(|e| e.to_string())? {
        "video" => scenario::videoconference(z).map_err(|e| e.to_string()),
        "atc" => scenario::air_traffic_control(z).map_err(|e| e.to_string()),
        "stock" => scenario::stock_exchange(z).map_err(|e| e.to_string()),
        "uniform" => {
            let load: f64 = args.get_or("load", 0.3).map_err(|e| e.to_string())?;
            let d_ms: u64 = args.get_or("deadline-ms", 5).map_err(|e| e.to_string())?;
            let bits: u64 = args.get_or("bits", 8_000).map_err(|e| e.to_string())?;
            scenario::uniform(z, bits, Ticks(d_ms * 1_000_000), load)
                .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown scenario `{other}` (video|atc|stock|uniform)"
        )),
    }
}

fn setup(
    set: &MessageSet,
    medium: &MediumConfig,
) -> Result<(DdcrConfig, StaticAllocation), String> {
    let c = network::recommended_class_width(set, 64, medium);
    let config = DdcrConfig::for_sources(set.sources(), c).map_err(|e| e.to_string())?;
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .map_err(|e| e.to_string())?;
    Ok((config, allocation))
}

fn cmd_feasibility(args: &Args) -> Result<String, String> {
    args.allow_only(&["scenario", "sources", "load", "deadline-ms", "bits", "medium"])
        .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let (config, allocation) = setup(&set, &medium)?;
    let report =
        feasibility::evaluate(&set, &config, &allocation, &medium).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} sources, load {:.3}, c = {}, horizon = {}",
        set.sources(),
        set.offered_load(),
        config.class_width,
        config.horizon()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>6} {:>6} {:>4} {:>14} {:>12} {:>9}",
        "class", "source", "r", "u", "v", "B_DDCR", "deadline", "feasible"
    );
    for c in &report.per_class {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>6} {:>6} {:>4} {:>14.0} {:>12} {:>9}",
            c.class.to_string(),
            c.source.to_string(),
            c.r,
            c.u,
            c.v,
            c.bound,
            c.deadline.as_u64(),
            c.feasible
        );
    }
    let _ = writeln!(
        out,
        "instance: {}",
        if report.feasible() { "FEASIBLE" } else { "INFEASIBLE" }
    );
    Ok(out)
}

fn cmd_dimension(args: &Args) -> Result<String, String> {
    args.allow_only(&["scenario", "sources", "load", "deadline-ms", "bits", "medium"])
        .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let candidates = dimensioning::dimension(&set, &medium, &Default::default())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "top candidates (of {} evaluated):", candidates.len());
    let _ = writeln!(
        out,
        "{:>20} {:>14} {:>10} {:>14} {:>16} {:>9}",
        "time tree", "static tree", "c (ticks)", "strategy", "min slack", "feasible"
    );
    for cand in candidates.iter().take(8) {
        let _ = writeln!(
            out,
            "{:>20} {:>14} {:>10} {:>14} {:>16.3e} {:>9}",
            cand.config.time_tree.to_string(),
            cand.config.static_tree.to_string(),
            cand.config.class_width.as_u64(),
            format!("{:?}", cand.strategy),
            cand.min_slack(),
            cand.feasible()
        );
    }
    match candidates.first() {
        Some(best) if best.feasible() => {
            let _ = writeln!(out, "recommended: the first row (provably feasible).");
        }
        _ => {
            let _ = writeln!(
                out,
                "no provable configuration in the default search space — reduce load \
                 or relax deadlines."
            );
        }
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "protocol",
        "horizon-ms",
        "seed",
    ])
    .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let n = schedule.len();
    let budget = Ticks(1_000_000_000_000);
    let stats = match args.require("protocol").map_err(|e| e.to_string())? {
        "ddcr" => {
            let (config, allocation) = setup(&set, &medium)?;
            network::run(
                &set,
                schedule,
                &config,
                &allocation,
                medium,
                network::RunLimit::Completion(budget),
            )
            .map_err(|e| e.to_string())?
        }
        "csma-cd" => {
            let mut engine = Engine::new(medium).map_err(|e| e.to_string())?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(ddcr_baseline::CsmaCdStation::new(
                    SourceId(i),
                    medium,
                    QueueDiscipline::Edf,
                    seed,
                )));
            }
            engine.add_arrivals(schedule).map_err(|e| e.to_string())?;
            let _ = engine.run_to_completion(budget);
            engine.into_stats()
        }
        "dcr" => {
            let mut engine = Engine::new(medium).map_err(|e| e.to_string())?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(
                    ddcr_baseline::DcrStation::new(
                        SourceId(i),
                        set.sources(),
                        medium,
                        QueueDiscipline::Edf,
                    )
                    .map_err(|e| e.to_string())?,
                ));
            }
            engine.add_arrivals(schedule).map_err(|e| e.to_string())?;
            let _ = engine.run_to_completion(budget);
            engine.into_stats()
        }
        "np-edf" => ddcr_baseline::NpEdfOracle::run_schedule(medium, schedule, budget)
            .map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "unknown protocol `{other}` (ddcr|csma-cd|dcr|np-edf)"
            ))
        }
    };
    Ok(format!(
        "scheduled {n}, delivered {}, misses {}, max latency {} ticks, \
         mean latency {:.0} ticks, utilization {:.3}, collisions {}\n",
        stats.deliveries.len(),
        stats.deadline_misses() + (n - stats.deliveries.len()),
        stats.max_latency().as_u64(),
        stats.mean_latency(),
        stats.utilization(),
        stats.collisions
    ))
}

fn cmd_sweep(args: &Args) -> Result<String, String> {
    use ddcr_bench::harness::{default_ddcr_config, ProtocolKind};
    use ddcr_bench::sweep::{SweepConfig, SweepGrid};

    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "horizon-ms",
        "seed",
        "jobs",
    ])
    .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let master_seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let jobs: Option<usize> = match args.get("jobs") {
        None => None,
        Some(_) => Some(args.require_typed("jobs").map_err(|e| e.to_string())?),
    };
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let kinds = [
        ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
        ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 0),
        ProtocolKind::CsmaCd(QueueDiscipline::Edf, 0),
        ProtocolKind::Dcr(QueueDiscipline::Edf),
        ProtocolKind::NpEdf,
    ];
    let mut grid = SweepGrid::new();
    grid.push_comparison(
        args.require("scenario").map_err(|e| e.to_string())?,
        &kinds,
        &set,
        &schedule,
        medium,
        Ticks(1_000_000_000_000),
    );
    let report = grid.run(SweepConfig::resolve(jobs, master_seed));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>9} {:>7} {:>12} {:>12} {:>7} {:>10}",
        "protocol", "sched", "delivered", "misses", "mean_lat", "max_lat", "util", "collisions"
    );
    for summary in report.summaries()? {
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>9} {:>7} {:>12.0} {:>12} {:>7.3} {:>10}",
            summary.protocol,
            summary.scheduled,
            summary.delivered,
            summary.misses,
            summary.mean_latency,
            summary.max_latency,
            summary.utilization,
            summary.collisions
        );
    }
    let _ = writeln!(out, "{}", report.perf_line());
    Ok(out)
}

fn cmd_multibus(args: &Args) -> Result<String, String> {
    args.allow_only(&["scenario", "sources", "load", "deadline-ms", "bits", "medium", "buses"])
        .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let buses: usize = args.get_or("buses", 2).map_err(|e| e.to_string())?;
    let (config, allocation) = setup(&set, &medium)?;
    let assignment = multibus::balance_by_load(&set, buses);
    let reports = multibus::evaluate(&set, &assignment, &config, &allocation, &medium)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (bus, report) in reports.iter().enumerate() {
        let projected = assignment.project(&set, bus).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "bus {bus}: {} classes, load {:.3}, {}",
            projected.classes().len(),
            projected.offered_load(),
            if report.feasible() { "FEASIBLE" } else { "INFEASIBLE" }
        );
    }
    let _ = writeln!(
        out,
        "instance over {buses} busses: {}",
        if reports.iter().all(|r| r.feasible()) {
            "FEASIBLE"
        } else {
            "INFEASIBLE"
        }
    );
    Ok(out)
}

fn cmd_run(args: &Args) -> Result<String, String> {
    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "channels",
        "segments",
        "epoch-ms",
        "jobs",
        "horizon-ms",
        "seed",
        "trace-out",
        "corrupt",
        "erase",
        "crash",
        "down",
    ])
    .map_err(|e| e.to_string())?;
    if args.get("segments").is_some() {
        return cmd_run_segments(args);
    }
    if args.get("epoch-ms").is_some() {
        return Err("--epoch-ms only applies to --segments runs".into());
    }
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let channels: usize = args.get_or("channels", 2).map_err(|e| e.to_string())?;
    if channels == 0 {
        return Err("--channels must be at least 1".into());
    }
    let jobs: usize = args.get_or("jobs", channels).map_err(|e| e.to_string())?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let (config, allocation) = setup(&set, &medium)?;
    let assignment = multibus::balance_by_load(&set, channels);
    let budgets = multibus::channel_budgets(&set, &assignment, &config, &allocation, &medium)
        .map_err(|e| e.to_string())?;
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let n = schedule.len();

    let mut options = multibus::RunOptions::new(Ticks(1_000_000_000_000));
    options.workers = jobs;
    options.metrics = true;
    options.trace = args.get("trace-out").is_some();
    let faulted = ["corrupt", "erase", "crash", "down"]
        .iter()
        .any(|f| args.get(f).is_some());
    if faulted {
        let rates = FaultRates {
            corrupt: args.get_or("corrupt", 0.0).map_err(|e| e.to_string())?,
            erase: args.get_or("erase", 0.0).map_err(|e| e.to_string())?,
            crash: args.get_or("crash", 0.0).map_err(|e| e.to_string())?,
            down_slots: args.get_or("down", 64).map_err(|e| e.to_string())?,
        };
        // Same slot-horizon rule as `ddcr faults`: over-cover the arrival
        // horizon, doubled for the drain tail.
        let horizon_slots = 2 * horizon_ms * 1_000_000 / medium.slot_ticks.max(1);
        options.faults = Some(multibus::FaultSpec {
            master_seed: seed,
            rates,
            horizon_slots,
        });
    }
    let report = multibus::run_channels(
        &set,
        schedule,
        &assignment,
        &config,
        &allocation,
        medium,
        &options,
    )
    .map_err(|e| e.to_string())?;

    // Deterministic stdout: no wall-clock and no worker count, so the
    // output is byte-identical for every `--jobs`.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} sources over {channels} channel(s), load {:.3}, c = {}",
        set.sources(),
        set.offered_load(),
        config.class_width
    );
    let _ = writeln!(
        out,
        "{:>7} {:>7} {:>8} {:>5} {:>4} {:>10} {:>9} {:>9} {:>9} {:>7} {:>11} {:>7}",
        "channel", "classes", "load", "u", "v", "p2_slots", "feasible", "scheduled", "delivered",
        "misses", "xi_violate", "faults"
    );
    for (budget, outcome) in budgets.iter().zip(&report.channels) {
        let violations = outcome
            .metrics
            .as_ref()
            .map_or(0, |m| m.violations_total);
        let _ = writeln!(
            out,
            "{:>7} {:>7} {:>8.3} {:>5} {:>4} {:>10.1} {:>9} {:>9} {:>9} {:>7} {:>11} {:>7}",
            outcome.channel,
            outcome.classes,
            budget.offered_load,
            budget.u,
            budget.v,
            budget.p2_slots,
            budget.feasible,
            outcome.scheduled,
            outcome.stats.deliveries.len(),
            outcome.stats.deadline_misses(),
            violations,
            outcome.fault_events
        );
    }
    let _ = writeln!(
        out,
        "fabric: {}; scheduled {n}, delivered {}, misses {}, drained {}",
        if budgets.iter().all(|b| b.feasible) {
            "FEASIBLE"
        } else {
            "INFEASIBLE"
        },
        report.delivered(),
        report.deadline_misses(),
        report.completed()
    );
    if let Some(path) = args.get("trace-out") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        let events = report
            .write_trace(&mut writer)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        use std::io::Write as _;
        writer
            .flush()
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote {events} events ({} v{}) to {path}",
            ddcr_sim::TRACE_SCHEMA,
            if channels == 1 {
                ddcr_sim::TRACE_SCHEMA_VERSION
            } else {
                ddcr_sim::TRACE_MULTICHANNEL_VERSION
            }
        );
    }
    let violations = report.xi_violations();
    if violations == 0 {
        let _ = writeln!(out, "observed xi within the analytic bound: PASS");
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "observed xi EXCEEDED the analytic bound {violations} time(s)"
        );
        Err(out)
    }
}

/// `ddcr run --segments N`: the federated sibling of the multichannel
/// path. N bridged DDCR segments advance in epoch-aligned rounds on a
/// shared virtual clock; every fourth class transits to the next segment
/// through a deterministic bridge queue. Stdout and the optional trace
/// are byte-identical for every `--jobs`.
fn cmd_run_segments(args: &Args) -> Result<String, String> {
    if args.get("channels").is_some() {
        return Err("--segments and --channels are mutually exclusive".into());
    }
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let segments: usize = args.get_or("segments", 2).map_err(|e| e.to_string())?;
    if segments == 0 {
        return Err("--segments must be at least 1".into());
    }
    let jobs: usize = args.get_or("jobs", segments).map_err(|e| e.to_string())?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let epoch_ms: u64 = args.get_or("epoch-ms", 1).map_err(|e| e.to_string())?;
    if epoch_ms == 0 {
        return Err("--epoch-ms must be at least 1".into());
    }
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let (config, allocation) = setup(&set, &medium)?;
    let assignment = multibus::balance_by_load(&set, segments);
    let routes = federate::transit_routes(&set, &assignment, 4);
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let n = schedule.len();

    let mut options =
        FederationOptions::new(Ticks(epoch_ms * 1_000_000), Ticks(1_000_000_000_000));
    options.workers = jobs;
    options.metrics = true;
    options.trace = args.get("trace-out").is_some();
    let faulted = ["corrupt", "erase", "crash", "down"]
        .iter()
        .any(|f| args.get(f).is_some());
    if faulted {
        let rates = FaultRates {
            corrupt: args.get_or("corrupt", 0.0).map_err(|e| e.to_string())?,
            erase: args.get_or("erase", 0.0).map_err(|e| e.to_string())?,
            crash: args.get_or("crash", 0.0).map_err(|e| e.to_string())?,
            down_slots: args.get_or("down", 64).map_err(|e| e.to_string())?,
        };
        // Same slot-horizon rule as the multichannel path: over-cover the
        // arrival horizon, doubled for the drain tail.
        let horizon_slots = 2 * horizon_ms * 1_000_000 / medium.slot_ticks.max(1);
        options.faults = Some(FederationFaultSpec {
            master_seed: seed,
            rates,
            horizon_slots,
        });
    }
    let report = federate::run_segments(
        &set,
        schedule,
        &assignment,
        &routes,
        &config,
        &allocation,
        medium,
        &options,
    )
    .map_err(|e| e.to_string())?;

    // Deterministic stdout: no wall-clock and no worker count, so the
    // output is byte-identical for every `--jobs`.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} sources over {segments} segment(s), epoch {epoch_ms} ms, load {:.3}, c = {}, \
         {} bridged class(es)",
        set.sources(),
        set.offered_load(),
        config.class_width,
        routes.len()
    );
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>8} {:>9} {:>7} {:>11} {:>7} {:>7}",
        "segment", "scheduled", "injected", "delivered", "misses", "xi_violate", "faults",
        "drained"
    );
    for outcome in &report.segments {
        let violations = outcome
            .metrics
            .as_ref()
            .map_or(0, |m| m.violations_total);
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>8} {:>9} {:>7} {:>11} {:>7} {:>7}",
            outcome.segment,
            outcome.scheduled,
            outcome.injected,
            outcome.stats.delivered,
            outcome.stats.missed_deadlines,
            violations,
            outcome.fault_events,
            outcome.completed
        );
    }
    let _ = writeln!(
        out,
        "fabric: scheduled {n}, delivered {}, handoffs {} over {} round(s), misses {}, \
         drained {}",
        report.delivered(),
        report.handoffs,
        report.rounds,
        report.deadline_misses(),
        report.completed()
    );
    if let Some(path) = args.get("trace-out") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        let events = report
            .write_trace(&mut writer)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        use std::io::Write as _;
        writer
            .flush()
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote {events} events ({} v{}) to {path}",
            ddcr_sim::TRACE_SCHEMA,
            if segments == 1 {
                ddcr_sim::TRACE_SCHEMA_VERSION
            } else {
                ddcr_sim::TRACE_FEDERATION_VERSION
            }
        );
    }
    let violations = report.xi_violations();
    if violations == 0 {
        let _ = writeln!(out, "observed xi within the analytic bound: PASS");
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "observed xi EXCEEDED the analytic bound {violations} time(s)"
        );
        Err(out)
    }
}

fn mode_from(args: &Args) -> Result<CollisionMode, String> {
    match args.get("mode").unwrap_or("destructive") {
        "destructive" => Ok(CollisionMode::Destructive),
        "arbitrating" => Ok(CollisionMode::Arbitrating),
        other => Err(format!(
            "unknown mode `{other}` (destructive|arbitrating)"
        )),
    }
}

fn scope_from(name: &str) -> Result<ddcr_check::Scope, String> {
    match name {
        "small" => Ok(ddcr_check::Scope::small()),
        "medium" => Ok(ddcr_check::Scope::medium()),
        other => Err(format!("unknown scope `{other}` (small|medium)")),
    }
}

fn cmd_check(args: &Args) -> Result<String, String> {
    args.allow_only(&["scope", "mode", "membership", "seed"])
        .map_err(|e| e.to_string())?;
    let scope = scope_from(args.get("scope").unwrap_or("small"))?;
    let mode = mode_from(args)?;
    if args.get_or("membership", false).map_err(|e| e.to_string())? {
        return cmd_check_membership(&scope, args);
    }
    let report = ddcr_check::check_scope_with_mode(&scope, 5_000, mode);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exhaustively checked {} scenarios ({} qualified for the strict EDF-order check)",
        report.scenarios, report.edf_checked
    );
    if report.clean() {
        let _ = writeln!(
            out,
            "all properties hold: liveness, exactly-once, replica consistency, \
             causality, EDF emulation"
        );
    } else {
        for finding in report.findings.iter().take(10) {
            let _ = writeln!(
                out,
                "VIOLATION in scenario {}: {:?}",
                finding.scenario_index, finding.violation
            );
        }
        return Err(out);
    }
    Ok(out)
}

fn cmd_check_membership(scope: &ddcr_check::Scope, args: &Args) -> Result<String, String> {
    let mode = mode_from(args)?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let report = ddcr_check::check_scope_with_membership(scope, 5_000, mode, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checked {} scenarios under seeded membership churn interleaved with \
         adversarial faults (seed {seed}, {mode:?})",
        report.scenarios
    );
    let _ = writeln!(
        out,
        "leaves {}, joins {}, crashes {}, rejoins {}, worst heal {} slots, \
         deadline-checked deliveries {}, attributable timeouts {}",
        report.leaves,
        report.joins,
        report.crashes,
        report.rejoins,
        report.max_heal_slots,
        report.deadline_checked,
        report.attributable_timeouts,
    );
    if report.clean() {
        let _ = writeln!(
            out,
            "safety holds under churn: exactly-once, causality, no lost message \
             delivered, no deadline miss for surviving flows, healing bounded"
        );
        Ok(out)
    } else {
        for finding in report.findings.iter().take(10) {
            let _ = writeln!(
                out,
                "VIOLATION in scenario {}: {:?}",
                finding.scenario_index, finding.violation
            );
        }
        Err(out)
    }
}

fn cmd_faults(args: &Args) -> Result<String, String> {
    if args.get("check").is_some() {
        return cmd_faults_check(args);
    }
    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "horizon-ms",
        "seed",
        "corrupt",
        "erase",
        "crash",
        "down",
    ])
    .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let rates = FaultRates {
        corrupt: args.get_or("corrupt", 0.005).map_err(|e| e.to_string())?,
        erase: args.get_or("erase", 0.005).map_err(|e| e.to_string())?,
        crash: args.get_or("crash", 0.0005).map_err(|e| e.to_string())?,
        down_slots: args.get_or("down", 64).map_err(|e| e.to_string())?,
    };
    let (config, allocation) = setup(&set, &medium)?;
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let n = schedule.len();
    // Plan horizon in decision slots: every slot is at least `slot_ticks`
    // wide, so this over-covers the arrival horizon; doubled for the
    // drain tail.
    let horizon_slots = 2 * horizon_ms * 1_000_000 / medium.slot_ticks.max(1);
    let plan = FaultPlan::generate(seed, set.sources(), horizon_slots, &rates);
    let injected = plan.len();
    let mut engine = network::build_engine(&set, &config, &allocation, medium)
        .map_err(|e| e.to_string())?;
    engine.set_fault_plan(plan);
    engine.add_arrivals(schedule).map_err(|e| e.to_string())?;
    let _ = engine.run_to_completion(Ticks(1_000_000_000_000));
    let stats = engine.into_stats();
    Ok(format!(
        "seed {seed}: injected {injected} fault events over {horizon_slots} slots\n\
         scheduled {n}, delivered {}, lost to crashes {}\n\
         corrupted slots {}, erased frames {}, crashes {}, restarts {}\n\
         misses {}, max latency {} ticks, utilization {:.3}\n",
        stats.deliveries.len(),
        stats.lost.len(),
        stats.corrupted_slots,
        stats.erased_frames,
        stats.crashes,
        stats.restarts,
        stats.deadline_misses(),
        stats.max_latency().as_u64(),
        stats.utilization(),
    ))
}

fn cmd_faults_check(args: &Args) -> Result<String, String> {
    args.allow_only(&["check", "mode", "seed"]).map_err(|e| e.to_string())?;
    let scope = scope_from(args.require("check").map_err(|e| e.to_string())?)?;
    let mode = mode_from(args)?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    let report = ddcr_check::check_scope_with_faults(&scope, 5_000, mode, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checked {} scenarios under seeded adversarial fault plans (seed {seed}, {mode:?})",
        report.scenarios
    );
    let _ = writeln!(
        out,
        "crashes {}, rejoins {}, worst heal {} slots, fault-attributable timeouts {}",
        report.crashes, report.rejoins, report.max_heal_slots, report.attributable_timeouts
    );
    if report.clean() {
        let _ = writeln!(
            out,
            "safety holds under faults: exactly-once, causality, no lost message \
             delivered, divergence only while crashed/resyncing, healing bounded"
        );
        Ok(out)
    } else {
        for finding in report.findings.iter().take(10) {
            let _ = writeln!(
                out,
                "VIOLATION in scenario {}: {:?}",
                finding.scenario_index, finding.violation
            );
        }
        Err(out)
    }
}

fn cmd_metrics(args: &Args) -> Result<String, String> {
    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "horizon-ms",
        "retain",
    ])
    .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    // How many per-delivery records to keep in memory; counters and the
    // latency histogram are exact regardless, so 0 gives a constant-memory
    // run with full observability.
    let retain: usize = args.get_or("retain", 0).map_err(|e| e.to_string())?;
    let (config, allocation) = setup(&set, &medium)?;
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let n = schedule.len();
    let mut engine = network::build_engine(&set, &config, &allocation, medium)
        .map_err(|e| e.to_string())?;
    let (time, static_) = network::xi_bound_tables(&config).map_err(|e| e.to_string())?;
    engine.set_xi_bounds(time, static_);
    engine.set_retention(Some(retain), Some(retain));
    engine.add_arrivals(schedule).map_err(|e| e.to_string())?;
    let _ = engine.run_to_completion(Ticks(1_000_000_000_000));
    let metrics = engine
        .take_metrics()
        .ok_or_else(|| "internal error: metrics were not enabled for this run".to_owned())?;
    let stats = engine.into_stats();
    let (p50, p95, p99) = stats.histogram_percentiles();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scheduled {n}, delivered {}, misses {}, retained {} delivery records",
        stats.delivered,
        stats.deadline_misses(),
        stats.deliveries.len()
    );
    let _ = writeln!(
        out,
        "latency: mean {:.0}, p50 <= {}, p95 <= {}, p99 <= {}, max {} ticks",
        stats.mean_latency(),
        p50.as_u64(),
        p95.as_u64(),
        p99.as_u64(),
        stats.max_latency().as_u64()
    );
    let ps = &metrics.phase_slots;
    let _ = writeln!(
        out,
        "slots: tts {}, sts {}, attempt {}, burst {}, skipped {}, unattributed {}",
        ps.tts, ps.sts, ps.attempt, ps.burst, ps.skipped, ps.unattributed
    );
    let _ = writeln!(
        out,
        "xi checks: {} epochs + {} STs windows checked; worst observed overhead \
         tts {} / sts {} slots",
        metrics.epochs_checked,
        metrics.sts_checked,
        metrics.max_tts_overhead,
        metrics.max_sts_overhead
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12} {:>11} {:>8} {:>11}",
        "station", "transmitted", "collisions", "garbled", "queue_peak"
    );
    for (i, s) in metrics.stations().iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>7} {:>12} {:>11} {:>8} {:>11}",
            i, s.transmitted, s.collisions_seen, s.garbled, s.queue_high_water
        );
    }
    xi_verdict(out, &metrics)
}

/// Turns the live ξ-check outcome into the command result: `Ok` (exit 0)
/// when every closed window stayed within the analytic bound, `Err` (exit
/// non-zero via `main`) listing the violations otherwise.
fn xi_verdict(mut out: String, metrics: &SimMetrics) -> Result<String, String> {
    if metrics.violations_total == 0 {
        let _ = writeln!(out, "observed xi within the analytic bound: PASS");
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "observed xi EXCEEDED the analytic bound {} time(s):",
            metrics.violations_total
        );
        for v in metrics.violations().iter().take(10) {
            let _ = writeln!(out, "  {v}");
        }
        Err(out)
    }
}

fn cmd_trace(args: &Args) -> Result<String, String> {
    args.allow_only(&[
        "scenario",
        "sources",
        "load",
        "deadline-ms",
        "bits",
        "medium",
        "horizon-ms",
        "out",
        "stepper",
        "busy-skip",
        "contention-skip",
        "active-set",
    ])
    .map_err(|e| e.to_string())?;
    let set = set_from(args)?;
    let medium = medium_from(args)?;
    let horizon_ms: u64 = args.get_or("horizon-ms", 10).map_err(|e| e.to_string())?;
    let out_path = args.require("out").map_err(|e| e.to_string())?;
    let stepper = args.get("stepper").unwrap_or("fast");
    let fast_forward = match stepper {
        "fast" => true,
        "reference" => false,
        other => return Err(format!("unknown stepper `{other}` (fast|reference)")),
    };
    // Busy-period fast-forward toggles independently of the idle stepper so
    // a trace divergence can be bisected to one of the two fast paths.
    // `--stepper reference` alone still disables it (full reference run).
    let busy_skip = args.get("busy-skip").unwrap_or(if fast_forward {
        "on"
    } else {
        "off"
    });
    let busy_fast_forward = match busy_skip {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown busy-skip `{other}` (on|off)")),
    };
    // Contention (tree-search) fast-forward is the third independent
    // switch of the bisection matrix, with the same default rule.
    let contention_skip = args.get("contention-skip").unwrap_or(if fast_forward {
        "on"
    } else {
        "off"
    });
    let contention_fast_forward = match contention_skip {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown contention-skip `{other}` (on|off)")),
    };
    // The active-set scheduler is the fourth independent switch of the
    // bisection matrix, with the same default rule.
    let active_set_arg = args.get("active-set").unwrap_or(if fast_forward {
        "on"
    } else {
        "off"
    });
    let active_set = match active_set_arg {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown active-set `{other}` (on|off)")),
    };
    let (config, allocation) = setup(&set, &medium)?;
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(horizon_ms * 1_000_000))
        .map_err(|e| e.to_string())?;
    let mut engine = network::build_engine(&set, &config, &allocation, medium)
        .map_err(|e| e.to_string())?;
    engine.set_fast_forward(fast_forward);
    engine.set_busy_fast_forward(busy_fast_forward);
    engine.set_contention_fast_forward(contention_fast_forward);
    engine.set_active_set(active_set);
    let file = std::fs::File::create(out_path)
        .map_err(|e| format!("cannot create {out_path}: {e}"))?;
    engine.set_trace_sink(JsonlSink::new(Box::new(std::io::BufWriter::new(file))));
    engine.add_arrivals(schedule).map_err(|e| e.to_string())?;
    let _ = engine.run_to_completion(Ticks(1_000_000_000_000));
    let events = engine
        .take_trace_sink()
        .ok_or_else(|| "internal error: trace sink was not attached for this run".to_owned())?
        .finish()
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let stats = engine.into_stats();
    Ok(format!(
        "wrote {events} events ({} v{}, {stepper} stepper, busy-skip {busy_skip}, \
         contention-skip {contention_skip}, active-set {active_set_arg}) to {out_path}\n\
         delivered {}, collisions {}, {} simulated ticks\n",
        ddcr_sim::TRACE_SCHEMA,
        ddcr_sim::TRACE_SCHEMA_VERSION,
        stats.delivered,
        stats.collisions,
        stats.total_ticks.as_u64()
    ))
}

fn cmd_bench_engine(args: &Args) -> Result<String, String> {
    use ddcr_bench::enginebench::{check_report, run_suite, Profile, REPORT_PATH};

    args.allow_only(&["profile", "out"]).map_err(|e| e.to_string())?;
    let profile = Profile::from_arg(args.get("profile").unwrap_or("smoke"))?;
    let path = args.get("out").unwrap_or(REPORT_PATH);
    let report = run_suite(profile);
    let doc = report.to_json();
    let violations = check_report(&doc);
    std::fs::write(path, doc.to_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
    let mut out = String::new();
    let idle = &report.idle;
    let _ = writeln!(
        out,
        "idle fast-forward ({} stations, load {:.2}, {} slots): {:.1}x speedup, equivalent={}",
        idle.stations,
        idle.load,
        idle.slots,
        idle.speedup(),
        idle.equivalent
    );
    for drain in &report.drains {
        let _ = writeln!(
            out,
            "drain {:<14} z={:<3} load={:.1}: {:>10.0} Mtick/s  delivered {:>4}  completed={}",
            drain.protocol,
            drain.stations,
            drain.load,
            drain.sim_ticks as f64 * 1e3 / drain.wall_ns.max(1) as f64,
            drain.delivered,
            drain.completed
        );
    }
    let _ = writeln!(
        out,
        "edf queue: {:.2} Mops/s over {} operations",
        report.queue.operations as f64 * 1e3 / report.queue.wall_ns.max(1) as f64,
        report.queue.operations
    );
    let _ = writeln!(out, "wrote {path}");
    if violations.is_empty() {
        let _ = writeln!(out, "perf gate: PASS");
        Ok(out)
    } else {
        for violation in &violations {
            let _ = writeln!(out, "perf gate: FAIL: {violation}");
        }
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, String> {
        let args = Args::parse(line.iter().copied()).map_err(|e| e.to_string())?;
        run(&args)
    }

    #[test]
    fn help_on_empty_and_unknown() {
        assert!(run_line(&[]).unwrap().contains("USAGE"));
        assert!(run_line(&["help"]).unwrap().contains("COMMANDS"));
        assert!(run_line(&["bogus"]).is_err());
    }

    #[test]
    fn bench_engine_is_documented_and_validates_flags() {
        assert!(usage().contains("bench-engine"));
        // Flag validation happens before any measurement runs; the full
        // suite itself is exercised by the `bench_engine` binary and CI.
        let err = run_line(&["bench-engine", "--profile", "warp"]).unwrap_err();
        assert!(err.contains("unknown profile"), "{err}");
        let err = run_line(&["bench-engine", "--bogus", "1"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn xi_table_and_single_value() {
        let table = run_line(&["xi", "--m", "4", "--n", "3"]).unwrap();
        assert!(table.contains("64-leaf"));
        assert!(table.contains("peak at k = 32"));
        let single = run_line(&["xi", "--m", "4", "--n", "3", "--k", "2"]).unwrap();
        assert!(single.contains("xi_2 = 11"));
        assert!(single.contains("xi~_2 = 11.0000"));
    }

    #[test]
    fn witness_prints_achieving_subset() {
        let out = run_line(&["witness", "--m", "2", "--n", "3", "--k", "3"]).unwrap();
        assert!(out.contains("xi = "));
        assert!(out.contains('['));
    }

    #[test]
    fn feasibility_on_uniform() {
        let out = run_line(&[
            "feasibility",
            "--scenario",
            "uniform",
            "--sources",
            "4",
            "--load",
            "0.1",
            "--deadline-ms",
            "10",
        ])
        .unwrap();
        assert!(out.contains("FEASIBLE"));
    }

    #[test]
    fn dimension_recommends_for_atc() {
        let out = run_line(&[
            "dimension",
            "--scenario",
            "atc",
            "--sources",
            "4",
            "--medium",
            "gigabit",
        ])
        .unwrap();
        assert!(out.contains("recommended"), "{out}");
    }

    #[test]
    fn simulate_all_protocols() {
        for protocol in ["ddcr", "csma-cd", "dcr", "np-edf"] {
            let out = run_line(&[
                "simulate",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--protocol",
                protocol,
                "--horizon-ms",
                "4",
            ])
            .unwrap();
            assert!(out.contains("delivered"), "{protocol}: {out}");
        }
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let line = |jobs: &str| {
            run_line(&[
                "sweep",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--horizon-ms",
                "4",
                "--seed",
                "7",
                "--jobs",
                jobs,
            ])
            .unwrap()
        };
        let one = line("1");
        let four = line("4");
        assert!(one.contains("ddcr") && one.contains("np-edf"), "{one}");
        // Everything above the (timing-dependent) perf line is identical.
        let table = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("sweep:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&one), table(&four));
    }

    #[test]
    fn multibus_reports_per_bus() {
        let out = run_line(&[
            "multibus",
            "--scenario",
            "video",
            "--sources",
            "8",
            "--buses",
            "2",
            "--medium",
            "gigabit",
        ])
        .unwrap();
        assert!(out.contains("bus 0"));
        assert!(out.contains("bus 1"));
    }

    #[test]
    fn run_is_worker_count_invariant() {
        let dir = std::env::temp_dir().join("ddcr_cli_run_jobs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let line = |jobs: &str, trace: &std::path::Path| {
            run_line(&[
                "run",
                "--scenario",
                "video",
                "--sources",
                "8",
                "--channels",
                "3",
                "--medium",
                "gigabit",
                "--horizon-ms",
                "4",
                "--jobs",
                jobs,
                "--trace-out",
                trace.to_str().unwrap(),
            ])
            .unwrap()
        };
        let t1 = dir.join("jobs1.jsonl");
        let t8 = dir.join("jobs8.jsonl");
        let one = line("1", &t1);
        let eight = line("8", &t8);
        // Stdout is deterministic by construction (no wall-clock, no
        // worker count), so the whole report must match byte for byte —
        // except the trace path baked into the "wrote" line.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wrote"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one), strip(&eight));
        assert!(one.contains("channel"), "{one}");
        assert!(one.contains("PASS"), "{one}");
        let bytes1 = std::fs::read(&t1).unwrap();
        let bytes8 = std::fs::read(&t8).unwrap();
        assert!(!bytes1.is_empty());
        assert_eq!(bytes1, bytes8, "trace must be identical for every --jobs");
        let header = String::from_utf8(bytes1).unwrap();
        assert_eq!(
            header.lines().next().unwrap(),
            "{\"schema\":\"ddcr-trace\",\"version\":2,\"channels\":3}"
        );
    }

    #[test]
    fn run_single_channel_trace_matches_trace_command() {
        let dir = std::env::temp_dir().join("ddcr_cli_run_c1_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run_c1.jsonl");
        let trace_path = dir.join("trace.jsonl");
        let common = [
            "--scenario",
            "uniform",
            "--sources",
            "4",
            "--load",
            "0.2",
            "--horizon-ms",
            "4",
        ];
        let mut run_args = vec!["run", "--channels", "1", "--trace-out", run_path.to_str().unwrap()];
        run_args.extend_from_slice(&common);
        run_line(&run_args).unwrap();
        let mut trace_args = vec!["trace", "--out", trace_path.to_str().unwrap()];
        trace_args.extend_from_slice(&common);
        run_line(&trace_args).unwrap();
        let from_run = std::fs::read(&run_path).unwrap();
        let from_trace = std::fs::read(&trace_path).unwrap();
        assert!(!from_run.is_empty());
        assert_eq!(
            from_run, from_trace,
            "C=1 multichannel trace must be byte-identical to the single-bus export"
        );
    }

    #[test]
    fn run_reports_faults_and_replays_by_seed() {
        let line = || {
            run_line(&[
                "run",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--channels",
                "2",
                "--horizon-ms",
                "4",
                "--seed",
                "9",
                "--corrupt",
                "0.01",
                "--erase",
                "0.01",
            ])
            .unwrap()
        };
        let a = line();
        assert!(a.contains("fabric:"), "{a}");
        assert_eq!(a, line(), "faulted multichannel run must replay by seed");
        assert!(run_line(&["run", "--scenario", "uniform", "--sources", "2", "--channels", "0"]).is_err());
    }

    #[test]
    fn run_segments_is_jobs_invariant() {
        let dir = std::env::temp_dir().join("ddcr_cli_run_segments_jobs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let line = |jobs: &str, trace: &std::path::Path| {
            run_line(&[
                "run",
                "--scenario",
                "video",
                "--sources",
                "8",
                "--segments",
                "3",
                "--medium",
                "gigabit",
                "--horizon-ms",
                "4",
                "--jobs",
                jobs,
                "--trace-out",
                trace.to_str().unwrap(),
            ])
            .unwrap()
        };
        let t1 = dir.join("jobs1.jsonl");
        let t8 = dir.join("jobs8.jsonl");
        let one = line("1", &t1);
        let eight = line("8", &t8);
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wrote"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one), strip(&eight));
        assert!(one.contains("segment"), "{one}");
        assert!(one.contains("handoffs"), "{one}");
        assert!(one.contains("PASS"), "{one}");
        let bytes1 = std::fs::read(&t1).unwrap();
        let bytes8 = std::fs::read(&t8).unwrap();
        assert!(!bytes1.is_empty());
        assert_eq!(bytes1, bytes8, "trace must be identical for every --jobs");
        let header = String::from_utf8(bytes1).unwrap();
        assert_eq!(
            header.lines().next().unwrap(),
            "{\"schema\":\"ddcr-trace\",\"version\":3,\"segments\":3}"
        );
    }

    #[test]
    fn run_single_segment_trace_matches_trace_command() {
        let dir = std::env::temp_dir().join("ddcr_cli_run_n1_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_path = dir.join("run_n1.jsonl");
        let trace_path = dir.join("trace.jsonl");
        let common = [
            "--scenario",
            "uniform",
            "--sources",
            "4",
            "--load",
            "0.2",
            "--horizon-ms",
            "4",
        ];
        let mut run_args = vec!["run", "--segments", "1", "--trace-out", run_path.to_str().unwrap()];
        run_args.extend_from_slice(&common);
        run_line(&run_args).unwrap();
        let mut trace_args = vec!["trace", "--out", trace_path.to_str().unwrap()];
        trace_args.extend_from_slice(&common);
        run_line(&trace_args).unwrap();
        let from_run = std::fs::read(&run_path).unwrap();
        let from_trace = std::fs::read(&trace_path).unwrap();
        assert!(!from_run.is_empty());
        assert_eq!(
            from_run, from_trace,
            "N=1 federation trace must be byte-identical to the single-bus export"
        );
    }

    #[test]
    fn run_segments_faults_replay_by_seed_and_flags_validate() {
        let line = || {
            run_line(&[
                "run",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--segments",
                "2",
                "--horizon-ms",
                "4",
                "--seed",
                "9",
                "--corrupt",
                "0.01",
                "--erase",
                "0.01",
            ])
            .unwrap()
        };
        let a = line();
        assert!(a.contains("fabric:"), "{a}");
        assert_eq!(a, line(), "faulted federation run must replay by seed");
        let base = ["run", "--scenario", "uniform", "--sources", "2"];
        let mut zero = base.to_vec();
        zero.extend_from_slice(&["--segments", "0"]);
        assert!(run_line(&zero).is_err());
        let mut both = base.to_vec();
        both.extend_from_slice(&["--segments", "2", "--channels", "2"]);
        assert!(run_line(&both).is_err());
        let mut epoch = base.to_vec();
        epoch.extend_from_slice(&["--channels", "2", "--epoch-ms", "1"]);
        assert!(run_line(&epoch).is_err());
    }

    #[test]
    fn check_small_scope_is_clean() {
        let out = run_line(&["check", "--scope", "small"]).unwrap();
        assert!(out.contains("all properties hold"));
        assert!(run_line(&["check", "--scope", "weird"]).is_err());
    }

    #[test]
    fn check_supports_both_collision_modes() {
        let out =
            run_line(&["check", "--scope", "small", "--mode", "arbitrating"]).unwrap();
        assert!(out.contains("all properties hold"), "{out}");
        assert!(run_line(&["check", "--mode", "psychic"]).is_err());
    }

    #[test]
    fn faults_check_small_scope_is_safe() {
        let out = run_line(&["faults", "--check", "small", "--seed", "42"]).unwrap();
        assert!(out.contains("safety holds under faults"), "{out}");
        assert!(out.contains("crashes"), "{out}");
        assert!(run_line(&["faults", "--check", "weird"]).is_err());
    }

    #[test]
    fn faults_simulation_is_seed_replayable() {
        let line = || {
            run_line(&[
                "faults",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--horizon-ms",
                "4",
                "--seed",
                "9",
                "--corrupt",
                "0.01",
                "--erase",
                "0.01",
                "--crash",
                "0.002",
                "--down",
                "32",
            ])
            .unwrap()
        };
        let a = line();
        assert!(a.contains("injected"), "{a}");
        assert!(a.contains("corrupted slots"), "{a}");
        // Bitwise replayable: the same seed reproduces the exact report.
        assert_eq!(a, line());
    }

    #[test]
    fn metrics_reports_phase_accounting_and_passes_xi_check() {
        let out = run_line(&[
            "metrics",
            "--scenario",
            "uniform",
            "--sources",
            "4",
            "--load",
            "0.2",
            "--horizon-ms",
            "4",
        ])
        .unwrap();
        assert!(out.contains("slots: tts"), "{out}");
        assert!(out.contains("xi checks:"), "{out}");
        assert!(out.contains("PASS"), "{out}");
        // Default retention is 0: streaming counters only.
        assert!(out.contains("retained 0 delivery records"), "{out}");
        let retained = run_line(&[
            "metrics",
            "--scenario",
            "uniform",
            "--sources",
            "4",
            "--load",
            "0.2",
            "--horizon-ms",
            "4",
            "--retain",
            "5",
        ])
        .unwrap();
        assert!(retained.contains("retained 5 delivery records"), "{retained}");
    }

    #[test]
    fn metrics_verdict_is_err_on_xi_violation() {
        use ddcr_sim::{PhaseHint, ProtocolPhase, XiBoundTable};
        // A conforming run cannot breach the bound (that is the theorem the
        // live check validates), so the violating window is synthesized at
        // the metrics layer: 6 overhead slots against an envelope allowing
        // 4. This pins the `Err` half of `ddcr metrics`' exit contract —
        // `main` maps any `Err` from `run` to a non-zero exit code (see
        // `cli_smoke.rs`), so violations must surface as `Err`, never as
        // text in an `Ok`.
        let bounds = || XiBoundTable::from_envelope(2, &[0, 0, 3, 3, 3]);
        let tts = |epoch: u64| {
            Some(PhaseHint {
                phase: ProtocolPhase::TimeSearch,
                epoch_start: Ticks(epoch),
            })
        };
        let mut metrics = SimMetrics::new(1);
        metrics.set_xi_bounds(bounds(), bounds());
        metrics.on_slot(tts(0), 1, 2, false);
        for _ in 0..5 {
            metrics.on_slot(tts(0), 1, 0, false);
        }
        // The next epoch closes and checks the violating one.
        metrics.on_slot(tts(100), 1, 0, false);
        assert_eq!(metrics.violations_total, 1);
        let err = xi_verdict(String::new(), &metrics).unwrap_err();
        assert!(err.contains("EXCEEDED the analytic bound 1 time(s)"), "{err}");
        assert!(err.contains("time tree"), "{err}");
        // And the passing side stays `Ok` with the PASS marker CI greps for.
        let clean = SimMetrics::new(1);
        let ok = xi_verdict(String::new(), &clean).unwrap();
        assert!(ok.contains("within the analytic bound: PASS"), "{ok}");
    }

    #[test]
    fn trace_exports_are_bitwise_identical_across_steppers() {
        let dir = std::env::temp_dir().join("ddcr_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Full bisection matrix: idle stepper x busy-skip x
        // contention-skip x active-set. Every byte stream must be
        // identical to the full reference run (the last entry).
        let mut matrix = Vec::new();
        for stepper in ["fast", "reference"] {
            for busy_skip in ["on", "off"] {
                for contention_skip in ["on", "off"] {
                    for active_set in ["on", "off"] {
                        let path = dir.join(format!(
                            "{stepper}_{busy_skip}_{contention_skip}_{active_set}.jsonl"
                        ));
                        matrix.push((stepper, busy_skip, contention_skip, active_set, path));
                    }
                }
            }
        }
        for (stepper, busy_skip, contention_skip, active_set, path) in &matrix {
            let out = run_line(&[
                "trace",
                "--scenario",
                "uniform",
                "--sources",
                "4",
                "--load",
                "0.2",
                "--horizon-ms",
                "4",
                "--stepper",
                stepper,
                "--busy-skip",
                busy_skip,
                "--contention-skip",
                contention_skip,
                "--active-set",
                active_set,
                "--out",
                path.to_str().unwrap(),
            ])
            .unwrap();
            assert!(out.contains("wrote"), "{out}");
            assert!(out.contains(&format!("busy-skip {busy_skip}")), "{out}");
            assert!(
                out.contains(&format!("contention-skip {contention_skip}")),
                "{out}"
            );
            assert!(out.contains(&format!("active-set {active_set}")), "{out}");
        }
        let (_, _, _, _, reference_path) = matrix.last().unwrap();
        let reference = std::fs::read(reference_path).unwrap();
        assert!(!reference.is_empty());
        for (stepper, busy_skip, contention_skip, active_set, path) in
            &matrix[..matrix.len() - 1]
        {
            let bytes = std::fs::read(path).unwrap();
            assert_eq!(
                bytes, reference,
                "stepper={stepper} busy-skip={busy_skip} contention-skip={contention_skip} \
                 active-set={active_set} trace diverges from full reference"
            );
        }
        let text = String::from_utf8(reference).unwrap();
        let header = text.lines().next().unwrap();
        assert_eq!(header, "{\"schema\":\"ddcr-trace\",\"version\":1}");
        assert!(run_line(&["trace", "--scenario", "uniform", "--sources", "2"]).is_err());
        assert!(run_line(&[
            "trace",
            "--scenario",
            "uniform",
            "--sources",
            "2",
            "--out",
            "/tmp/x.jsonl",
            "--stepper",
            "psychic"
        ])
        .is_err());
        assert!(run_line(&[
            "trace",
            "--scenario",
            "uniform",
            "--sources",
            "2",
            "--out",
            "/tmp/x.jsonl",
            "--busy-skip",
            "maybe"
        ])
        .is_err());
        assert!(run_line(&[
            "trace",
            "--scenario",
            "uniform",
            "--sources",
            "2",
            "--out",
            "/tmp/x.jsonl",
            "--contention-skip",
            "maybe"
        ])
        .is_err());
        assert!(run_line(&[
            "trace",
            "--scenario",
            "uniform",
            "--sources",
            "2",
            "--out",
            "/tmp/x.jsonl",
            "--active-set",
            "maybe"
        ])
        .is_err());
    }

    #[test]
    fn typos_are_rejected() {
        assert!(run_line(&["xi", "--m", "4", "--n", "3", "--q", "9"]).is_err());
        assert!(run_line(&["simulate", "--scenario", "uniform", "--sources", "2", "--protocol", "nope"]).is_err());
        assert!(run_line(&["feasibility", "--scenario", "weird", "--sources", "2"]).is_err());
    }
}
