//! A small dependency-free argument parser: `--key value` flags after a
//! subcommand, with typed getters and unknown-flag detection.

use std::collections::BTreeMap;
use std::fmt;

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a flag without a value, a value without a
    /// flag, or a repeated flag.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(ArgError(format!("expected --flag, got `{token}`")));
            };
            let Some(value) = iter.next() else {
                return Err(ArgError(format!("flag --{key} is missing its value")));
            };
            if args.flags.insert(key.to_owned(), value).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Optional typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("flag --{key}: cannot parse `{raw}`"))),
        }
    }

    /// Required typed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent or unparsable.
    pub fn require_typed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| ArgError(format!("flag --{key}: cannot parse `{raw}`")))
    }

    /// Rejects flags outside the allowed set (catches typos).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown flag.
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let args = Args::parse(["xi", "--m", "4", "--n", "3"]).unwrap();
        assert_eq!(args.command(), Some("xi"));
        assert_eq!(args.get("m"), Some("4"));
        assert_eq!(args.require_typed::<u64>("n").unwrap(), 3);
    }

    #[test]
    fn no_command_is_allowed() {
        let args = Args::parse(["--k", "7"]).unwrap();
        assert_eq!(args.command(), None);
        assert_eq!(args.get_or::<u64>("k", 0).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(["cmd", "stray"]).is_err());
        assert!(Args::parse(["cmd", "--flag"]).is_err());
        assert!(Args::parse(["cmd", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn typed_getters_validate() {
        let args = Args::parse(["cmd", "--k", "abc"]).unwrap();
        assert!(args.require_typed::<u64>("k").is_err());
        assert!(args.get_or::<u64>("k", 1).is_err());
        assert!(args.require("missing").is_err());
        assert_eq!(args.get_or::<u64>("absent", 9).unwrap(), 9);
    }

    #[test]
    fn allow_only_catches_typos() {
        let args = Args::parse(["cmd", "--sources", "4", "--laod", "0.3"]).unwrap();
        let err = args.allow_only(&["sources", "load"]).unwrap_err();
        assert!(err.0.contains("--laod"));
        assert!(args.allow_only(&["sources", "laod"]).is_ok());
    }
}
