//! # ddcr-sim — slot-synchronous broadcast-medium simulator
//!
//! A discrete-event simulator for the broadcast channel model of
//! *"A Protocol and Correctness Proofs for Real-Time High-Performance
//! Broadcast Networks"* (Hermant & Le Lann, ICDCS 1998): a single shared
//! medium with slot time `x`, channel states `{silence, busy, collision}`,
//! and every attached station observing identical channel feedback — the
//! property that makes replicated deterministic MAC protocols such as
//! CSMA/DDCR possible.
//!
//! The paper has no physical testbed; this simulator **is** the substrate
//! all protocol experiments run on. It implements exactly the abstract
//! channel contract the paper analyses, so slot accounting (collision
//! slots, empty slots, transmission times `l'/ψ`) matches the analysis
//! term for term. Two collision semantics are provided:
//! Ethernet-style destructive collisions and the non-destructive
//! arbitrating variant the paper sketches for busses internal to ATM nodes.
//!
//! ## Quickstart
//!
//! ```
//! use ddcr_sim::{Engine, MediumConfig, Ticks};
//!
//! # fn main() -> Result<(), ddcr_sim::SimError> {
//! let mut engine = Engine::new(MediumConfig::ethernet())?;
//! // … add stations implementing `Station`, schedule arrivals …
//! engine.run_until(Ticks(100_000));
//! assert_eq!(engine.stats().deliveries.len(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod channel;
mod engine;
mod fault;
pub mod federation;
mod membership;
mod message;
mod metrics;
pub mod rng;
mod station;
mod stats;
mod time;
mod trace;

pub use channel::{Action, CollisionMode, MediumConfig, Observation};
pub use engine::{Engine, SimError};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, SlotFaults};
pub use membership::{MembershipChange, MembershipEvent, MembershipPlan};
pub use message::{ClassId, Delivery, EpochStamp, Frame, Message, MessageId, SourceId};
pub use metrics::{
    LatencyHistogram, MetricsViolation, PhaseHint, PhaseSlots, ProtocolPhase, SearchKind,
    SimMetrics, StationMetrics, XiBoundTable, HISTOGRAM_BUCKETS,
};
pub use station::{AttemptCycleHint, HoldHint, SearchHint, SearchSlotRecord, Station, WakeHint};
pub use stats::{ChannelStats, QuantileError};
pub use time::Ticks;
pub use trace::{
    federation_header, multichannel_header, schema_header, JsonlSink, Trace, TraceEvent,
    TRACE_FEDERATION_VERSION, TRACE_MULTICHANNEL_VERSION, TRACE_SCHEMA, TRACE_SCHEMA_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MediumConfig>();
        assert_send::<Message>();
        assert_send::<ChannelStats>();
        assert_send::<Ticks>();
    }
}
