//! Streaming observability: latency histograms, per-station counters,
//! per-phase slot accounting, and live ξ-bound checks.
//!
//! The paper's analysis (§4) is all about *observable channel overhead*:
//! the number `ξ_k^t` of collision/empty slots a tree search spends before
//! isolating `k` active leaves. This module turns that quantity into a live
//! instrument. Every resolved decision slot is attributed to a protocol
//! phase (time tree search, static tree search, attempt slot, burst,
//! fast-forward skip) using an optional [`PhaseHint`] the stations expose,
//! and the overhead observed inside one tree-search epoch is checked
//! against the analytic bound the moment the epoch closes — a breach is a
//! typed [`MetricsViolation`], surfaced like a checker finding rather than
//! buried in a log.
//!
//! Everything here is O(1) per slot and allocation-free on the hot path, so
//! metrics can stay on for the ROADMAP's "as fast as hardware allows" runs.

use crate::stats::QuantileError;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of buckets in [`LatencyHistogram`]: one per power of two of a
/// `u64` tick count, so any latency maps to a bucket with one `leading_zeros`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size log-scale histogram of latencies (or any `u64` quantity).
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]` (the last bucket is unbounded above). Recording is
/// one `leading_zeros` plus an increment — constant time, no allocation —
/// so percentile reporting survives runs where retaining every delivery
/// would not. Quantiles are nearest-rank over buckets and return the bucket
/// upper bound, i.e. they over-approximate the exact quantile by less than
/// 2× (one bucket).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The largest value bucket `index` covers.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: Ticks) {
        self.counts[Self::bucket_index(value.as_u64())] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Raw bucket counts, indexed by [`LatencyHistogram::bucket_index`].
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank quantile, rounded up to the containing bucket's upper
    /// bound, with degenerate inputs clamped: `q` outside `[0, 1]` clamps
    /// to the nearest endpoint, NaN is treated as `q = 1.0` (the
    /// conservative upper tail — previously NaN slipped through `clamp`
    /// and the `as u64` cast silently saturated it to rank 1), and an
    /// empty histogram yields 0. Callers fed an untrusted `q` should
    /// prefer [`LatencyHistogram::try_quantile`], which rejects degenerate
    /// inputs with a typed error instead of clamping.
    pub fn quantile(&self, q: f64) -> Ticks {
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        if self.total == 0 {
            return Ticks::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Ticks(Self::bucket_upper_bound(i));
            }
        }
        Ticks(Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Nearest-rank quantile like [`LatencyHistogram::quantile`], but
    /// rejecting degenerate `q` (NaN or outside `[0, 1]`) with a typed
    /// [`QuantileError`] instead of clamping, for callers fed an
    /// untrusted quantile (CLI flags, sweep configs).
    ///
    /// # Errors
    ///
    /// Returns [`QuantileError`] when `q` is NaN or outside `[0, 1]`.
    pub fn try_quantile(&self, q: f64) -> Result<Ticks, QuantileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(QuantileError { q });
        }
        Ok(self.quantile(q))
    }

    /// Median, 95th and 99th percentile (bucket upper bounds).
    pub fn percentiles(&self) -> (Ticks, Ticks, Ticks) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

/// Which protocol phase a decision slot belongs to, as reported by a
/// station through [`crate::Station::phase_hint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolPhase {
    /// A time tree search probe slot.
    TimeSearch,
    /// A static tree search probe slot (nested inside a suspended TTs).
    StaticSearch,
    /// The single CSMA-CD attempt slot after an empty time tree search.
    Attempt,
    /// A slot pre-empted by a packet-bursting reservation.
    Burst,
}

/// A station's attribution of the upcoming decision slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseHint {
    /// The phase the shared automaton is in for this slot.
    pub phase: ProtocolPhase,
    /// When the current tree-search epoch began (changes exactly when a new
    /// TTs starts, so it doubles as an epoch identifier).
    pub epoch_start: Ticks,
}

/// Which tree search a ξ observation or violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// The time tree (deadline classes).
    Time,
    /// The static tree (source indices).
    Static,
}

impl fmt::Display for SearchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchKind::Time => write!(f, "time tree"),
            SearchKind::Static => write!(f, "static tree"),
        }
    }
}

/// Per-search allowance for observed overhead slots, derived from the
/// analytic `ξ_k^t` table of `ddcr-tree`.
///
/// `ξ_k^t` is **not** monotone in `k` (it peaks below `t` and decreases
/// toward `ξ_t^t`), while the live check can only over-estimate the number
/// of resolved leaves `k` (a collision proves *at least* two actives).
/// Checking a possibly-overcounted `k` against a non-monotone table would
/// produce false alarms, so the table stores the running maximum
/// `max_{2 ≤ j ≤ k} ξ_j^t`: monotone in `k`, hence safe to index with an
/// over-estimate. On top of the envelope, `allowed` adds `m − 1` slack
/// slots: the simulator's search automaton pre-splits the root (it starts
/// with the root's `m` children on the stack, spending up to `m` probes
/// where Eq. 1 charges one), mirroring the `bound + branching` tolerance of
/// the search-automaton test suite.
///
/// This type is plain data so that `ddcr-sim` stays independent of
/// `ddcr-tree`; `ddcr_core::network::xi_bound_tables` builds it from a
/// [`DdcrConfig`]'s tree shapes.
///
/// [`DdcrConfig`]: https://docs.rs/ddcr-core
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XiBoundTable {
    branching: u64,
    /// `allowed[k]`: overhead slots permitted for `k` resolved leaves.
    allowed: Vec<u64>,
}

impl XiBoundTable {
    /// Builds the table from a tree's branching degree `m` and its ξ
    /// envelope (`envelope[k] = max_{2 ≤ j ≤ k} ξ_j^t`, zero for `k < 2`,
    /// as produced by `SearchTimeTable::xi_envelope`).
    pub fn from_envelope(branching: u64, envelope: &[u64]) -> Self {
        let allowed = envelope
            .iter()
            .enumerate()
            .map(|(k, &env)| {
                if k < 2 {
                    // Zero or one active leaves: at most the m root-children
                    // probes of the pre-split automaton.
                    branching
                } else {
                    env + branching - 1
                }
            })
            .collect();
        XiBoundTable { branching, allowed }
    }

    /// The tree's branching degree `m`.
    pub fn branching(&self) -> u64 {
        self.branching
    }

    /// Overhead slots allowed for `resolved` leaves; `resolved` beyond the
    /// leaf count clamps to the table maximum (the envelope is monotone, so
    /// clamping an over-estimate stays sound).
    pub fn allowed(&self, resolved: u64) -> u64 {
        let idx = (resolved as usize).min(self.allowed.len().saturating_sub(1));
        self.allowed.get(idx).copied().unwrap_or(u64::MAX)
    }
}

/// A live metrics check that failed; the observability counterpart of a
/// checker finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricsViolation {
    /// A tree-search window spent more overhead slots than the analytic
    /// `ξ_k^t` envelope (plus automaton slack) permits.
    XiExceeded {
        /// Which tree search breached its bound.
        kind: SearchKind,
        /// Epoch identifier: when the enclosing TTs epoch began.
        epoch_start: Ticks,
        /// Overhead slots (collision + empty) observed in the window.
        observed: u64,
        /// The allowance `allowed(resolved)` that was exceeded.
        bound: u64,
        /// The (over-)estimated number of resolved leaves the bound was
        /// looked up with.
        resolved: u64,
    },
}

impl fmt::Display for MetricsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsViolation::XiExceeded {
                kind,
                epoch_start,
                observed,
                bound,
                resolved,
            } => write!(
                f,
                "{kind} search in epoch starting {epoch_start}: observed \
                 ξ = {observed} overhead slots exceeds the analytic allowance \
                 {bound} for {resolved} resolved leaves"
            ),
        }
    }
}

/// Slot counts by protocol phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSlots {
    /// Time tree search probe slots.
    pub tts: u64,
    /// Static tree search probe slots.
    pub sts: u64,
    /// CSMA-CD attempt slots.
    pub attempt: u64,
    /// Slots pre-empted by a packet-bursting reservation.
    pub burst: u64,
    /// Provably silent slots the engine fast-forwarded over.
    pub skipped: u64,
    /// Slots no synced station attributed (non-DDCR stations, or every
    /// replica crashed/resynchronizing).
    pub unattributed: u64,
}

impl PhaseSlots {
    /// Total slots accounted.
    pub fn total(&self) -> u64 {
        self.tts + self.sts + self.attempt + self.burst + self.skipped + self.unattributed
    }
}

/// Per-station counters, updated incrementally in the slot loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationMetrics {
    /// Frames this station put on the wire successfully.
    pub transmitted: u64,
    /// Collisions this station was a party to.
    pub collisions_seen: u64,
    /// Frames of this station erased on the wire (CRC loss).
    pub garbled: u64,
    /// Largest local queue depth observed at arrival-delivery time.
    pub queue_high_water: usize,
}

/// An open observation window over one tree search.
#[derive(Debug, Clone, Copy)]
struct SearchWindow {
    epoch_start: Ticks,
    /// Overhead slots observed: collisions + empty probe slots.
    overhead: u64,
    /// Lower-bound-safe over-estimate of resolved active leaves.
    resolved: u64,
    /// Whether the window was perturbed by an injected fault or an
    /// unattributed stretch; tainted windows are never checked.
    tainted: bool,
}

impl SearchWindow {
    fn open(epoch_start: Ticks, tainted: bool) -> Self {
        SearchWindow {
            epoch_start,
            overhead: 0,
            resolved: 0,
            tainted,
        }
    }
}

/// Cap on retained [`MetricsViolation`] values; the total is still counted
/// exactly.
const MAX_RETAINED_VIOLATIONS: usize = 32;

/// Streaming run metrics: phase accounting, per-station counters, and live
/// ξ-bound checks.
///
/// Owned by the engine when metrics are enabled; one [`SimMetrics::on_slot`]
/// per resolved decision slot, one [`SimMetrics::on_skip`] per fast-forward
/// jump.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Slot counts by protocol phase.
    pub phase_slots: PhaseSlots,
    stations: Vec<StationMetrics>,
    time_bounds: Option<XiBoundTable>,
    static_bounds: Option<XiBoundTable>,
    /// Open TTs epoch window (overhead accumulates across nested STs).
    epoch: Option<SearchWindow>,
    /// Open STs window (one per contiguous static-search run).
    sts: Option<SearchWindow>,
    /// TTs epochs whose observed ξ was actually checked against the bound.
    pub epochs_checked: u64,
    /// STs windows whose observed ξ was actually checked against the bound.
    pub sts_checked: u64,
    /// Worst observed per-epoch TTs overhead (tainted windows included).
    pub max_tts_overhead: u64,
    /// Worst observed per-window STs overhead (tainted windows included).
    pub max_sts_overhead: u64,
    violations: Vec<MetricsViolation>,
    /// Exact violation count (the retained list is capped).
    pub violations_total: u64,
    /// Busy decision slots resolved inside busy fast-forward runs. Unlike
    /// [`PhaseSlots::skipped`], these slots are *fully* attributed through
    /// [`SimMetrics::on_slot`] (the holder is stepped frame by frame), so
    /// this is pure fast-path telemetry, not an accounting bucket.
    pub busy_skipped_slots: u64,
    /// Number of busy fast-forward runs.
    pub busy_skip_runs: u64,
    /// Decision slots resolved inside contention fast-forward runs. Like
    /// [`SimMetrics::busy_skipped_slots`], every one of these slots is
    /// *fully* attributed through [`SimMetrics::on_slot`] (the engaged
    /// stations are stepped slot by slot), so this is pure fast-path
    /// telemetry, not an accounting bucket.
    pub search_skipped_slots: u64,
    /// Number of contention fast-forward runs.
    pub search_skip_runs: u64,
    /// Membership accounting: stations that (re-)joined the fabric.
    pub joins: u64,
    /// Membership accounting: stations that left the fabric.
    pub leaves: u64,
}

impl SimMetrics {
    /// Fresh metrics for `stations` attached stations.
    pub fn new(stations: usize) -> Self {
        SimMetrics {
            stations: vec![StationMetrics::default(); stations],
            ..SimMetrics::default()
        }
    }

    /// Installs the analytic ξ allowances to check observed overhead
    /// against. Without them phase accounting still runs, but no violations
    /// can be raised.
    pub fn set_xi_bounds(&mut self, time: XiBoundTable, static_: XiBoundTable) {
        self.time_bounds = Some(time);
        self.static_bounds = Some(static_);
    }

    /// Per-station counters, indexed by attachment order.
    pub fn stations(&self) -> &[StationMetrics] {
        &self.stations
    }

    /// The retained violations (capped at 32; see
    /// [`SimMetrics::violations_total`] for the exact count).
    pub fn violations(&self) -> &[MetricsViolation] {
        &self.violations
    }

    fn station_entry(&mut self, index: usize) -> &mut StationMetrics {
        if index >= self.stations.len() {
            self.stations.resize_with(index + 1, StationMetrics::default);
        }
        &mut self.stations[index]
    }

    /// A station transmitted successfully.
    #[inline]
    pub fn on_transmit(&mut self, station: usize) {
        self.station_entry(station).transmitted += 1;
    }

    /// A station was party to a collision.
    #[inline]
    pub fn on_collision_seen(&mut self, station: usize) {
        self.station_entry(station).collisions_seen += 1;
    }

    /// A station's frame was erased on the wire.
    #[inline]
    pub fn on_garbled(&mut self, station: usize) {
        self.station_entry(station).garbled += 1;
    }

    /// Records a station's queue depth (called after each arrival hand-off).
    #[inline]
    pub fn note_queue_depth(&mut self, station: usize, depth: usize) {
        let entry = self.station_entry(station);
        if depth > entry.queue_high_water {
            entry.queue_high_water = depth;
        }
    }

    fn raise(&mut self, violation: MetricsViolation) {
        self.violations_total += 1;
        if self.violations.len() < MAX_RETAINED_VIOLATIONS {
            self.violations.push(violation);
        }
    }

    /// Closes the open STs window, checking it unless tainted.
    fn close_sts(&mut self, check: bool) {
        if let Some(w) = self.sts.take() {
            if w.overhead > self.max_sts_overhead {
                self.max_sts_overhead = w.overhead;
            }
            if !check || w.tainted {
                return;
            }
            if let Some(bounds) = &self.static_bounds {
                let bound = bounds.allowed(w.resolved);
                self.sts_checked += 1;
                if w.overhead > bound {
                    self.raise(MetricsViolation::XiExceeded {
                        kind: SearchKind::Static,
                        epoch_start: w.epoch_start,
                        observed: w.overhead,
                        bound,
                        resolved: w.resolved,
                    });
                }
            }
        }
    }

    /// Closes the open TTs epoch window, checking it unless tainted.
    fn close_epoch(&mut self, check: bool) {
        if let Some(w) = self.epoch.take() {
            if w.overhead > self.max_tts_overhead {
                self.max_tts_overhead = w.overhead;
            }
            if !check || w.tainted {
                return;
            }
            if let Some(bounds) = &self.time_bounds {
                let bound = bounds.allowed(w.resolved);
                self.epochs_checked += 1;
                if w.overhead > bound {
                    self.raise(MetricsViolation::XiExceeded {
                        kind: SearchKind::Time,
                        epoch_start: w.epoch_start,
                        observed: w.overhead,
                        bound,
                        resolved: w.resolved,
                    });
                }
            }
        }
    }

    fn taint_open_windows(&mut self) {
        if let Some(w) = self.epoch.as_mut() {
            w.tainted = true;
        }
        if let Some(w) = self.sts.as_mut() {
            w.tainted = true;
        }
    }

    /// Accounts one resolved decision slot.
    ///
    /// `overhead`/`resolved` describe the channel outcome: an overhead slot
    /// is an empty or collided probe (the quantity `ξ` counts); `resolved`
    /// is a safe over-estimate of active leaves accounted for (1 for a
    /// success, 2 for a collision — at least two actives collided). Slots
    /// carrying an injected fault pass `faulted = true`: their outcome is
    /// adversarial, so they taint the open windows instead of feeding the
    /// bound check.
    pub fn on_slot(
        &mut self,
        hint: Option<PhaseHint>,
        overhead: u64,
        resolved: u64,
        faulted: bool,
    ) {
        let Some(hint) = hint else {
            self.phase_slots.unattributed += 1;
            // No synced replica could attribute this slot; anything still
            // open has lost continuity.
            self.taint_open_windows();
            return;
        };
        if faulted {
            self.taint_open_windows();
        }
        match hint.phase {
            ProtocolPhase::TimeSearch => {
                self.phase_slots.tts += 1;
                // A TTs slot proves any nested STs has completed.
                self.close_sts(true);
                let stale = self
                    .epoch
                    .map(|w| w.epoch_start != hint.epoch_start)
                    .unwrap_or(true);
                if stale {
                    self.close_epoch(true);
                    self.epoch = Some(SearchWindow::open(hint.epoch_start, faulted));
                }
                if let Some(w) = self.epoch.as_mut() {
                    w.overhead += overhead;
                    w.resolved += resolved;
                    if faulted {
                        w.tainted = true;
                    }
                }
            }
            ProtocolPhase::StaticSearch => {
                self.phase_slots.sts += 1;
                if self.sts.is_none() {
                    self.sts = Some(SearchWindow::open(hint.epoch_start, faulted));
                }
                if let Some(w) = self.sts.as_mut() {
                    w.overhead += overhead;
                    w.resolved += resolved;
                    if faulted {
                        w.tainted = true;
                    }
                }
                // STs slots also burden the suspended TTs epoch: the paper's
                // ξ accounting charges the nested search to the enclosing
                // epoch's channel time, but the epoch-level bound only
                // covers TTs probes, so the epoch window merely stays open.
            }
            ProtocolPhase::Attempt => {
                self.phase_slots.attempt += 1;
                // The attempt slot follows an empty TTs: both windows close.
                self.close_sts(true);
                self.close_epoch(true);
            }
            ProtocolPhase::Burst => {
                // Channel control is reserved; no search is probing. Windows
                // stay open and unburdened.
                self.phase_slots.burst += 1;
            }
        }
    }

    /// Accounts a fast-forwarded run of provably silent slots.
    ///
    /// Skips do **not** taint open windows: the skipped slots are provably
    /// silent, so at worst they are uncounted *empty* probe slots of an
    /// in-progress search — the observed overhead under-counts and the
    /// bound check stays conservative (it can miss a breach inside a skip,
    /// never report a spurious one). Epochs fully consumed inside a skip
    /// are simply never opened; the window keying on `epoch_start` keeps
    /// pre- and post-skip epochs from mixing.
    pub fn on_skip(&mut self, slots: u64) {
        self.phase_slots.skipped += slots;
    }

    /// Notes a fast-forwarded busy run of `slots` committed transmissions.
    ///
    /// The mirror of [`SimMetrics::on_skip`] for the busy path, but — in
    /// contrast to silence skips — every slot of a busy run has already
    /// been attributed through [`SimMetrics::on_slot`] (the holder is
    /// polled and observed frame by frame, and the quiet stations' shared
    /// phase state is frozen for the duration of the run, so the per-slot
    /// [`PhaseHint`]s are the reference stepper's). Observed-ξ windows are
    /// therefore *exact* across busy skips, not merely conservative. This
    /// method only updates the fast-path telemetry counters.
    pub fn on_busy_skip(&mut self, slots: u64) {
        self.busy_skipped_slots += slots;
        self.busy_skip_runs += 1;
    }

    /// Notes a fast-forwarded contention run of `slots` resolved decision
    /// slots.
    ///
    /// Exactly like [`SimMetrics::on_busy_skip`], every slot of a
    /// contention run has already been attributed through
    /// [`SimMetrics::on_slot`] with the reference stepper's [`PhaseHint`]s
    /// (taken from an engaged synced replica, whose shared automaton every
    /// caught-up quiet replica agrees with). Observed-ξ windows are
    /// therefore *exact* across contention skips, not merely conservative.
    /// This method only updates the fast-path telemetry counters.
    pub fn on_search_skip(&mut self, slots: u64) {
        self.search_skipped_slots += slots;
        self.search_skip_runs += 1;
    }

    /// Records a membership transition (`join = true` for a join, `false`
    /// for a leave).
    ///
    /// The active-set change perturbs any search in flight exactly the way
    /// an injected fault does — the analytic ξ allowance was computed for
    /// the *old* membership — so open observation windows are tainted and
    /// never checked, the same conservative treatment faulted slots get.
    pub fn on_membership(&mut self, join: bool) {
        if join {
            self.joins += 1;
        } else {
            self.leaves += 1;
        }
        self.taint_open_windows();
    }

    /// Closes any windows still open (a run cutoff mid-search); they are
    /// recorded in the overhead maxima but never checked.
    pub fn finish(&mut self) {
        self.close_sts(false);
        self.close_epoch(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_partition_the_u64_range() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(
                LatencyHistogram::bucket_index(LatencyHistogram::bucket_upper_bound(i)),
                i,
                "bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bound_exact_values() {
        let mut h = LatencyHistogram::default();
        let values = [0u64, 1, 5, 90, 140, 150, 1000, 5000];
        for &v in &values {
            h.record(Ticks(v));
        }
        assert_eq!(h.total(), values.len() as u64);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q).as_u64();
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert_eq!(
                LatencyHistogram::bucket_index(approx),
                LatencyHistogram::bucket_index(exact),
                "q={q}: approx {approx} left exact {exact}'s bucket"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Ticks::ZERO);
        assert_eq!(h.percentiles(), (Ticks::ZERO, Ticks::ZERO, Ticks::ZERO));
    }

    /// Pins the documented clamp at every degenerate corner: q ∈
    /// {0.0, 1.0, NaN, out-of-range} × total ∈ {0, 1}. NaN must act as
    /// the conservative upper tail, never silently saturate to rank 1.
    #[test]
    fn quantile_degenerate_inputs_are_clamped_deterministically() {
        let empty = LatencyHistogram::default();
        for q in [0.0, 1.0, f64::NAN, -3.5, 7.0] {
            assert_eq!(empty.quantile(q), Ticks::ZERO, "empty, q={q}");
        }

        let mut one = LatencyHistogram::default();
        one.record(Ticks(100)); // bucket 7, upper bound 127
        let expected = Ticks(LatencyHistogram::bucket_upper_bound(
            LatencyHistogram::bucket_index(100),
        ));
        for q in [0.0, 1.0, f64::NAN, -3.5, 7.0] {
            assert_eq!(one.quantile(q), expected, "total=1, q={q}");
        }

        // With a populated histogram the clamp direction is observable:
        // q ≤ 0 pins the lowest bucket, q ≥ 1 and NaN pin the highest.
        let mut two = LatencyHistogram::default();
        two.record(Ticks(0));
        two.record(Ticks(1_000_000));
        let low = two.quantile(0.0);
        let high = two.quantile(1.0);
        assert!(low < high);
        assert_eq!(two.quantile(-1.0), low);
        assert_eq!(two.quantile(2.0), high);
        assert_eq!(two.quantile(f64::NAN), high, "NaN must clamp to the tail");
    }

    #[test]
    fn try_quantile_rejects_degenerate_q_with_typed_error() {
        let mut h = LatencyHistogram::default();
        h.record(Ticks(5));
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = h.try_quantile(bad).unwrap_err();
            assert!(
                err.to_string().contains("quantile must be in [0, 1]"),
                "unexpected error text: {err}"
            );
        }
        assert_eq!(h.try_quantile(0.0), Ok(h.quantile(0.0)));
        assert_eq!(h.try_quantile(1.0), Ok(h.quantile(1.0)));
        // The empty histogram still accepts in-range q.
        assert_eq!(LatencyHistogram::default().try_quantile(0.5), Ok(Ticks::ZERO));
    }

    fn tts(epoch: u64) -> Option<PhaseHint> {
        Some(PhaseHint {
            phase: ProtocolPhase::TimeSearch,
            epoch_start: Ticks(epoch),
        })
    }

    fn sts(epoch: u64) -> Option<PhaseHint> {
        Some(PhaseHint {
            phase: ProtocolPhase::StaticSearch,
            epoch_start: Ticks(epoch),
        })
    }

    /// An envelope allowing 3 overhead slots at k=2 on a binary tree:
    /// `allowed(k<2) = 2`, `allowed(2) = 3 + 2 − 1 = 4`.
    fn tiny_bounds() -> XiBoundTable {
        XiBoundTable::from_envelope(2, &[0, 0, 3, 3, 3])
    }

    #[test]
    fn epoch_within_bound_raises_nothing() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        // Epoch 0: two collisions, two successes → overhead 2 ≤ allowed(6).
        m.on_slot(tts(0), 1, 2, false);
        m.on_slot(tts(0), 1, 2, false);
        m.on_slot(tts(0), 0, 1, false);
        m.on_slot(tts(0), 0, 1, false);
        // Epoch boundary closes and checks epoch 0.
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.epochs_checked, 1);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.max_tts_overhead, 2);
        assert_eq!(m.phase_slots.tts, 5);
    }

    #[test]
    fn epoch_over_bound_raises_violation() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        // 6 overhead slots, resolved estimate 2 → allowed(2) = 4 < 6.
        m.on_slot(tts(0), 1, 2, false);
        for _ in 0..5 {
            m.on_slot(tts(0), 1, 0, false);
        }
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.violations_total, 1);
        match &m.violations()[0] {
            MetricsViolation::XiExceeded {
                kind,
                epoch_start,
                observed,
                bound,
                resolved,
            } => {
                assert_eq!(*kind, SearchKind::Time);
                assert_eq!(*epoch_start, Ticks(0));
                assert_eq!(*observed, 6);
                assert_eq!(*bound, 4);
                assert_eq!(*resolved, 2);
            }
        }
    }

    #[test]
    fn skips_leave_epochs_checkable() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        // A clean epoch interrupted by a skip (provably silent slots) still
        // closes and checks: skipped slots can only under-count overhead.
        m.on_slot(tts(0), 1, 2, false);
        m.on_skip(10);
        m.on_slot(tts(0), 1, 0, false);
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.epochs_checked, 1);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.phase_slots.skipped, 10);
        // An over-bound epoch is still caught after a skip elsewhere.
        for _ in 0..6 {
            m.on_slot(tts(100), 1, 0, false);
        }
        m.on_slot(tts(200), 0, 1, false);
        assert_eq!(m.epochs_checked, 2);
        assert_eq!(m.violations_total, 1);
    }

    #[test]
    fn sts_window_closes_on_return_to_tts() {
        let mut m = SimMetrics::new(2);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        m.on_slot(tts(0), 1, 2, false);
        // Nested STs: 2 overhead slots, resolves 2 leaves → within allowed.
        m.on_slot(sts(0), 1, 2, false);
        m.on_slot(sts(0), 0, 1, false);
        m.on_slot(sts(0), 0, 1, false);
        // Back in the TTs: the STs window closes and checks.
        m.on_slot(tts(0), 0, 1, false);
        assert_eq!(m.sts_checked, 1);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.phase_slots.sts, 3);
        assert_eq!(m.max_sts_overhead, 1);
        // The epoch window survived the nested search.
        m.on_slot(tts(50), 1, 0, false);
        assert_eq!(m.epochs_checked, 1);
    }

    #[test]
    fn unattributed_slots_taint_but_count() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        for _ in 0..6 {
            m.on_slot(tts(0), 1, 0, false);
        }
        m.on_slot(None, 1, 0, false);
        m.on_slot(tts(100), 1, 0, false);
        m.finish();
        assert_eq!(m.phase_slots.unattributed, 1);
        assert_eq!(m.violations_total, 0, "tainted epoch must not be checked");
    }

    #[test]
    fn faulted_slot_taints_the_window() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        // An injected corruption mid-epoch would otherwise breach the bound.
        for _ in 0..3 {
            m.on_slot(tts(0), 1, 0, false);
        }
        m.on_slot(tts(0), 1, 0, true);
        for _ in 0..3 {
            m.on_slot(tts(0), 1, 0, false);
        }
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.epochs_checked, 0);
    }

    #[test]
    fn membership_transitions_taint_the_open_window() {
        let mut m = SimMetrics::new(2);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        // An over-bound epoch perturbed by a leave must NOT be checked: the
        // ξ allowance was computed for the pre-leave membership.
        for _ in 0..6 {
            m.on_slot(tts(0), 1, 0, false);
        }
        m.on_membership(false);
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.leaves, 1);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.epochs_checked, 0);
        // The join taints the epoch open at transition time too…
        m.on_membership(true);
        m.on_slot(tts(200), 0, 1, false);
        assert_eq!(m.joins, 1);
        assert_eq!(m.epochs_checked, 0);
        // …but the first epoch opened entirely after it checks normally.
        m.on_slot(tts(300), 0, 1, false);
        assert_eq!(m.epochs_checked, 1);
        assert_eq!(m.violations_total, 0);
    }

    #[test]
    fn burst_slots_are_neutral() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        m.on_slot(tts(0), 1, 2, false);
        m.on_slot(
            Some(PhaseHint {
                phase: ProtocolPhase::Burst,
                epoch_start: Ticks(0),
            }),
            0,
            1,
            false,
        );
        m.on_slot(tts(0), 0, 1, false);
        m.on_slot(tts(100), 1, 0, false);
        assert_eq!(m.phase_slots.burst, 1);
        assert_eq!(m.epochs_checked, 1);
        assert_eq!(m.violations_total, 0);
        assert_eq!(m.max_tts_overhead, 1, "burst slot added no overhead");
    }

    #[test]
    fn attempt_slot_closes_the_epoch() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        m.on_slot(tts(0), 1, 0, false);
        m.on_slot(
            Some(PhaseHint {
                phase: ProtocolPhase::Attempt,
                epoch_start: Ticks(0),
            }),
            0,
            1,
            false,
        );
        assert_eq!(m.epochs_checked, 1);
        assert_eq!(m.phase_slots.attempt, 1);
    }

    #[test]
    fn violation_retention_is_capped_but_counted() {
        let mut m = SimMetrics::new(1);
        m.set_xi_bounds(tiny_bounds(), tiny_bounds());
        for epoch in 0..100u64 {
            for _ in 0..6 {
                m.on_slot(tts(epoch * 10), 1, 0, false);
            }
            m.on_slot(tts((epoch + 1) * 10), 1, 0, false);
        }
        m.finish();
        // Every one of the 100 epochs closes over-bound (each accumulates
        // its 6 probe slots plus the closing slot charged by the epoch that
        // follows it).
        assert_eq!(m.violations_total, 100);
        assert_eq!(m.violations().len(), MAX_RETAINED_VIOLATIONS);
    }

    #[test]
    fn station_counters_resize_on_demand() {
        let mut m = SimMetrics::new(1);
        m.on_transmit(0);
        m.on_collision_seen(2);
        m.on_garbled(1);
        m.note_queue_depth(0, 5);
        m.note_queue_depth(0, 3);
        assert_eq!(m.stations().len(), 3);
        assert_eq!(m.stations()[0].transmitted, 1);
        assert_eq!(m.stations()[0].queue_high_water, 5);
        assert_eq!(m.stations()[1].garbled, 1);
        assert_eq!(m.stations()[2].collisions_seen, 1);
    }

    #[test]
    fn bound_table_clamps_overestimates() {
        let b = tiny_bounds();
        assert_eq!(b.allowed(0), 2);
        assert_eq!(b.allowed(1), 2);
        assert_eq!(b.allowed(2), 4);
        assert_eq!(b.allowed(4), 4);
        // Beyond the table: clamp to the envelope maximum.
        assert_eq!(b.allowed(1000), 4);
    }
}
