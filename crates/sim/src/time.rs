//! Simulation time in **ticks** (bit-times).
//!
//! All of the paper's quantities reduce cleanly to bit-times once the
//! nominal throughput `ψ` is normalised to 1 bit per tick: a frame of `l'`
//! bits occupies exactly `l'` ticks of channel time, and the slot time `x`
//! (the collision-detection window) is a configurable number of ticks —
//! e.g. 512 bit-times for classical Ethernet, 4096 for half-duplex Gigabit
//! Ethernet with carrier extension, 1–4 for a bus internal to an ATM switch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, or a duration, measured in bit-times.
///
/// With the throughput normalised to `ψ = 1 bit/tick`, physical durations
/// from the paper translate directly: transmitting an `l'`-bit Ph-PDU takes
/// `Ticks(l')`, and a slot time `x` is `Ticks(x)`.
///
/// # Examples
///
/// ```
/// use ddcr_sim::Ticks;
///
/// let slot = Ticks(512);
/// let now = Ticks(10_000);
/// assert_eq!(now + slot * 3, Ticks(11_536));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(pub u64);

impl Ticks {
    /// Zero ticks (the simulation epoch).
    pub const ZERO: Ticks = Ticks(0);

    /// The raw tick count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `max(self − rhs, 0)`.
    pub fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Ticks) -> Option<Ticks> {
        self.0.checked_add(rhs.0).map(Ticks)
    }

    /// Number of whole slots of `slot` ticks needed to cover this duration
    /// (`⌈self / slot⌉`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero.
    pub fn div_ceil_slots(self, slot: Ticks) -> u64 {
        assert!(slot.0 > 0, "slot time must be positive");
        self.0.div_ceil(slot.0)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Ticks {
    fn from(v: u64) -> Self {
        Ticks(v)
    }
}

impl Add for Ticks {
    type Output = Ticks;
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl SubAssign for Ticks {
    fn sub_assign(&mut self, rhs: Ticks) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Div<u64> for Ticks {
    type Output = Ticks;
    fn div(self, rhs: u64) -> Ticks {
        Ticks(self.0 / rhs)
    }
}

impl Rem<Ticks> for Ticks {
    type Output = Ticks;
    fn rem(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 % rhs.0)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        Ticks(iter.map(|t| t.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Ticks(100);
        let b = Ticks(40);
        assert_eq!(a + b, Ticks(140));
        assert_eq!(a - b, Ticks(60));
        assert_eq!(a * 2, Ticks(200));
        assert_eq!(a / 3, Ticks(33));
        assert_eq!(a % Ticks(30), Ticks(10));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Ticks(5).saturating_sub(Ticks(9)), Ticks::ZERO);
        assert_eq!(Ticks(9).saturating_sub(Ticks(5)), Ticks(4));
    }

    #[test]
    fn div_ceil_slots_rounds_up() {
        assert_eq!(Ticks(1024).div_ceil_slots(Ticks(512)), 2);
        assert_eq!(Ticks(1025).div_ceil_slots(Ticks(512)), 3);
        assert_eq!(Ticks(0).div_ceil_slots(Ticks(512)), 0);
    }

    #[test]
    #[should_panic(expected = "slot time must be positive")]
    fn div_ceil_rejects_zero_slot() {
        Ticks(1).div_ceil_slots(Ticks(0));
    }

    #[test]
    fn display_and_sum() {
        assert_eq!(Ticks(7).to_string(), "7t");
        let total: Ticks = [Ticks(1), Ticks(2), Ticks(3)].into_iter().sum();
        assert_eq!(total, Ticks(6));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ticks(2) < Ticks(10));
        assert_eq!(Ticks::ZERO, Ticks::default());
    }
}
