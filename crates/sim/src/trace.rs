//! Channel event traces, for debugging and for determinism tests.

use crate::message::MessageId;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};

/// One channel-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A silent decision slot.
    Silence {
        /// Slot start time.
        at: Ticks,
    },
    /// A collision; `survivor` is set in arbitrating (non-destructive)
    /// media.
    Collision {
        /// Slot start time.
        at: Ticks,
        /// Winning message under arbitration, if any.
        survivor: Option<MessageId>,
    },
    /// Start of a successful transmission.
    TxStart {
        /// Transmission start time.
        at: Ticks,
        /// Message on the wire.
        message: MessageId,
    },
    /// End of a successful transmission.
    TxEnd {
        /// Time the last bit left the wire.
        at: Ticks,
        /// Message that completed.
        message: MessageId,
    },
    /// An injected frame erasure: the channel was held for the frame's
    /// duration but the CRC failed everywhere and nothing was decoded.
    Garbled {
        /// Slot start time.
        at: Ticks,
        /// The message that was on the wire and lost.
        message: MessageId,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> Ticks {
        match *self {
            TraceEvent::Silence { at }
            | TraceEvent::Collision { at, .. }
            | TraceEvent::TxStart { at, .. }
            | TraceEvent::TxEnd { at, .. }
            | TraceEvent::Garbled { at, .. } => at,
        }
    }
}

/// A bounded in-memory channel trace.
///
/// Disabled by default (zero overhead); enable with [`Trace::enabled`] or
/// bound memory with [`Trace::with_capacity`], which keeps only the most
/// recent events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: Option<usize>,
}

impl Trace {
    /// An enabled, unbounded trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: None,
        }
    }

    /// An enabled trace retaining at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: Some(capacity),
        }
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() == cap && cap > 0 {
                self.events.remove(0);
            } else if cap == 0 {
                return;
            }
        }
        self.events.push(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events, keeping the configuration.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the trace as a one-character-per-event channel timeline:
    /// `.` silence, `X` collision, `A` arbitrated collision (survivor went
    /// through), `#` a successful transmission (start through end), `?` an
    /// injected frame erasure. Useful for eyeballing protocol behaviour in
    /// test failures and docs.
    pub fn render_timeline(&self) -> String {
        let mut out = String::with_capacity(self.events.len());
        for event in &self.events {
            match event {
                TraceEvent::Silence { .. } => out.push('.'),
                TraceEvent::Collision { survivor: None, .. } => out.push('X'),
                TraceEvent::Collision { survivor: Some(_), .. } => out.push('A'),
                TraceEvent::TxStart { .. } => out.push('#'),
                TraceEvent::TxEnd { .. } => {}
                TraceEvent::Garbled { .. } => out.push('?'),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(TraceEvent::Silence { at: Ticks(1) });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(1) });
        t.record(TraceEvent::Collision {
            at: Ticks(2),
            survivor: None,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].at(), Ticks(1));
        assert_eq!(t.events()[1].at(), Ticks(2));
    }

    #[test]
    fn capacity_keeps_most_recent() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::Silence { at: Ticks(i) });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].at(), Ticks(3));
        assert_eq!(t.events()[1].at(), Ticks(4));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::with_capacity(0);
        t.record(TraceEvent::Silence { at: Ticks(0) });
        assert!(t.events().is_empty());
    }

    #[test]
    fn timeline_renders_channel_history() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.record(TraceEvent::Collision { at: Ticks(512), survivor: None });
        t.record(TraceEvent::TxStart { at: Ticks(1024), message: MessageId(1) });
        t.record(TraceEvent::TxEnd { at: Ticks(2000), message: MessageId(1) });
        t.record(TraceEvent::Collision {
            at: Ticks(2000),
            survivor: Some(MessageId(2)),
        });
        assert_eq!(t.render_timeline(), ".X#A");
    }

    #[test]
    fn clear_retains_enablement() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }
}
