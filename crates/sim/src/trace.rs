//! Channel event traces, for debugging and for determinism tests, plus the
//! streaming JSONL export sink.

use crate::message::MessageId;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One channel-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A silent decision slot.
    Silence {
        /// Slot start time.
        at: Ticks,
    },
    /// A collision; `survivor` is set in arbitrating (non-destructive)
    /// media.
    Collision {
        /// Slot start time.
        at: Ticks,
        /// Winning message under arbitration, if any.
        survivor: Option<MessageId>,
    },
    /// Start of a successful transmission.
    TxStart {
        /// Transmission start time.
        at: Ticks,
        /// Message on the wire.
        message: MessageId,
    },
    /// End of a successful transmission.
    TxEnd {
        /// Time the last bit left the wire.
        at: Ticks,
        /// Message that completed.
        message: MessageId,
    },
    /// An injected frame erasure: the channel was held for the frame's
    /// duration but the CRC failed everywhere and nothing was decoded.
    Garbled {
        /// Slot start time.
        at: Ticks,
        /// The message that was on the wire and lost.
        message: MessageId,
    },
    /// A station (re-)joined the fabric and began resynchronizing.
    Joined {
        /// Time of the membership transition (a decision-slot boundary).
        at: Ticks,
        /// Station index (attachment order).
        station: u32,
    },
    /// A station left the fabric; its pending queue was recorded lost.
    Left {
        /// Time of the membership transition (a decision-slot boundary).
        at: Ticks,
        /// Station index (attachment order).
        station: u32,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> Ticks {
        match *self {
            TraceEvent::Silence { at }
            | TraceEvent::Collision { at, .. }
            | TraceEvent::TxStart { at, .. }
            | TraceEvent::TxEnd { at, .. }
            | TraceEvent::Garbled { at, .. }
            | TraceEvent::Joined { at, .. }
            | TraceEvent::Left { at, .. } => at,
        }
    }
}

/// A bounded in-memory channel trace.
///
/// Disabled by default (zero overhead); enable with [`Trace::enabled`] or
/// bound memory with [`Trace::with_capacity`], which keeps only the most
/// recent events.
///
/// The bound is amortized O(1) per event: the backing vector is allowed to
/// grow to twice the capacity, then compacted in one `drain` that discards
/// the oldest half. (The previous implementation shifted the whole vector
/// with `events.remove(0)` on every record once full — O(capacity) per
/// event, O(n·capacity) per run.)
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Backing storage; may hold up to `2 × capacity` events between
    /// compactions. [`Trace::events`] slices off the stale prefix.
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: Option<usize>,
}

impl Trace {
    /// An enabled, unbounded trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: None,
        }
    }

    /// An enabled trace retaining at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: Some(capacity),
        }
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return;
            }
            if self.events.len() >= cap.saturating_mul(2) {
                // Keep the newest `cap` events; one memmove amortized over
                // `cap` records.
                self.events.drain(..self.events.len() - cap);
            }
        }
        self.events.push(event);
    }

    /// The recorded events, oldest first (at most `capacity` of them).
    pub fn events(&self) -> &[TraceEvent] {
        match self.capacity {
            Some(cap) if self.events.len() > cap => &self.events[self.events.len() - cap..],
            _ => &self.events,
        }
    }

    /// Drops all recorded events, keeping the configuration.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the trace as a one-character-per-event channel timeline:
    /// `.` silence, `X` collision, `A` arbitrated collision (survivor went
    /// through), `#` a successful transmission (start through end), `?` an
    /// injected frame erasure. Useful for eyeballing protocol behaviour in
    /// test failures and docs.
    pub fn render_timeline(&self) -> String {
        let mut out = String::with_capacity(self.events().len());
        for event in self.events() {
            match event {
                TraceEvent::Silence { .. } => out.push('.'),
                TraceEvent::Collision { survivor: None, .. } => out.push('X'),
                TraceEvent::Collision { survivor: Some(_), .. } => out.push('A'),
                TraceEvent::TxStart { .. } => out.push('#'),
                TraceEvent::TxEnd { .. } => {}
                TraceEvent::Garbled { .. } => out.push('?'),
                // Membership transitions occupy no channel time; they are
                // annotations between slots, not slots.
                TraceEvent::Joined { .. } | TraceEvent::Left { .. } => {}
            }
        }
        out
    }
}

/// Schema identifier written as the first line of every JSONL trace export.
pub const TRACE_SCHEMA: &str = "ddcr-trace";
/// Version of the JSONL trace schema (bump on any line-format change).
pub const TRACE_SCHEMA_VERSION: u32 = 1;
/// Version of the merged multichannel JSONL trace schema: same event lines
/// as version 1, each prefixed with a `"channel"` field, under a header
/// that also carries the channel count.
pub const TRACE_MULTICHANNEL_VERSION: u32 = 2;
/// Version of the merged federation JSONL trace schema: same event lines
/// as version 1, each prefixed with a `"segment"` field, under a header
/// that also carries the segment count.
pub const TRACE_FEDERATION_VERSION: u32 = 3;

/// The single-channel schema header line (trailing newline included) —
/// what [`JsonlSink::new`] emits first.
#[must_use]
pub fn schema_header() -> String {
    format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_SCHEMA_VERSION}}}\n")
}

/// The merged multichannel schema header line (trailing newline included),
/// announcing how many channels' event streams follow.
#[must_use]
pub fn multichannel_header(channels: usize) -> String {
    format!(
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_MULTICHANNEL_VERSION}\
         ,\"channels\":{channels}}}\n"
    )
}

/// The merged federation schema header line (trailing newline included),
/// announcing how many segments' event streams follow.
#[must_use]
pub fn federation_header(segments: usize) -> String {
    format!(
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_FEDERATION_VERSION}\
         ,\"segments\":{segments}}}\n"
    )
}

/// A streaming JSONL sink for channel traces.
///
/// Unlike the bounded in-memory [`Trace`], a sink writes every event as one
/// JSON line the moment the engine resolves it, so memory stays constant
/// regardless of run length. The first line is a schema header
/// (`{"schema":"ddcr-trace","version":1}`); each subsequent line is one
/// [`TraceEvent`]. The byte stream is a pure function of the resolved
/// channel history, so exports are bitwise identical across the
/// fast-forward and reference steppers and across sweep `--jobs` counts.
///
/// I/O errors are latched: the first failure is kept and reported by
/// [`JsonlSink::finish`]; later writes become no-ops.
pub struct JsonlSink {
    writer: Box<dyn Write + Send>,
    error: Option<io::Error>,
    events: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("events", &self.events)
            .field("error", &self.error)
            .finish()
    }
}

impl JsonlSink {
    /// Wraps a writer and emits the schema header line.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        let mut sink = JsonlSink::headerless(writer);
        sink.write_line(&schema_header());
        sink
    }

    /// Wraps a writer WITHOUT emitting the schema header line.
    ///
    /// The multichannel runner buffers each channel's event lines through a
    /// headerless sink and writes one merged, channel-tagged document (with
    /// a single [`multichannel_header`]) itself.
    pub fn headerless(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer,
            error: None,
            events: 0,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Writes one event as a JSON line.
    pub fn record(&mut self, event: &TraceEvent) {
        let line = match *event {
            TraceEvent::Silence { at } => {
                format!("{{\"at\":{},\"event\":\"silence\"}}\n", at.as_u64())
            }
            TraceEvent::Collision { at, survivor } => match survivor {
                Some(id) => format!(
                    "{{\"at\":{},\"event\":\"collision\",\"survivor\":{}}}\n",
                    at.as_u64(),
                    id.0
                ),
                None => format!(
                    "{{\"at\":{},\"event\":\"collision\",\"survivor\":null}}\n",
                    at.as_u64()
                ),
            },
            TraceEvent::TxStart { at, message } => format!(
                "{{\"at\":{},\"event\":\"tx_start\",\"message\":{}}}\n",
                at.as_u64(),
                message.0
            ),
            TraceEvent::TxEnd { at, message } => format!(
                "{{\"at\":{},\"event\":\"tx_end\",\"message\":{}}}\n",
                at.as_u64(),
                message.0
            ),
            TraceEvent::Garbled { at, message } => format!(
                "{{\"at\":{},\"event\":\"garbled\",\"message\":{}}}\n",
                at.as_u64(),
                message.0
            ),
            TraceEvent::Joined { at, station } => format!(
                "{{\"at\":{},\"event\":\"joined\",\"station\":{}}}\n",
                at.as_u64(),
                station
            ),
            TraceEvent::Left { at, station } => format!(
                "{{\"at\":{},\"event\":\"left\",\"station\":{}}}\n",
                at.as_u64(),
                station
            ),
        };
        self.write_line(&line);
        self.events += 1;
    }

    /// Number of events recorded so far (header excluded).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes the writer and reports the first latched I/O error, if any.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered, or the flush error.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(TraceEvent::Silence { at: Ticks(1) });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(1) });
        t.record(TraceEvent::Collision {
            at: Ticks(2),
            survivor: None,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].at(), Ticks(1));
        assert_eq!(t.events()[1].at(), Ticks(2));
    }

    #[test]
    fn capacity_keeps_most_recent() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::Silence { at: Ticks(i) });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].at(), Ticks(3));
        assert_eq!(t.events()[1].at(), Ticks(4));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::with_capacity(0);
        t.record(TraceEvent::Silence { at: Ticks(0) });
        assert!(t.events().is_empty());
    }

    #[test]
    fn timeline_renders_channel_history() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.record(TraceEvent::Collision { at: Ticks(512), survivor: None });
        t.record(TraceEvent::TxStart { at: Ticks(1024), message: MessageId(1) });
        t.record(TraceEvent::TxEnd { at: Ticks(2000), message: MessageId(1) });
        t.record(TraceEvent::Collision {
            at: Ticks(2000),
            survivor: Some(MessageId(2)),
        });
        assert_eq!(t.render_timeline(), ".X#A");
    }

    #[test]
    fn clear_retains_enablement() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn capacity_keeps_most_recent_across_many_compactions() {
        // Exercise the drain-compaction across many wrap-arounds: at every
        // point the visible window must be exactly the newest `cap` events,
        // oldest first, and the backing store must stay bounded.
        for cap in [1usize, 2, 3, 7] {
            let mut t = Trace::with_capacity(cap);
            for i in 0..1000u64 {
                t.record(TraceEvent::Silence { at: Ticks(i) });
                let seen = t.events();
                let expect_len = cap.min(i as usize + 1);
                assert_eq!(seen.len(), expect_len, "cap={cap} i={i}");
                for (j, ev) in seen.iter().enumerate() {
                    let first = i + 1 - expect_len as u64;
                    assert_eq!(ev.at(), Ticks(first + j as u64), "cap={cap} i={i}");
                }
                assert!(t.events.len() <= 2 * cap, "backing store unbounded");
            }
        }
    }

    #[test]
    fn timeline_respects_capacity_window() {
        let mut t = Trace::with_capacity(2);
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.record(TraceEvent::Collision { at: Ticks(1), survivor: None });
        t.record(TraceEvent::Garbled { at: Ticks(2), message: MessageId(0) });
        assert_eq!(t.render_timeline(), "X?");
    }

    /// A `Write` implementation over a shared buffer, so tests can inspect
    /// what a consumed sink wrote (Arc/Mutex because sink writers are
    /// `Send` — engines migrate between federation worker threads).
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(buf: &std::sync::Arc<std::sync::Mutex<Vec<u8>>>) -> Vec<u8> {
            buf.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_header_and_event_lines() {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sink = JsonlSink::new(Box::new(SharedBuf(buf.clone())));
        sink.record(&TraceEvent::Silence { at: Ticks(0) });
        sink.record(&TraceEvent::Collision { at: Ticks(512), survivor: None });
        sink.record(&TraceEvent::Collision {
            at: Ticks(1024),
            survivor: Some(MessageId(7)),
        });
        sink.record(&TraceEvent::TxStart { at: Ticks(1536), message: MessageId(7) });
        sink.record(&TraceEvent::TxEnd { at: Ticks(2000), message: MessageId(7) });
        sink.record(&TraceEvent::Garbled { at: Ticks(2048), message: MessageId(8) });
        assert_eq!(sink.events_written(), 6);
        assert_eq!(sink.finish().unwrap(), 6);
        let text = String::from_utf8(SharedBuf::contents(&buf)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"schema\":\"ddcr-trace\",\"version\":1}");
        assert_eq!(lines[1], "{\"at\":0,\"event\":\"silence\"}");
        assert_eq!(lines[2], "{\"at\":512,\"event\":\"collision\",\"survivor\":null}");
        assert_eq!(lines[3], "{\"at\":1024,\"event\":\"collision\",\"survivor\":7}");
        assert_eq!(lines[4], "{\"at\":1536,\"event\":\"tx_start\",\"message\":7}");
        assert_eq!(lines[5], "{\"at\":2000,\"event\":\"tx_end\",\"message\":7}");
        assert_eq!(lines[6], "{\"at\":2048,\"event\":\"garbled\",\"message\":8}");
    }

    #[test]
    fn headerless_sink_writes_event_lines_only() {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sink = JsonlSink::headerless(Box::new(SharedBuf(buf.clone())));
        sink.record(&TraceEvent::Silence { at: Ticks(0) });
        assert_eq!(sink.finish().unwrap(), 1);
        let text = String::from_utf8(SharedBuf::contents(&buf)).unwrap();
        assert_eq!(text, "{\"at\":0,\"event\":\"silence\"}\n");
    }

    #[test]
    fn jsonl_sink_writes_membership_lines() {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sink = JsonlSink::headerless(Box::new(SharedBuf(buf.clone())));
        sink.record(&TraceEvent::Left { at: Ticks(512), station: 3 });
        sink.record(&TraceEvent::Joined { at: Ticks(4096), station: 3 });
        assert_eq!(sink.finish().unwrap(), 2);
        let text = String::from_utf8(SharedBuf::contents(&buf)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"at\":512,\"event\":\"left\",\"station\":3}");
        assert_eq!(lines[1], "{\"at\":4096,\"event\":\"joined\",\"station\":3}");
    }

    #[test]
    fn membership_events_do_not_widen_the_timeline() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Silence { at: Ticks(0) });
        t.record(TraceEvent::Left { at: Ticks(512), station: 1 });
        t.record(TraceEvent::Joined { at: Ticks(1024), station: 1 });
        t.record(TraceEvent::Silence { at: Ticks(1536) });
        assert_eq!(t.render_timeline(), "..");
    }

    #[test]
    fn header_helpers_match_schema() {
        assert_eq!(schema_header(), "{\"schema\":\"ddcr-trace\",\"version\":1}\n");
        assert_eq!(
            multichannel_header(4),
            "{\"schema\":\"ddcr-trace\",\"version\":2,\"channels\":4}\n"
        );
    }

    #[test]
    fn jsonl_sink_latches_first_io_error() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // First write (the header) succeeds; the first event write fails.
        let mut sink = JsonlSink::new(Box::new(FailAfter(1)));
        sink.record(&TraceEvent::Silence { at: Ticks(0) });
        sink.record(&TraceEvent::Silence { at: Ticks(512) });
        let err = sink.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
