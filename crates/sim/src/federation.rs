//! Federated multi-segment simulation: N per-segment engines advancing in
//! epoch-aligned rounds on a shared virtual clock, with inter-segment
//! traffic handed off at epoch boundaries through deterministic bridge
//! queues.
//!
//! The paper analyses one broadcast segment at a time; real deployments
//! chain segments behind bridges. This module composes N independent
//! [`Engine`]s into one federation:
//!
//! * **Shared virtual clock.** Time is cut into epochs of
//!   [`FederationOptions::epoch`] ticks. In round `r` every segment runs
//!   [`Engine::run_until_drained`] up to the boundary
//!   `min((r + 1) · epoch, budget)`; no segment's clock crosses a boundary
//!   before every other segment has reached it (modulo the slot straddling
//!   the boundary, exactly as in the single-bus engine).
//! * **Bridge queues.** A [`BridgeRoute`] names the segment path a message
//!   class traverses and the bridge station that re-injects it on each
//!   subsequent segment. At each boundary the round barrier scans every
//!   segment's new deliveries in completion order; a delivery of a routed
//!   class with hops remaining becomes a fresh arrival on the next
//!   segment, timestamped at the boundary. The scan order — segments
//!   ascending, deliveries in completion order — fixes the handoff ids, so
//!   the whole exchange is deterministic.
//! * **Deadline budgets split across hops.** A routed class's end-to-end
//!   relative deadline `d` is divided evenly over its `path.len()` hops:
//!   the origin copy and every handoff carry `d / hops` (at least one
//!   tick), so per-segment feasibility analysis composes into the
//!   end-to-end bound.
//! * **Work-stealing worker pool.** Within a round the segments are
//!   independent simulations; they are scheduled over
//!   [`FederationOptions::workers`] threads via per-worker deques with
//!   steal-on-idle. Because the barrier work (handoff generation, id
//!   assignment) is serial and every segment is itself deterministic, the
//!   report is **bitwise identical for any worker count**, and a
//!   federation of one segment is bitwise identical to the plain
//!   single-bus engine.
//!
//! ```
//! use ddcr_sim::{federation::{run_federation, FederationOptions}, Ticks};
//!
//! # fn main() -> Result<(), ddcr_sim::SimError> {
//! // One segment, no routes: behaves exactly like the single-bus engine.
//! let engine = ddcr_sim::Engine::new(ddcr_sim::MediumConfig::ethernet())?;
//! let options = FederationOptions::new(Ticks(1_000_000), Ticks(10_000_000));
//! let report = run_federation(vec![engine], vec![Vec::new()], &[], &options)?;
//! assert!(report.completed());
//! assert_eq!(report.rounds, 1);
//! # Ok(())
//! # }
//! ```

use crate::engine::{Engine, SimError};
use crate::fault::{FaultPlan, FaultRates};
use crate::message::{ClassId, Message, MessageId, SourceId};
use crate::metrics::SimMetrics;
use crate::rng::job_seed;
use crate::stats::ChannelStats;
use crate::time::Ticks;
use crate::trace::{federation_header, schema_header, JsonlSink};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, proceeding with the data even if a sibling worker
/// panicked while holding it (the scope join rethrows that panic anyway,
/// so no state behind a poisoned lock is ever observed by callers).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-segment fault injection for a federated run. Segment `s` derives
/// its plan from `job_seed(master_seed, s)`, so plans are independent
/// across segments yet fully reproducible from one master seed.
#[derive(Debug, Clone)]
pub struct FederationFaultSpec {
    /// Master seed; per-segment seeds derive via [`crate::rng::job_seed`].
    pub master_seed: u64,
    /// Poisson rates for each fault lane.
    pub rates: FaultRates,
    /// Horizon (in slots) over which events are drawn.
    pub horizon_slots: u64,
}

/// Configuration for [`run_federation`].
#[derive(Debug, Clone)]
pub struct FederationOptions {
    /// Epoch length in ticks: the granularity of the shared virtual clock.
    /// Segments synchronise (and bridge traffic is exchanged) at every
    /// multiple of this value. Must be positive.
    pub epoch: Ticks,
    /// Worker threads for the per-round segment fan-out. `1` runs the
    /// segments serially on the caller's thread; the results are bitwise
    /// identical either way.
    pub workers: usize,
    /// Give-up horizon on the shared clock: the run stops at the first
    /// epoch boundary at or beyond this many ticks.
    pub budget: Ticks,
    /// Enable per-segment metrics collection.
    pub metrics: bool,
    /// Capture each segment's JSONL event stream for
    /// [`FederationReport::write_trace`].
    pub trace: bool,
    /// Retention cap for per-segment delivery/lost records (`None` =
    /// unbounded). When bridge routes are present the *delivery* side is
    /// kept unbounded regardless — the round barrier reads the delivery
    /// log to generate handoffs — and the cap applies to lost records
    /// only.
    pub retention: Option<usize>,
    /// Per-segment fault injection (`None` = fault-free).
    pub faults: Option<FederationFaultSpec>,
}

impl FederationOptions {
    /// Defaults: serial (one worker), no metrics, no trace, no faults,
    /// unbounded retention.
    pub fn new(epoch: Ticks, budget: Ticks) -> Self {
        FederationOptions {
            epoch,
            workers: 1,
            budget,
            metrics: false,
            trace: false,
            retention: None,
            faults: None,
        }
    }
}

/// The segment path of one inter-segment message class, plus the bridge
/// station that re-injects it at each hop.
///
/// `path[0]` is the origin segment (where the class's schedule messages
/// arrive); each subsequent `path[k]` is reached through bridge station
/// `entry[k - 1]` on that segment. A route therefore has `path.len()`
/// hops and `path.len() - 1` handoffs, and `entry.len()` must equal
/// `path.len() - 1`.
#[derive(Debug, Clone)]
pub struct BridgeRoute {
    /// The message class this route applies to.
    pub class: ClassId,
    /// Segment indices visited, origin first; all distinct, length ≥ 2.
    pub path: Vec<usize>,
    /// `entry[k]` is the station on segment `path[k + 1]` that enqueues
    /// the handed-off message there.
    pub entry: Vec<SourceId>,
}

/// One segment's completed simulation within a federation.
#[derive(Debug)]
pub struct SegmentOutcome {
    /// Segment index.
    pub segment: usize,
    /// Schedule messages that originated on this segment.
    pub scheduled: usize,
    /// Bridge handoffs injected into this segment.
    pub injected: usize,
    /// Whether the segment drained inside the budget.
    pub completed: bool,
    /// Fault events injected on this segment.
    pub fault_events: usize,
    /// Segment statistics.
    pub stats: ChannelStats,
    /// Per-segment metrics (present when [`FederationOptions::metrics`]).
    pub metrics: Option<SimMetrics>,
    /// Headerless JSONL event lines (present when
    /// [`FederationOptions::trace`]).
    pub trace: Option<Vec<u8>>,
}

/// A completed federated run, outcomes in segment order.
///
/// Everything except `wall` is a pure function of the inputs — bitwise
/// independent of [`FederationOptions::workers`].
#[derive(Debug)]
pub struct FederationReport {
    /// One outcome per segment, segment order.
    pub segments: Vec<SegmentOutcome>,
    /// Epoch rounds executed.
    pub rounds: u64,
    /// Total bridge handoffs exchanged at epoch boundaries.
    pub handoffs: u64,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall clock (non-deterministic; excluded from the
    /// determinism contract).
    pub wall: Duration,
}

impl FederationReport {
    /// Schedule messages across all segments (handoffs not counted).
    pub fn scheduled(&self) -> usize {
        self.segments.iter().map(|s| s.scheduled).sum()
    }

    /// Messages delivered across all segments; each hop of a routed
    /// message counts as one delivery on its segment.
    pub fn delivered(&self) -> u64 {
        self.segments.iter().map(|s| s.stats.delivered).sum()
    }

    /// Deadline misses across all segments (per-hop deadlines for routed
    /// classes).
    pub fn deadline_misses(&self) -> u64 {
        self.segments.iter().map(|s| s.stats.missed_deadlines).sum()
    }

    /// Whether every segment drained inside the budget.
    pub fn completed(&self) -> bool {
        self.segments.iter().all(|s| s.completed)
    }

    /// Observed-ξ violations summed over all segments (0 when metrics
    /// were off).
    pub fn xi_violations(&self) -> u64 {
        self.segments
            .iter()
            .filter_map(|s| s.metrics.as_ref())
            .map(|m| m.violations_total)
            .sum()
    }

    /// Writes the merged JSONL trace document.
    ///
    /// One segment: the plain schema-version-1 stream — byte-identical to
    /// the single-bus engine's export. Several segments: a
    /// [`crate::federation_header`] followed by every segment's events in
    /// segment order, each line tagged with its segment index. Either way
    /// the bytes are a pure function of the resolved segment histories,
    /// hence independent of the worker count.
    ///
    /// Returns the number of event lines written.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_trace(&self, writer: &mut dyn Write) -> io::Result<u64> {
        let mut events = 0u64;
        if self.segments.len() == 1 {
            writer.write_all(schema_header().as_bytes())?;
            if let Some(buf) = &self.segments[0].trace {
                writer.write_all(buf)?;
                events += buf.iter().filter(|&&b| b == b'\n').count() as u64;
            }
        } else {
            writer.write_all(federation_header(self.segments.len()).as_bytes())?;
            for outcome in &self.segments {
                let Some(buf) = &outcome.trace else { continue };
                let tag = format!("{{\"segment\":{},", outcome.segment);
                for line in buf.split(|&b| b == b'\n') {
                    if line.is_empty() {
                        continue;
                    }
                    // Every event line starts with '{'; splice the segment
                    // tag in as the first field.
                    writer.write_all(tag.as_bytes())?;
                    writer.write_all(&line[1..])?;
                    writer.write_all(b"\n")?;
                    events += 1;
                }
            }
        }
        Ok(events)
    }
}

/// A `Write` implementation over a shared byte buffer, letting the
/// federation recover what a consumed [`JsonlSink`] wrote.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        lock(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Per-worker deques with steal-on-idle: task `t` is seeded onto deque
/// `t % workers`; a worker pops its own deque from the front and, when
/// empty, steals from the **back** of the longest other deque. This
/// generalises the bench sweep's shared-counter fan-out: with balanced
/// seeds behaviour matches round-robin, while a worker stuck on one long
/// segment sheds its remaining queue to idle peers.
struct WorkQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueues {
    fn new(workers: usize, tasks: usize) -> Self {
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for task in 0..tasks {
            lock(&deques[task % workers]).push_back(task);
        }
        WorkQueues { deques }
    }

    /// Next task for `worker`: own front, else steal from the longest
    /// victim's back; `None` once every deque is empty.
    fn next(&self, worker: usize) -> Option<usize> {
        if let Some(task) = lock(&self.deques[worker]).pop_front() {
            return Some(task);
        }
        loop {
            let mut victim: Option<(usize, usize)> = None;
            for (v, deque) in self.deques.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let len = lock(deque).len();
                if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                    victim = Some((v, len));
                }
            }
            let (v, _) = victim?;
            if let Some(task) = lock(&self.deques[v]).pop_back() {
                return Some(task);
            }
            // Lost the race to another thief; rescan for a new victim.
        }
    }
}

/// A segment slot shuttled between rounds: the engine plus its
/// drained-at-last-boundary flag.
struct RoundSlot {
    engine: Option<Engine>,
    drained: bool,
}

/// Advances every segment to `deadline`, serially or over the worker
/// pool. The segments share no state, so the interleaving chosen by the
/// pool cannot affect any engine's history.
fn run_round(slots: &mut [RoundSlot], deadline: Ticks, workers: usize) {
    if workers <= 1 || slots.len() <= 1 {
        for slot in slots.iter_mut() {
            if let Some(engine) = slot.engine.as_mut() {
                slot.drained = engine.run_until_drained(deadline);
            }
        }
        return;
    }
    let shared: Vec<Mutex<RoundSlot>> = slots
        .iter_mut()
        .map(|slot| {
            Mutex::new(RoundSlot {
                engine: slot.engine.take(),
                drained: slot.drained,
            })
        })
        .collect();
    let queues = WorkQueues::new(workers, shared.len());
    crossbeam::thread::scope(|scope| {
        for worker in 0..workers {
            let queues = &queues;
            let shared = &shared;
            scope.spawn(move |_| {
                while let Some(task) = queues.next(worker) {
                    let mut guard = lock(&shared[task]);
                    if let Some(engine) = guard.engine.as_mut() {
                        let drained = engine.run_until_drained(deadline);
                        guard.drained = drained;
                    }
                }
            });
        }
    })
    .unwrap_or_else(|_| panic!("a federation worker panicked"));
    for (slot, cell) in slots.iter_mut().zip(shared) {
        let inner = cell.into_inner().unwrap_or_else(PoisonError::into_inner);
        slot.engine = inner.engine;
        slot.drained = inner.drained;
    }
}

/// Validates the route table against the federation shape and returns the
/// per-class route lookup.
fn index_routes(
    routes: &[BridgeRoute],
    engines: &[Engine],
) -> Result<HashMap<ClassId, BridgeRoute>, SimError> {
    let n = engines.len();
    let mut by_class: HashMap<ClassId, BridgeRoute> = HashMap::new();
    for route in routes {
        if route.path.len() < 2 {
            return Err(SimError::InvalidFederation(format!(
                "route for class {} needs at least 2 segments, got {}",
                route.class.0,
                route.path.len()
            )));
        }
        if route.entry.len() != route.path.len() - 1 {
            return Err(SimError::InvalidFederation(format!(
                "route for class {}: {} hops need {} bridge entries, got {}",
                route.class.0,
                route.path.len(),
                route.path.len() - 1,
                route.entry.len()
            )));
        }
        for (k, &segment) in route.path.iter().enumerate() {
            if segment >= n {
                return Err(SimError::InvalidFederation(format!(
                    "route for class {} visits segment {segment} but only {n} exist",
                    route.class.0
                )));
            }
            if route.path[..k].contains(&segment) {
                return Err(SimError::InvalidFederation(format!(
                    "route for class {} visits segment {segment} twice",
                    route.class.0
                )));
            }
            if k > 0 {
                let entry = route.entry[k - 1];
                let stations = engines[segment].station_count();
                if entry.0 as usize >= stations {
                    return Err(SimError::InvalidFederation(format!(
                        "route for class {}: bridge station {} not on segment \
                         {segment} ({stations} stations)",
                        route.class.0, entry.0
                    )));
                }
            }
        }
        if by_class.insert(route.class, route.clone()).is_some() {
            return Err(SimError::InvalidFederation(format!(
                "class {} has two bridge routes",
                route.class.0
            )));
        }
    }
    Ok(by_class)
}

/// The per-hop share of a routed class's end-to-end relative deadline:
/// split evenly across the hops, never below one tick.
fn per_hop_deadline(end_to_end: Ticks, hops: usize) -> Ticks {
    Ticks((end_to_end.0 / hops.max(1) as u64).max(1))
}

/// Runs `engines` as a federation of broadcast segments.
///
/// `schedules[s]` is the arrival schedule for segment `s` (same length as
/// `engines`; engines must be freshly built and not yet run). Messages of
/// a class named by a [`BridgeRoute`] must be scheduled on the route's
/// origin segment; their relative deadline is interpreted end-to-end and
/// split evenly across the route's hops. Metrics, trace capture,
/// retention and fault plans are applied here, per segment, exactly as a
/// single-bus run would apply them (fault seeds derive from
/// [`crate::rng::job_seed`]`(master_seed, segment)`).
///
/// The report is bitwise independent of `options.workers`, and a
/// federation of one segment (necessarily route-free: a route needs two
/// distinct segments) produces statistics, metrics and trace bytes
/// identical to the plain single-bus engine run of the same schedule.
///
/// # Errors
///
/// [`SimError::InvalidFederation`] on a shape mismatch (no segments,
/// `schedules.len() != engines.len()`, zero epoch, malformed route);
/// [`SimError::UnknownSource`] if a schedule or handoff routes to a
/// station that does not exist; trace-sink I/O failures surface as
/// [`SimError::InvalidFederation`].
pub fn run_federation(
    engines: Vec<Engine>,
    schedules: Vec<Vec<Message>>,
    routes: &[BridgeRoute],
    options: &FederationOptions,
) -> Result<FederationReport, SimError> {
    let started = Instant::now();
    let n = engines.len();
    if n == 0 {
        return Err(SimError::InvalidFederation(
            "a federation needs at least one segment".to_owned(),
        ));
    }
    if schedules.len() != n {
        return Err(SimError::InvalidFederation(format!(
            "{} segments but {} schedules",
            n,
            schedules.len()
        )));
    }
    if options.epoch == Ticks::ZERO {
        return Err(SimError::InvalidFederation(
            "epoch must be positive".to_owned(),
        ));
    }
    let by_class = index_routes(routes, &engines)?;

    // Fresh handoff ids start above every schedule id so they can never
    // collide with an origin message.
    let mut next_id: u64 = schedules
        .iter()
        .flatten()
        .map(|m| m.id.0 + 1)
        .max()
        .unwrap_or(0);

    let mut slots: Vec<RoundSlot> = Vec::with_capacity(n);
    let mut trace_bufs: Vec<Option<Arc<Mutex<Vec<u8>>>>> = Vec::with_capacity(n);
    let mut fault_events = vec![0usize; n];
    let mut scheduled = vec![0usize; n];
    let mut injected = vec![0usize; n];
    for (segment, mut engine) in engines.into_iter().enumerate() {
        if options.metrics {
            engine.enable_metrics();
        }
        if let Some(cap) = options.retention {
            // The barrier reads the delivery log to generate handoffs, so
            // with routes present only the lost side may be capped.
            let deliveries = if routes.is_empty() { Some(cap) } else { None };
            engine.set_retention(deliveries, Some(cap));
        }
        if options.trace {
            let buf = Arc::new(Mutex::new(Vec::new()));
            engine.set_trace_sink(JsonlSink::headerless(Box::new(SharedBuf(Arc::clone(&buf)))));
            trace_bufs.push(Some(buf));
        } else {
            trace_bufs.push(None);
        }
        if let Some(spec) = &options.faults {
            let plan = FaultPlan::generate(
                job_seed(spec.master_seed, segment as u64),
                engine.station_count() as u32,
                spec.horizon_slots,
                &spec.rates,
            );
            fault_events[segment] = plan.len();
            engine.set_fault_plan(plan);
        }
        // Origin schedule; routed classes get their per-hop deadline share.
        let arrivals: Vec<Message> = schedules[segment]
            .iter()
            .map(|original| {
                let mut message = *original;
                if let Some(route) = by_class.get(&message.class) {
                    message.deadline = per_hop_deadline(message.deadline, route.path.len());
                }
                message
            })
            .collect();
        scheduled[segment] = arrivals.len();
        engine.add_arrivals(arrivals)?;
        slots.push(RoundSlot {
            engine: Some(engine),
            drained: false,
        });
    }

    // Completion-order cursor into each segment's delivery log: deliveries
    // before the cursor have already been scanned for handoffs.
    let mut cursors = vec![0usize; n];
    let mut pending: Vec<Vec<Message>> = vec![Vec::new(); n];
    let mut rounds = 0u64;
    let mut handoffs = 0u64;
    loop {
        let boundary = Ticks(
            options
                .epoch
                .0
                .saturating_mul(rounds + 1)
                .min(options.budget.0),
        );
        for (segment, arrivals) in pending.iter_mut().enumerate() {
            if arrivals.is_empty() {
                continue;
            }
            injected[segment] += arrivals.len();
            if let Some(engine) = slots[segment].engine.as_mut() {
                engine.add_arrivals(arrivals.drain(..))?;
            }
            slots[segment].drained = false;
        }
        run_round(&mut slots, boundary, options.workers);
        rounds += 1;

        // Serial barrier: harvest this round's deliveries into next
        // round's bridge queues. Segment order then completion order
        // fixes the id sequence — no worker interleaving can reorder it.
        let mut exchanged = false;
        for segment in 0..n {
            let Some(engine) = slots[segment].engine.as_ref() else {
                continue;
            };
            let deliveries = &engine.stats().deliveries;
            for delivery in &deliveries[cursors[segment]..] {
                let Some(route) = by_class.get(&delivery.message.class) else {
                    continue;
                };
                let Some(hop) = route.path.iter().position(|&s| s == segment) else {
                    continue;
                };
                if hop + 1 >= route.path.len() {
                    continue; // final hop: delivered end-to-end
                }
                let next_segment = route.path[hop + 1];
                pending[next_segment].push(Message {
                    id: MessageId(next_id),
                    source: route.entry[hop],
                    class: delivery.message.class,
                    bits: delivery.message.bits,
                    arrival: boundary,
                    deadline: delivery.message.deadline,
                });
                next_id += 1;
                handoffs += 1;
                exchanged = true;
            }
            cursors[segment] = deliveries.len();
        }

        let all_drained = slots.iter().all(|slot| slot.drained);
        if all_drained && !exchanged {
            break;
        }
        if boundary >= options.budget {
            // Budget exhausted: still-queued bridge traffic and undrained
            // segments are reported through `completed = false`.
            break;
        }
    }

    let queued_handoffs: Vec<bool> = pending.iter().map(|p| !p.is_empty()).collect();
    let mut segments = Vec::with_capacity(n);
    for (segment, slot) in slots.into_iter().enumerate() {
        let Some(mut engine) = slot.engine else {
            continue;
        };
        let metrics = engine.take_metrics();
        if let Some(sink) = engine.take_trace_sink() {
            sink.finish()
                .map_err(|e| SimError::InvalidFederation(format!("trace sink failed: {e}")))?;
        }
        let stats = engine.into_stats();
        let trace = trace_bufs[segment].take().map(|buf| match Arc::try_unwrap(buf) {
            Ok(inner) => inner.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(shared) => lock(&shared).clone(),
        });
        segments.push(SegmentOutcome {
            segment,
            scheduled: scheduled[segment],
            injected: injected[segment],
            completed: slot.drained && !queued_handoffs[segment],
            fault_events: fault_events[segment],
            stats,
            metrics,
            trace,
        });
    }
    Ok(FederationReport {
        segments,
        rounds,
        handoffs,
        workers: options.workers.max(1),
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::MediumConfig;
    use crate::station::test_support::GreedyStation;

    /// Greedy stations never back off, so tests run them on an arbitrating
    /// medium: simultaneous cross-station backlog (e.g. two bridge
    /// handoffs landing on the same boundary tick) would livelock under
    /// destructive collisions.
    fn greedy_engine(stations: usize) -> Engine {
        let mut cfg = MediumConfig::ethernet();
        cfg.collision_mode = crate::channel::CollisionMode::Arbitrating;
        let mut engine = Engine::new(cfg).expect("valid medium");
        for _ in 0..stations {
            engine.add_station(Box::new(GreedyStation::new(208)));
        }
        engine
    }

    fn message(id: u64, source: u32, class: u32, arrival: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(class),
            bits: 1000,
            arrival: Ticks(arrival),
            deadline: Ticks(4_000_000),
        }
    }

    #[test]
    fn work_queues_serve_each_task_exactly_once() {
        let queues = WorkQueues::new(3, 10);
        // Worker 0 drains everything: its own seed plus steals.
        let mut seen: Vec<usize> = std::iter::from_fn(|| queues.next(0)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for worker in 0..3 {
            assert_eq!(queues.next(worker), None);
        }
    }

    #[test]
    fn stealing_takes_from_the_back_of_the_longest_deque() {
        // 2 workers, 5 tasks: deque 0 = [0, 2, 4], deque 1 = [1, 3].
        let queues = WorkQueues::new(2, 5);
        assert_eq!(queues.next(1), Some(1));
        assert_eq!(queues.next(1), Some(3));
        // Deque 1 empty: worker 1 steals the *back* of deque 0.
        assert_eq!(queues.next(1), Some(4));
        assert_eq!(queues.next(0), Some(0));
        assert_eq!(queues.next(0), Some(2));
        assert_eq!(queues.next(0), None);
    }

    #[test]
    fn validation_rejects_malformed_federations() {
        let options = FederationOptions::new(Ticks(1000), Ticks(10_000));
        let err = run_federation(Vec::new(), Vec::new(), &[], &options);
        assert!(matches!(err, Err(SimError::InvalidFederation(_))));

        let err = run_federation(vec![greedy_engine(1)], Vec::new(), &[], &options);
        assert!(matches!(err, Err(SimError::InvalidFederation(_))));

        let zero_epoch = FederationOptions::new(Ticks::ZERO, Ticks(10_000));
        let err = run_federation(vec![greedy_engine(1)], vec![Vec::new()], &[], &zero_epoch);
        assert!(matches!(err, Err(SimError::InvalidFederation(_))));
    }

    #[test]
    fn validation_rejects_malformed_routes() {
        let options = FederationOptions::new(Ticks(1000), Ticks(10_000));
        let engines = || vec![greedy_engine(2), greedy_engine(2)];
        let schedules = || vec![Vec::new(), Vec::new()];
        let cases: Vec<BridgeRoute> = vec![
            // Too short.
            BridgeRoute { class: ClassId(1), path: vec![0], entry: vec![] },
            // Entry count mismatch.
            BridgeRoute { class: ClassId(1), path: vec![0, 1], entry: vec![] },
            // Unknown segment.
            BridgeRoute { class: ClassId(1), path: vec![0, 7], entry: vec![SourceId(0)] },
            // Revisited segment.
            BridgeRoute { class: ClassId(1), path: vec![0, 0], entry: vec![SourceId(0)] },
            // Bridge station off the segment.
            BridgeRoute { class: ClassId(1), path: vec![0, 1], entry: vec![SourceId(9)] },
        ];
        for route in cases {
            let err =
                run_federation(engines(), schedules(), std::slice::from_ref(&route), &options);
            assert!(
                matches!(err, Err(SimError::InvalidFederation(_))),
                "route {route:?} should be rejected"
            );
        }
        // Duplicate class across two otherwise-valid routes.
        let dup = BridgeRoute {
            class: ClassId(1),
            path: vec![0, 1],
            entry: vec![SourceId(0)],
        };
        let err = run_federation(engines(), schedules(), &[dup.clone(), dup], &options);
        assert!(matches!(err, Err(SimError::InvalidFederation(_))));
    }

    #[test]
    fn single_segment_matches_single_bus_engine() {
        let schedule: Vec<Message> = (0..40)
            .map(|i| message(i, (i % 3) as u32, 0, i * 2_000))
            .collect();
        let mut reference = greedy_engine(3);
        reference.enable_metrics();
        reference
            .add_arrivals(schedule.iter().copied())
            .expect("schedule");
        reference
            .run_to_completion(Ticks(50_000_000))
            .expect("drains");
        let reference_metrics = reference.take_metrics();
        let reference_stats = reference.into_stats();

        let mut options = FederationOptions::new(Ticks(100_000), Ticks(50_000_000));
        options.metrics = true;
        let report =
            run_federation(vec![greedy_engine(3)], vec![schedule], &[], &options).expect("runs");
        assert!(report.completed());
        assert_eq!(report.handoffs, 0);
        assert_eq!(report.segments[0].stats, reference_stats);
        assert_eq!(
            format!("{:?}", report.segments[0].metrics),
            format!("{reference_metrics:?}")
        );
    }

    #[test]
    fn bridged_class_crosses_segments_with_split_deadline() {
        let route = BridgeRoute {
            class: ClassId(7),
            path: vec![0, 1],
            entry: vec![SourceId(1)],
        };
        // One routed message on segment 0, one local message on segment 1.
        let mut routed = message(0, 0, 7, 0);
        routed.deadline = Ticks(2_000_000);
        let local = message(1, 0, 0, 0);
        let mut options = FederationOptions::new(Ticks(10_000), Ticks(50_000_000));
        options.workers = 2;
        let report = run_federation(
            vec![greedy_engine(2), greedy_engine(2)],
            vec![vec![routed], vec![local]],
            &[route],
            &options,
        )
        .expect("runs");
        assert!(report.completed());
        assert_eq!(report.handoffs, 1);
        assert_eq!(report.segments[0].injected, 0);
        assert_eq!(report.segments[1].injected, 1);
        assert_eq!(report.delivered(), 3, "two hops plus the local message");
        // The handoff re-enters on the bridge station at an epoch boundary
        // with the per-hop deadline share.
        let hop = report.segments[1]
            .stats
            .deliveries
            .iter()
            .find(|d| d.message.class == ClassId(7))
            .expect("routed class delivered on segment 1");
        assert_eq!(hop.message.source, SourceId(1));
        assert_eq!(hop.message.deadline, Ticks(1_000_000));
        assert_eq!(hop.message.arrival.0 % 10_000, 0, "arrival on a boundary");
        assert_eq!(hop.message.id, MessageId(2), "fresh id above the schedule");
    }

    #[test]
    fn reports_are_bitwise_worker_invariant() {
        let route = BridgeRoute {
            class: ClassId(2),
            path: vec![0, 2, 1],
            entry: vec![SourceId(0), SourceId(2)],
        };
        let schedules: Vec<Vec<Message>> = (0..3)
            .map(|segment| {
                (0..30u64)
                    .map(|i| {
                        let class = if segment == 0 && i % 5 == 0 { 2 } else { segment };
                        message(segment as u64 * 100 + i, (i % 3) as u32, class, i * 3_000)
                    })
                    .collect()
            })
            .collect();
        let run = |workers: usize| {
            let mut options = FederationOptions::new(Ticks(50_000), Ticks(200_000_000));
            options.workers = workers;
            options.metrics = true;
            options.trace = true;
            run_federation(
                vec![greedy_engine(3), greedy_engine(3), greedy_engine(3)],
                schedules.clone(),
                std::slice::from_ref(&route),
                &options,
            )
            .expect("runs")
        };
        let serial = run(1);
        assert!(serial.completed());
        assert!(serial.handoffs >= 12, "routed class crosses two bridges");
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(parallel.rounds, serial.rounds);
            assert_eq!(parallel.handoffs, serial.handoffs);
            for (a, b) in serial.segments.iter().zip(&parallel.segments) {
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.injected, b.injected);
                assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
                assert_eq!(a.trace, b.trace);
            }
            let mut left = Vec::new();
            let mut right = Vec::new();
            serial.write_trace(&mut left).expect("write");
            parallel.write_trace(&mut right).expect("write");
            assert_eq!(left, right);
        }
    }

    #[test]
    fn budget_exhaustion_reports_incomplete_segments() {
        // An arrival beyond the budget keeps the segment's backlog
        // non-empty at every boundary the run can reach.
        let options = FederationOptions::new(Ticks(1_000), Ticks(20_000));
        let report = run_federation(
            vec![greedy_engine(1)],
            vec![vec![message(0, 0, 0, 100_000)]],
            &[],
            &options,
        )
        .expect("runs");
        assert!(!report.completed());
        assert_eq!(report.delivered(), 0);
        assert_eq!(report.rounds, 20, "every epoch up to the budget ran");
    }

    #[test]
    fn merged_trace_carries_federation_header_and_segment_tags() {
        let mut options = FederationOptions::new(Ticks(10_000), Ticks(50_000_000));
        options.trace = true;
        let report = run_federation(
            vec![greedy_engine(1), greedy_engine(1)],
            vec![vec![message(0, 0, 0, 0)], vec![message(1, 0, 0, 0)]],
            &[],
            &options,
        )
        .expect("runs");
        let mut bytes = Vec::new();
        let events = report.write_trace(&mut bytes).expect("write");
        assert!(events > 0);
        let text = String::from_utf8(bytes).expect("utf8");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(federation_header(2).trim_end()));
        assert!(lines.clone().any(|l| l.starts_with("{\"segment\":0,")));
        assert!(lines.any(|l| l.starts_with("{\"segment\":1,")));
    }

    #[test]
    fn fault_plans_derive_per_segment_and_replay_identically() {
        let spec = FederationFaultSpec {
            master_seed: 42,
            rates: FaultRates {
                corrupt: 2e-3,
                erase: 2e-3,
                crash: 5e-5,
                down_slots: 40,
            },
            horizon_slots: 20_000,
        };
        let run = || {
            let mut options = FederationOptions::new(Ticks(50_000), Ticks(400_000_000));
            options.faults = Some(spec.clone());
            let schedules: Vec<Vec<Message>> = (0..2)
                .map(|s| {
                    (0..20u64)
                        .map(|i| message(s * 100 + i, (i % 2) as u32, 0, i * 5_000))
                        .collect()
                })
                .collect();
            run_federation(
                vec![greedy_engine(2), greedy_engine(2)],
                schedules,
                &[],
                &options,
            )
            .expect("runs")
        };
        let first = run();
        let second = run();
        assert!(first.segments.iter().any(|s| s.fault_events > 0));
        assert_ne!(
            first.segments[0].fault_events, first.segments[1].fault_events,
            "segments draw from independent derived seeds"
        );
        for (a, b) in first.segments.iter().zip(&second.segments) {
            assert_eq!(a.fault_events, b.fault_events);
            assert_eq!(a.stats, b.stats);
        }
    }
}
