//! Deterministic random number generation for reproducible simulations.
//!
//! Every stochastic component (Poisson arrivals, binary-exponential-backoff
//! draws, jitter) takes an explicit seed and derives its stream from it, so
//! a run is a pure function of `(configuration, seed)`. The determinism
//! property is asserted by integration tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use ddcr_sim::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a distinct child seed from a parent seed and an index, so
/// per-station or per-class streams never collide (SplitMix64 finaliser).
pub fn derive_seed(parent: u64, index: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for sweep job number `job_index` from a master seed.
///
/// Domain-separated from [`derive_seed`] (which partitions a *run's* seed
/// into per-station / per-class streams) so a sweep job's seed can itself
/// be split with `derive_seed` without colliding with sibling jobs. The
/// result depends only on `(master_seed, job_index)` — never on worker
/// count, thread identity, or completion order — which is what makes
/// parallel sweeps bitwise reproducible.
pub fn job_seed(master_seed: u64, job_index: u64) -> u64 {
    // Distinct fixed tweak keeps the job-seed space disjoint from the
    // per-station space of `derive_seed(master_seed, ..)`.
    derive_seed(master_seed ^ 0x5EED_10B5_0000_0001, job_index)
}

/// Derives the seed for fault-injection lane `lane` (one lane per fault
/// kind) from a run's master seed.
///
/// Domain-separated from both [`derive_seed`] and [`job_seed`] by its own
/// fixed tweak, so enabling fault injection never perturbs the arrival or
/// backoff streams of the run it is injected into — a faulty run and its
/// clean twin see identical workloads.
pub fn fault_seed(master_seed: u64, lane: u64) -> u64 {
    derive_seed(master_seed ^ 0xFA17_0CA5_0000_0003, lane)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn job_seeds_are_deterministic_and_domain_separated() {
        assert_eq!(job_seed(42, 7), job_seed(42, 7));
        assert_ne!(job_seed(42, 7), job_seed(42, 8));
        assert_ne!(job_seed(42, 7), job_seed(43, 7));
        // Disjoint from the per-station derivation space.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(derive_seed(42, i));
        }
        for i in 0..1000 {
            assert!(!seen.contains(&job_seed(42, i)), "domain collision at {i}");
        }
    }

    #[test]
    fn fault_seeds_are_deterministic_and_domain_separated() {
        assert_eq!(fault_seed(42, 1), fault_seed(42, 1));
        assert_ne!(fault_seed(42, 1), fault_seed(42, 2));
        assert_ne!(fault_seed(42, 1), fault_seed(43, 1));
        // Disjoint from both the per-station and the job-seed spaces.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(derive_seed(42, i));
            seen.insert(job_seed(42, i));
        }
        for i in 0..1000 {
            assert!(!seen.contains(&fault_seed(42, i)), "domain collision at {i}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(derive_seed(42, i)), "collision at index {i}");
        }
        // And differ across parents.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
