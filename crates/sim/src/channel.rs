//! The broadcast channel: slot time, collision semantics, observations.
//!
//! The paper's channel model (§3.2): a broadcast medium is characterised by
//! a slot time `x` — an interval large enough that a channel state
//! transition triggered at `t` is seen by every source before `t + x/2` —
//! and a channel state `chstate ∈ {silence, busy, collision}`. This module
//! encodes that contract: per decision slot, every station submits an
//! [`Action`]; the medium resolves them into an [`Observation`] that every
//! station hears.

use crate::message::Frame;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};

/// What a station does at a slot boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Listen only.
    Idle,
    /// Start transmitting the given frame.
    Transmit(Frame),
}

/// The channel state every station observes after a decision slot — the
/// paper's `chstate` variable, enriched with what a receiver can decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// `chstate = silence`: nobody transmitted; one slot time `x` elapsed.
    Silence,
    /// `chstate = busy`: exactly one station transmitted; the channel was
    /// held for the frame's full duration and the frame was decoded by all.
    Busy(Frame),
    /// `chstate = collision`: at least two stations transmitted.
    ///
    /// Under [`CollisionMode::Destructive`] (Ethernet) all frames are lost
    /// and `survivor` is `None`; one slot time elapsed. Under
    /// [`CollisionMode::Arbitrating`] (bus-internal exclusive-OR logic, as
    /// in busses internal to ATM nodes) the frame of the winning station
    /// survives in `survivor` and the channel is then held for its
    /// duration.
    Collision {
        /// The frame that survived arbitration, if the medium is
        /// non-destructive.
        survivor: Option<Frame>,
    },
    /// An injected-fault outcome ([`crate::FaultKind::EraseFrame`]): the
    /// channel was held for a frame's full duration but the CRC failed at
    /// every receiver, so nothing was decoded. Stations treat this like a
    /// collision — the transmitter retries — under the assumption that
    /// loss detection is symmetric (the sender sees the same corrupted
    /// channel it transmitted into).
    Garbled,
}

/// Collision semantics of the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CollisionMode {
    /// Ethernet-like destructive collisions: colliding frames are lost and
    /// cost one slot time of channel occupation.
    #[default]
    Destructive,
    /// Non-destructive collisions via bit-level arbitration (exclusive-OR
    /// logic at the bus level, §3.2): the transmitting station with the
    /// lowest arbitration rank wins and its frame goes through; the others
    /// observe the collision and back off. This is the ATM-internal-bus
    /// variant the paper sketches.
    Arbitrating,
}

/// Physical parameters of the broadcast medium.
///
/// # Examples
///
/// ```
/// use ddcr_sim::MediumConfig;
///
/// // Half-duplex Gigabit Ethernet: 4096-bit slot (carrier extension),
/// // 26 bytes of preamble/header/CRC/IFG overhead per frame.
/// let medium = MediumConfig::gigabit_ethernet();
/// assert_eq!(medium.slot_ticks, 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumConfig {
    /// Slot time `x` in ticks (bit-times).
    pub slot_ticks: u64,
    /// Physical framing/signalling overhead per frame in bits:
    /// `l'(msg) = l(msg) + overhead_bits`.
    pub overhead_bits: u64,
    /// Collision semantics.
    pub collision_mode: CollisionMode,
}

impl MediumConfig {
    /// Classical 10/100 Mb/s Ethernet: 512-bit slot, 26-byte overhead
    /// (preamble 8 + MAC header 14 + CRC 4 ≈ 26 bytes, IFG folded in).
    pub fn ethernet() -> Self {
        MediumConfig {
            slot_ticks: 512,
            overhead_bits: 26 * 8,
            collision_mode: CollisionMode::Destructive,
        }
    }

    /// Half-duplex Gigabit Ethernet (IEEE 802.3z, §5 of the paper):
    /// carrier-extended 4096-bit slot, same framing overhead.
    pub fn gigabit_ethernet() -> Self {
        MediumConfig {
            slot_ticks: 4096,
            overhead_bits: 26 * 8,
            collision_mode: CollisionMode::Destructive,
        }
    }

    /// A bus internal to an ATM node: slot time of a few bit times and
    /// non-destructive arbitration (§3.2).
    pub fn atm_internal_bus() -> Self {
        MediumConfig {
            slot_ticks: 4,
            overhead_bits: 5 * 8, // ATM cell header
            collision_mode: CollisionMode::Arbitrating,
        }
    }

    /// Ph-PDU bit length `l'` for a Data-Link PDU of `bits` bits.
    pub fn wire_bits(&self, bits: u64) -> u64 {
        bits + self.overhead_bits
    }

    /// Resolves the frames submitted in one decision slot into the
    /// observation every station hears and the channel time it consumes.
    ///
    /// This is the single source of truth for collision semantics: the
    /// engine's slot loop and the bounded model checker both call it, so
    /// they cannot drift apart (under [`CollisionMode::Arbitrating`] the
    /// lowest-numbered transmitting source wins).
    pub fn resolve(&self, frames: &[Frame]) -> (Observation, Ticks) {
        match frames {
            [] => (Observation::Silence, Ticks(self.slot_ticks)),
            [frame] => (Observation::Busy(*frame), frame.duration()),
            [first, rest @ ..] => match self.collision_mode {
                CollisionMode::Destructive => (
                    Observation::Collision { survivor: None },
                    Ticks(self.slot_ticks),
                ),
                CollisionMode::Arbitrating => {
                    // The slice pattern supplies a witness frame, so picking
                    // the arbitration winner cannot fail. Strict `<` keeps
                    // the first minimum on source ties, matching
                    // `Iterator::min_by_key`.
                    let winner = *rest.iter().fold(first, |best, f| {
                        if f.message.source < best.message.source {
                            f
                        } else {
                            best
                        }
                    });
                    (
                        Observation::Collision {
                            survivor: Some(winner),
                        },
                        winner.duration(),
                    )
                }
            },
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message if `slot_ticks` is zero (a medium with no
    /// propagation bound cannot detect collisions).
    pub fn validate(&self) -> Result<(), String> {
        if self.slot_ticks == 0 {
            return Err("slot time must be positive".to_owned());
        }
        Ok(())
    }
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig::ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            MediumConfig::ethernet(),
            MediumConfig::gigabit_ethernet(),
            MediumConfig::atm_internal_bus(),
        ] {
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn wire_bits_adds_overhead() {
        let cfg = MediumConfig::ethernet();
        assert_eq!(cfg.wire_bits(1000), 1208);
    }

    #[test]
    fn zero_slot_rejected() {
        let cfg = MediumConfig {
            slot_ticks: 0,
            overhead_bits: 0,
            collision_mode: CollisionMode::Destructive,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_ethernet() {
        assert_eq!(MediumConfig::default(), MediumConfig::ethernet());
        assert_eq!(CollisionMode::default(), CollisionMode::Destructive);
    }

    #[test]
    fn atm_bus_is_arbitrating() {
        assert_eq!(
            MediumConfig::atm_internal_bus().collision_mode,
            CollisionMode::Arbitrating
        );
    }

    /// Regression for the panic-sweep restructure: the arbitration winner
    /// is now picked by a fold over a slice-pattern witness instead of
    /// `min_by_key(..).expect(..)`. Pin the tie-break (first minimum wins,
    /// exactly like `min_by_key`) and larger contender counts.
    #[test]
    fn arbitration_fold_keeps_min_by_key_tie_break() {
        use crate::message::{ClassId, Message, MessageId, SourceId};
        let mk = |id: u64, source: u32, bits: u64| {
            Frame::new(
                Message {
                    id: MessageId(id),
                    source: SourceId(source),
                    class: ClassId(0),
                    bits,
                    arrival: Ticks(0),
                    deadline: Ticks(10_000),
                },
                bits + 208,
            )
        };
        let atm = MediumConfig::atm_internal_bus();
        // Two frames from the same source id: the first submitted wins.
        let frames = [mk(10, 4, 100), mk(11, 4, 900), mk(12, 9, 100)];
        let (obs, held) = atm.resolve(&frames);
        assert_eq!(
            obs,
            Observation::Collision {
                survivor: Some(frames[0])
            }
        );
        assert_eq!(held, frames[0].duration());
        // A wide slate: the unique minimum wins regardless of position.
        let wide: Vec<Frame> = (0..12u32).map(|s| mk(u64::from(s), 11 - s, 64)).collect();
        let (obs, _) = atm.resolve(&wide);
        assert_eq!(
            obs,
            Observation::Collision {
                survivor: Some(wide[11])
            },
            "source 0 sits last in the slate and must still win"
        );
    }

    #[test]
    fn resolve_matches_collision_semantics() {
        use crate::message::{ClassId, Message, MessageId, SourceId};
        let mk = |source: u32, bits: u64| {
            Frame::new(
                Message {
                    id: MessageId(u64::from(source)),
                    source: SourceId(source),
                    class: ClassId(0),
                    bits,
                    arrival: Ticks(0),
                    deadline: Ticks(10_000),
                },
                bits + 208,
            )
        };
        let eth = MediumConfig::ethernet();
        assert_eq!(eth.resolve(&[]), (Observation::Silence, Ticks(512)));
        let lone = mk(3, 1000);
        assert_eq!(eth.resolve(&[lone]), (Observation::Busy(lone), Ticks(1208)));
        assert_eq!(
            eth.resolve(&[mk(1, 100), mk(2, 100)]),
            (Observation::Collision { survivor: None }, Ticks(512))
        );
        let atm = MediumConfig::atm_internal_bus();
        let (obs, held) = atm.resolve(&[mk(5, 100), mk(2, 300), mk(7, 100)]);
        assert_eq!(
            obs,
            Observation::Collision {
                survivor: Some(mk(2, 300))
            },
            "lowest source wins arbitration"
        );
        assert_eq!(held, mk(2, 300).duration());
    }
}
