//! Deterministic scheduled membership changes: stations joining and
//! leaving the broadcast fabric mid-run.
//!
//! Mirrors the fault subsystem's design (see [`crate::FaultPlan`]): a
//! [`MembershipPlan`] keys every change to a **decision-slot ordinal** —
//! the count of resolved decision slots, a coordinate identical under
//! fast-forward and reference stepping — so a plan is bitwise replayable
//! and the engine's three fast-forward tiers can fence their jumps at the
//! next scheduled change exactly as they fence at fault events.
//!
//! Semantics in the engine:
//!
//! * **Leave**: the station powers off the fabric — its queue is recorded
//!   lost, and from that slot on it is fenced completely (no deliver /
//!   poll / observe; arrivals for it are lost). Its static leaves are
//!   reclaimed by the membership layer in `ddcr_core` at the next epoch
//!   boundary; at the medium level an absent station is simply silent.
//! * **Join**: the station powers on receive-only and resynchronizes
//!   through the epoch-stamp handshake of the protocol layer (PR 3): it
//!   stays off the channel until it observes a frame whose epoch began
//!   after its join, then adopts the shared state — the "reserved
//!   contention window" a joining station acquires its indices through is
//!   exactly this provably-silent span.

/// A membership transition for one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The station (re-)joins the fabric: it powers on receive-only and
    /// resynchronizes before contending.
    Join {
        /// Station index (attachment order).
        station: u32,
    },
    /// The station leaves the fabric: queue lost, silent from here on.
    Leave {
        /// Station index (attachment order).
        station: u32,
    },
}

impl MembershipChange {
    /// The station the change applies to.
    pub fn station(&self) -> u32 {
        match *self {
            MembershipChange::Join { station } | MembershipChange::Leave { station } => station,
        }
    }
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Decision-slot ordinal the change strikes at.
    pub slot: u64,
    /// What happens.
    pub change: MembershipChange,
}

/// A deterministic membership schedule.
///
/// Events are kept sorted by slot ordinal (stable for ties, so two changes
/// scheduled at the same slot apply in the order given). The empty plan
/// with no initially absent stations leaves the engine bitwise identical
/// to one without membership support.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MembershipPlan {
    /// Stations that start outside the fabric (absent from slot 0): they
    /// are fenced until a [`MembershipChange::Join`] admits them.
    initially_absent: Vec<u32>,
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// The empty plan: everyone present, nothing scheduled.
    pub fn none() -> Self {
        MembershipPlan::default()
    }

    /// Builds a plan from initially absent stations and scheduled events
    /// (sorted by slot, stable).
    pub fn from_events(initially_absent: Vec<u32>, mut events: Vec<MembershipEvent>) -> Self {
        events.sort_by_key(|e| e.slot);
        MembershipPlan {
            initially_absent,
            events,
        }
    }

    /// Whether the plan schedules nothing and nobody starts absent.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.initially_absent.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events, sorted by slot.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Stations absent from slot 0.
    pub fn initially_absent(&self) -> &[u32] {
        &self.initially_absent
    }

    /// The ordinal of the first event at or after `slot`, if any.
    pub fn next_event_at_or_after(&self, slot: u64) -> Option<u64> {
        let i = self.events.partition_point(|e| e.slot < slot);
        self.events.get(i).map(|e| e.slot)
    }

    /// The events scheduled exactly at `slot`.
    pub fn events_at(&self, slot: u64) -> &[MembershipEvent] {
        let lo = self.events.partition_point(|e| e.slot < slot);
        let hi = self.events.partition_point(|e| e.slot <= slot);
        &self.events[lo..hi]
    }

    /// Caps a fast-forward run of at most `cap` decision slots starting at
    /// `slot_ordinal` so it never crosses a scheduled membership change —
    /// the slot a change strikes must go through the reference stepper,
    /// the same fencing rule every fault transition obeys.
    pub(crate) fn fence(&self, slot_ordinal: u64, cap: u64) -> u64 {
        if self.events.is_empty() {
            return cap;
        }
        match self.next_event_at_or_after(slot_ordinal) {
            Some(next) => cap.min(next.saturating_sub(slot_ordinal)),
            None => cap,
        }
    }

    /// A convenience script: `station` leaves at `leave_slot` and rejoins
    /// at `rejoin_slot` (which must be strictly later).
    pub fn leave_then_rejoin(station: u32, leave_slot: u64, rejoin_slot: u64) -> Self {
        debug_assert!(leave_slot < rejoin_slot);
        MembershipPlan::from_events(
            Vec::new(),
            vec![
                MembershipEvent {
                    slot: leave_slot,
                    change: MembershipChange::Leave { station },
                },
                MembershipEvent {
                    slot: rejoin_slot,
                    change: MembershipChange::Join { station },
                },
            ],
        )
    }
}

/// Marker value in the engine's `down` table for a station that is absent
/// (left / never joined) rather than crashed: it never restarts on its
/// own — only a scheduled [`MembershipChange::Join`] brings it back.
pub(crate) const ABSENT: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_and_indexes_events() {
        let plan = MembershipPlan::from_events(
            vec![2],
            vec![
                MembershipEvent {
                    slot: 9,
                    change: MembershipChange::Join { station: 2 },
                },
                MembershipEvent {
                    slot: 3,
                    change: MembershipChange::Leave { station: 0 },
                },
            ],
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].slot, 3);
        assert_eq!(plan.next_event_at_or_after(0), Some(3));
        assert_eq!(plan.next_event_at_or_after(4), Some(9));
        assert_eq!(plan.next_event_at_or_after(10), None);
        assert_eq!(plan.events_at(3).len(), 1);
        assert!(plan.events_at(4).is_empty());
        assert_eq!(plan.initially_absent(), &[2]);
    }

    #[test]
    fn fence_stops_before_the_next_event() {
        let plan = MembershipPlan::leave_then_rejoin(1, 5, 12);
        assert_eq!(plan.fence(0, 100), 5);
        assert_eq!(plan.fence(5, 100), 0);
        assert_eq!(plan.fence(6, 100), 6);
        assert_eq!(plan.fence(13, 100), 100);
        assert_eq!(MembershipPlan::none().fence(0, 7), 7);
    }

    #[test]
    fn empty_plan_with_absentees_is_not_empty() {
        let plan = MembershipPlan::from_events(vec![0], Vec::new());
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 0);
    }
}
