//! The station abstraction every MAC protocol implements.

use crate::channel::{Action, Observation};
use crate::message::{Frame, Message};
use crate::metrics::PhaseHint;
use crate::time::Ticks;

/// How a station relates to an upcoming stretch of **busy** decision
/// slots (see [`Station::hold_hint`]).
///
/// The engine only fast-forwards a busy run when exactly one live station
/// answers [`HoldHint::Hold`] and every other live station answers
/// [`HoldHint::Quiet`]; any [`HoldHint::Contend`] vetoes the run and the
/// slot goes through the reference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldHint {
    /// No promise: the station must be polled this slot (the conservative
    /// default).
    Contend,
    /// The station guarantees it polls [`Action::Idle`] for the next `n`
    /// decision slots, *even if* each of those slots carries a successful
    /// transmission by another station. `u64::MAX` means "for as long as
    /// nothing new is delivered to me".
    Quiet(u64),
    /// The station commits to transmitting exactly one frame per decision
    /// slot for the next `n` slots, provided every one of those frames
    /// goes out uncontested and nothing new is delivered to it meanwhile.
    Hold(u64),
}

/// How a station relates to an upcoming stretch of **contended** decision
/// slots — a tree-search resolution — (see [`Station::search_hint`]).
///
/// The engine fast-forwards a contention run by stepping only the engaged
/// stations ([`SearchHint::Engage`] and, conservatively,
/// [`SearchHint::Contend`]) slot by slot while every [`SearchHint::Quiet`]
/// station is caught up once at the end of the run through
/// [`Station::skip_search`]. At least one `Engage` and one `Quiet` answer
/// are required for a run to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchHint {
    /// No promise: the station must be polled and observed every slot (the
    /// conservative default). Unlike [`HoldHint::Contend`] this does not
    /// veto the run — the engine simply keeps stepping the station.
    Contend,
    /// The station guarantees it polls [`Action::Idle`] at every decision
    /// slot until something new is delivered to it, *whatever* the channel
    /// does meanwhile (successes, collisions, silence). It accepts being
    /// caught up in bulk through [`Station::skip_search`].
    Quiet,
    /// The station is (or may be) actively resolving channel contention —
    /// it must be stepped slot by slot, and its participation is what makes
    /// the run worth fast-forwarding for the quiet majority.
    Engage,
}

/// A station's promise about a run of *loaded idle cycles* — the
/// contention regime in which every backlogged station sits the whole time
/// tree search out (its deadline class lies beyond the horizon) and then
/// collides at the attempt slot, deterministically, cycle after cycle (see
/// [`Station::attempt_cycle_hint`]).
///
/// Each cycle is `probes` provably silent probe slots followed by one
/// destructively collided attempt slot, so an entire run is a pure
/// function of its start time and the cycle count: the engine resolves it
/// analytically in one step instead of chorus-stepping every contender
/// through every slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptCycleHint {
    /// Silent probe slots at the start of each cycle (the protocol's
    /// time-tree branching degree for DDCR).
    pub probes: u64,
    /// Consecutive cycles the promise covers from `now`; `0` vetoes a
    /// bulk run without vetoing the slot-by-slot paths.
    pub cycles: u64,
    /// `Some(source id)` when this station transmits — and collides — at
    /// every attempt slot of the run; `None` for a provably silent
    /// observer. A run needs at least two contenders (a lone transmitter
    /// would resolve `Busy`, zero would be pure silence).
    pub contender: Option<u32>,
}

/// Whether a station needs per-slot engagement at all, or can be parked
/// by the engine's active-set scheduler (see [`Station::wake_hint`]).
///
/// The active-set tier keeps per-slot cost proportional to *contenders*
/// rather than *population*: a [`WakeHint::Dormant`] station is removed
/// from the poll loop entirely, its channel observations are deferred into
/// a catch-up log, and it is replayed in one batch on its next wake (a
/// delivery, a fault/membership transition, or an engine event that could
/// invalidate the promise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeHint {
    /// No promise: the station must stay in the per-slot loops (the
    /// conservative default, correct for every implementation).
    Active,
    /// A standing promise, holding until the next [`Station::deliver`] or
    /// until broken by a channel event the station itself would react to:
    ///
    /// * every [`Station::poll`] answers [`Action::Idle`] regardless of
    ///   what the channel carries meanwhile;
    /// * [`Station::backlog`] is `0` and stays `0` under any sequence of
    ///   deferred observations;
    /// * [`Station::next_ready`] is `None`, [`Station::hold_hint`] is
    ///   `Quiet(u64::MAX)`, [`Station::search_hint`] is `Quiet`, and
    ///   [`Station::attempt_cycle_hint`] is a silent observer compatible
    ///   with whatever cycle shape the contenders agree on — so the engine
    ///   may answer tier-gating queries on the station's behalf;
    /// * the observation entry points ([`Station::observe`],
    ///   [`Station::skip_silence`], [`Station::skip_busy`],
    ///   [`Station::skip_search`], [`Station::skip_attempt_cycles`]) may be
    ///   deferred and replayed later, in channel order with identical
    ///   arguments, leaving the station in exactly the state immediate
    ///   calls would have;
    /// * crucially, the promise may only *stop* holding through an
    ///   observation — so any channel event that breaks it is visible to
    ///   the stations the engine kept live, which report `Active` in turn
    ///   (shared-automaton protocols must therefore answer `Active`
    ///   whenever the replicated state is outside the regime the promise
    ///   describes, e.g. mid tree-search or under a burst reservation).
    Dormant,
}

/// One resolved decision slot of a contention fast-forward run, recorded so
/// quiet stations can be caught up exactly (see [`Station::skip_search`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSlotRecord {
    /// When the decision slot started.
    pub at: Ticks,
    /// When the channel became free again.
    pub next_free: Ticks,
    /// The channel outcome every station would have observed.
    pub observation: Observation,
}

/// A station (message source `s_i`) attached to the broadcast medium.
///
/// The engine drives each station through a strict slot-synchronous cycle:
///
/// 1. [`Station::deliver`] hands over messages whose arrival time has been
///    reached (the local queue `Q_i` is the station's own business);
/// 2. [`Station::poll`] asks for this slot's [`Action`];
/// 3. after resolving all actions, [`Station::observe`] reports the channel
///    [`Observation`] — identically to every station, which is what makes
///    replicated deterministic protocols such as CSMA/DDCR possible.
///
/// Implementations must be deterministic functions of their inputs (plus
/// any seeded RNG they own) so that simulations are reproducible.
///
/// `Send` is a supertrait so whole engines can migrate between worker
/// threads across federation rounds (see [`crate::federation`]); station
/// state is plain data for every in-tree protocol, so this costs nothing.
pub trait Station: Send {
    /// Accepts a newly arrived message into the local queue. Implementations
    /// must enqueue the message (never drop it on arrival) so the engine's
    /// backlog accounting stays exact.
    fn deliver(&mut self, message: Message);

    /// Decides the action for the decision slot starting at `now`.
    fn poll(&mut self, now: Ticks) -> Action;

    /// Hears the channel outcome of the slot that started at `now`;
    /// `next_free` is when the channel becomes free again (equal to
    /// `now + x` for silence/destructive collisions, or the end of the
    /// surviving frame otherwise).
    fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation);

    /// Number of messages still queued locally (for run-to-completion
    /// termination checks).
    fn backlog(&self) -> usize;

    /// Idle fast-forward hint: the earliest slot-start time at or after
    /// which this station might transmit (or otherwise needs per-slot
    /// engagement), assuming the channel stays silent until then.
    ///
    /// The engine uses the hint to jump silence runs in one step instead of
    /// polling every station every slot. The contract:
    ///
    /// * `Some(t)` with `t <= now` — no promise; the engine polls this slot
    ///   normally (the conservative default).
    /// * `Some(t)` with `t > now` — the station guarantees it polls
    ///   [`Action::Idle`] at every decision slot starting before `t`,
    ///   provided the channel stays silent over that span.
    /// * `None` — the station stays idle indefinitely (until a new message
    ///   is [`Station::deliver`]ed to it).
    ///
    /// When the engine skips a silence run it does **not** call
    /// [`Station::observe`] for the skipped slots; it calls
    /// [`Station::skip_silence`] once instead, and that call must leave the
    /// station in exactly the state the per-slot silence observations would
    /// have. The default is `Some(now)`: fully backward compatible, never
    /// skipped.
    fn next_ready(&self, now: Ticks) -> Option<Ticks> {
        Some(now)
    }

    /// Absorbs a fast-forwarded run of `slots` silent decision slots, the
    /// first starting at `from`, each `slot` ticks wide.
    ///
    /// Called by the engine instead of per-slot [`Station::observe`] when a
    /// silence run is skipped (see [`Station::next_ready`]). Must be
    /// behaviourally identical to observing `slots` consecutive
    /// [`Observation::Silence`] outcomes; in particular it must not change
    /// the station's [`Station::backlog`]. The default replays the silence
    /// observations one by one — correct for every implementation, O(1)
    /// overrides are an optimisation.
    fn skip_silence(&mut self, from: Ticks, slots: u64, slot: Ticks) {
        for i in 0..slots {
            let at = from + slot * i;
            self.observe(at, at + slot, &Observation::Silence);
        }
    }

    /// An injected omission failure: the station loses power at `now`.
    ///
    /// Returns the messages lost from its local queue (the engine records
    /// them in [`crate::ChannelStats::lost`]). While down the engine fences
    /// the station completely — no [`Station::deliver`], [`Station::poll`]
    /// or [`Station::observe`] calls reach it. The default keeps the queue
    /// and freezes: correct for stateless stations; protocol stations
    /// should drop volatile state and report what was lost.
    fn crash(&mut self, _now: Ticks) -> Vec<Message> {
        Vec::new()
    }

    /// The station comes back up at `now` after a [`Station::crash`].
    ///
    /// Default: no-op (resume as frozen). Replicated protocol stations must
    /// instead enter a resynchronization mode and stay off the channel
    /// until their replica state is provably consistent again.
    fn restart(&mut self, _now: Ticks) {}

    /// A short label for traces and error messages.
    fn label(&self) -> String {
        format!("station(backlog={})", self.backlog())
    }

    /// Busy fast-forward hint: how this station relates to the next
    /// stretch of busy (single-transmitter) decision slots.
    ///
    /// Queried by the engine after deliveries, before polling, when busy
    /// fast-forward is enabled. The engine jumps a run of back-to-back
    /// successful transmissions only when exactly one live station answers
    /// [`HoldHint::Hold`] and all others answer [`HoldHint::Quiet`]; the
    /// run length is capped by every hint, the next pending arrival, the
    /// next scheduled fault ordinal, and the run limit. During the run the
    /// holder is still polled and observed slot by slot (its frames carry
    /// real payload state); the quiet stations are caught up once at the
    /// end via [`Station::skip_busy`]. The default `Contend` never
    /// fast-forwards and is correct for every implementation.
    fn hold_hint(&self, _now: Ticks) -> HoldHint {
        HoldHint::Contend
    }

    /// Absorbs a fast-forwarded run of busy decision slots: `frames` were
    /// transmitted back to back by another station, the first slot
    /// starting at `from`, each occupying exactly its frame duration;
    /// `slot` is the medium's slot width in ticks.
    ///
    /// Called by the engine instead of per-slot [`Station::observe`] on
    /// every quiet station when a busy run is skipped (see
    /// [`Station::hold_hint`]). Must be behaviourally identical to
    /// observing the corresponding [`Observation::Busy`] outcomes one by
    /// one. The default replays them — correct for every implementation,
    /// O(1) overrides are an optimisation.
    fn skip_busy(&mut self, from: Ticks, frames: &[Frame], _slot: Ticks) {
        let mut at = from;
        for frame in frames {
            let next_free = at + frame.duration();
            self.observe(at, next_free, &Observation::Busy(*frame));
            at = next_free;
        }
    }

    /// Observability hook: attributes the decision slot about to be
    /// resolved to a protocol phase (see [`PhaseHint`]).
    ///
    /// Queried by the engine after [`Station::poll`] and before
    /// [`Station::observe`], only when metrics are enabled. A replicated
    /// protocol should answer from its shared automaton state while synced
    /// and `None` otherwise; the default `None` (for stations with no
    /// phase structure) leaves the slot unattributed.
    fn phase_hint(&self) -> Option<PhaseHint> {
        None
    }

    /// Contention fast-forward hint: how this station relates to the next
    /// stretch of contended (tree-search) decision slots.
    ///
    /// Queried by the engine after deliveries, before polling, when
    /// contention fast-forward is enabled. The engine runs a contention
    /// fast-forward only when at least one live station answers
    /// [`SearchHint::Engage`] and at least one answers
    /// [`SearchHint::Quiet`]; engaged (and contending) stations are then
    /// polled and observed slot by slot exactly as the reference stepper
    /// would, while the quiet stations are caught up once at the end via
    /// [`Station::skip_search`]. The run stops before any pending arrival,
    /// at the next scheduled fault ordinal or restart, at the run limit,
    /// and as soon as every engaged station's backlog drains. The default
    /// `Contend` is correct for every implementation.
    fn search_hint(&self, _now: Ticks) -> SearchHint {
        SearchHint::Contend
    }

    /// An opaque protocol-specific synchronization checkpoint published at
    /// the end of a contention fast-forward run.
    ///
    /// The engine asks the engaged stations (in attachment order) for a
    /// checkpoint and hands the first `Some` to every quiet station's
    /// [`Station::skip_search`], which may downcast it to resynchronize in
    /// better than O(run length). A replicated protocol should answer only
    /// while synced — the checkpoint must describe shared state every
    /// synced replica agrees on. The default `None` keeps quiet stations on
    /// the exact replay path.
    fn search_checkpoint(&self) -> Option<Box<dyn std::any::Any>> {
        None
    }

    /// Absorbs a fast-forwarded run of contended decision slots: `records`
    /// lists each resolved slot in channel order, the first starting at
    /// `from`; `slot` is the medium's slot width in ticks; `checkpoint` is
    /// the engaged stations' synchronization checkpoint, if any (see
    /// [`Station::search_checkpoint`]).
    ///
    /// Called by the engine instead of per-slot [`Station::observe`] on
    /// every quiet station when a contention run is skipped (see
    /// [`Station::search_hint`]). Must be behaviourally identical to
    /// observing the recorded outcomes one by one. The default replays
    /// them — correct for every implementation; checkpoint-based overrides
    /// are an optimisation.
    fn skip_search(
        &mut self,
        from: Ticks,
        records: &[SearchSlotRecord],
        _checkpoint: Option<&dyn std::any::Any>,
        _slot: Ticks,
    ) {
        let _ = from;
        for record in records {
            self.observe(record.at, record.next_free, &record.observation);
        }
    }

    /// Analytic contention fast-forward hint: whether the next stretch of
    /// decision slots is a run of deterministic loaded idle cycles this
    /// station can promise its exact behaviour through (see
    /// [`AttemptCycleHint`]).
    ///
    /// Queried by the engine after deliveries, before polling, when
    /// contention fast-forward is enabled and the medium destroys
    /// collisions. A bulk run starts only when **every** live station
    /// answers `Some` with the same cycle shape and at least two are
    /// contenders; the run covers the minimum promised cycle count, cut
    /// at whole-cycle boundaries by the next pending arrival, the fault
    /// fence, and the run limit. Stations are then caught up once through
    /// [`Station::skip_attempt_cycles`] instead of `probes + 1` polls and
    /// observes per cycle. The default `None` (for protocols without this
    /// cycle structure) refuses bulk runs and is always correct.
    fn attempt_cycle_hint(&self, _now: Ticks, _slot: Ticks) -> Option<AttemptCycleHint> {
        None
    }

    /// Absorbs a bulk run of `cycles` loaded idle cycles starting at
    /// `from`, each `probes` silent probe slots followed by one
    /// destructively collided attempt slot of width `slot`.
    ///
    /// Called on every live station after a run promised through
    /// [`Station::attempt_cycle_hint`] (and replayed from the active-set
    /// catch-up log on wake); must leave the station bitwise identical to
    /// observing those `cycles · (probes + 1)` outcomes one by one. Only
    /// ever invoked on stations whose hint (or dormancy promise) covered
    /// the run; the default replays the outcomes — correct for every
    /// implementation, O(1) overrides are an optimisation.
    fn skip_attempt_cycles(&mut self, from: Ticks, cycles: u64, probes: u64, slot: Ticks) {
        let mut at = from;
        for _ in 0..cycles {
            for _ in 0..probes {
                self.observe(at, at + slot, &Observation::Silence);
                at += slot;
            }
            self.observe(at, at + slot, &Observation::Collision { survivor: None });
            at += slot;
        }
    }

    /// Active-set scheduler hint: whether this station can be parked out
    /// of the per-slot loops entirely (see [`WakeHint`]).
    ///
    /// Queried by the engine at the end of each resolved operation when
    /// the active-set tier is enabled. Stations update the answer on
    /// [`Station::deliver`] and on observations (it is a pure function of
    /// their state); a parked station is never polled and receives its
    /// deferred observations in one batched catch-up on its next wake.
    /// The default `Active` never parks and is correct for every
    /// implementation.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Active
    }

    /// Publishes an epoch-anchored resynchronization checkpoint for the
    /// active-set scheduler: `(epoch start, opaque checkpoint)`, where the
    /// checkpoint describes the shared replica state every synced station
    /// agrees on, reconstructible from the epoch boundary plus the
    /// observation sequence since it (the same soundness argument that
    /// backs crash-restart resynchronization).
    ///
    /// The engine captures a checkpoint from a fully caught-up station
    /// whenever one parks or wakes, and uses it to short-circuit later
    /// wakes: a station parked since before the epoch boundary is rebased
    /// onto the boundary through [`Station::resync_rebase`], replays only
    /// the catch-up tail from the boundary on, and adopts the shared
    /// counters through [`Station::resync_adopt`] — `O(final epoch)` work
    /// instead of `O(dormant span)`. The default `None` keeps every wake on
    /// the exact full-replay path.
    fn resync_checkpoint(&self) -> Option<(Ticks, Box<dyn std::any::Any + Send>)> {
        None
    }

    /// Rebases this (provably silent, parked) station onto the epoch
    /// boundary described by `checkpoint`, discarding its stale shared
    /// automaton view. Returns `true` when the checkpoint was understood
    /// and the rebase happened; `false` falls back to full replay.
    ///
    /// After a successful rebase the engine replays the catch-up tail from
    /// the epoch boundary on through the regular observation entry points,
    /// then calls [`Station::resync_adopt`] with the same checkpoint at the
    /// log position it was captured at. The default refuses.
    fn resync_rebase(&mut self, _checkpoint: &dyn std::any::Any) -> bool {
        false
    }

    /// Adopts the shared (replica-invariant) counter block from
    /// `checkpoint`, overwriting whatever the tail replay accumulated —
    /// the checkpoint spans the whole dormant prefix, including operations
    /// before the epoch boundary that the rebase discarded. Private
    /// counters stay untouched: the station was provably silent. Only ever
    /// called after a successful [`Station::resync_rebase`]. The default is
    /// a no-op.
    fn resync_adopt(&mut self, _checkpoint: &dyn std::any::Any) {}
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::message::Frame;
    use std::collections::VecDeque;

    /// A trivially greedy station: transmits the head of its FIFO queue
    /// whenever it believes the channel is free, never backs off. Useful
    /// for exercising the engine's collision logic in tests.
    #[derive(Debug, Default)]
    pub struct GreedyStation {
        pub queue: VecDeque<Message>,
        pub overhead_bits: u64,
        pub observations: Vec<Observation>,
    }

    impl GreedyStation {
        pub fn new(overhead_bits: u64) -> Self {
            GreedyStation {
                queue: VecDeque::new(),
                overhead_bits,
                observations: Vec::new(),
            }
        }
    }

    impl Station for GreedyStation {
        fn deliver(&mut self, message: Message) {
            self.queue.push_back(message);
        }

        fn poll(&mut self, _now: Ticks) -> Action {
            match self.queue.front() {
                Some(&message) => Action::Transmit(Frame::new(
                    message,
                    message.bits + self.overhead_bits,
                )),
                None => Action::Idle,
            }
        }

        fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
            let transmitted = match observation {
                Observation::Busy(frame) => Some(frame.message.id),
                Observation::Collision {
                    survivor: Some(frame),
                } => Some(frame.message.id),
                _ => None,
            };
            if transmitted.is_some() && self.queue.front().map(|m| m.id) == transmitted {
                self.queue.pop_front();
            }
            self.observations.push(*observation);
        }

        fn backlog(&self) -> usize {
            self.queue.len()
        }
    }
}
