//! The station abstraction every MAC protocol implements.

use crate::channel::{Action, Observation};
use crate::message::Message;
use crate::time::Ticks;

/// A station (message source `s_i`) attached to the broadcast medium.
///
/// The engine drives each station through a strict slot-synchronous cycle:
///
/// 1. [`Station::deliver`] hands over messages whose arrival time has been
///    reached (the local queue `Q_i` is the station's own business);
/// 2. [`Station::poll`] asks for this slot's [`Action`];
/// 3. after resolving all actions, [`Station::observe`] reports the channel
///    [`Observation`] — identically to every station, which is what makes
///    replicated deterministic protocols such as CSMA/DDCR possible.
///
/// Implementations must be deterministic functions of their inputs (plus
/// any seeded RNG they own) so that simulations are reproducible.
pub trait Station {
    /// Accepts a newly arrived message into the local queue.
    fn deliver(&mut self, message: Message);

    /// Decides the action for the decision slot starting at `now`.
    fn poll(&mut self, now: Ticks) -> Action;

    /// Hears the channel outcome of the slot that started at `now`;
    /// `next_free` is when the channel becomes free again (equal to
    /// `now + x` for silence/destructive collisions, or the end of the
    /// surviving frame otherwise).
    fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation);

    /// Number of messages still queued locally (for run-to-completion
    /// termination checks).
    fn backlog(&self) -> usize;

    /// A short label for traces and error messages.
    fn label(&self) -> String {
        format!("station(backlog={})", self.backlog())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::message::Frame;
    use std::collections::VecDeque;

    /// A trivially greedy station: transmits the head of its FIFO queue
    /// whenever it believes the channel is free, never backs off. Useful
    /// for exercising the engine's collision logic in tests.
    #[derive(Debug, Default)]
    pub struct GreedyStation {
        pub queue: VecDeque<Message>,
        pub overhead_bits: u64,
        pub observations: Vec<Observation>,
    }

    impl GreedyStation {
        pub fn new(overhead_bits: u64) -> Self {
            GreedyStation {
                queue: VecDeque::new(),
                overhead_bits,
                observations: Vec::new(),
            }
        }
    }

    impl Station for GreedyStation {
        fn deliver(&mut self, message: Message) {
            self.queue.push_back(message);
        }

        fn poll(&mut self, _now: Ticks) -> Action {
            match self.queue.front() {
                Some(&message) => Action::Transmit(Frame::new(
                    message,
                    message.bits + self.overhead_bits,
                )),
                None => Action::Idle,
            }
        }

        fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
            let transmitted = match observation {
                Observation::Busy(frame) => Some(frame.message.id),
                Observation::Collision {
                    survivor: Some(frame),
                } => Some(frame.message.id),
                _ => None,
            };
            if transmitted.is_some() && self.queue.front().map(|m| m.id) == transmitted {
                self.queue.pop_front();
            }
            self.observations.push(*observation);
        }

        fn backlog(&self) -> usize {
            self.queue.len()
        }
    }
}
