//! The slot-synchronous simulation engine.
//!
//! The engine advances a single broadcast channel through decision slots.
//! At each decision point it (1) delivers due message arrivals to their
//! stations, (2) polls every station for an [`Action`], (3) resolves the
//! channel state exactly as the paper's model prescribes — silence, busy,
//! or collision — and (4) reports the identical [`Observation`] to every
//! station. Time advances by one slot time `x` for silence and destructive
//! collisions, and by the frame duration `l'` for successful transmissions
//! (throughput normalised to 1 bit/tick), which keeps the engine's
//! accounting aligned with the `B_DDCR` bound of §4.3 (`Σ l'/ψ + x·S`).

use crate::channel::{Action, CollisionMode, MediumConfig, Observation};
use crate::fault::{fence_cap, FaultPlan, SlotFaults};
use crate::membership::{MembershipChange, MembershipPlan, ABSENT};
use crate::message::{Delivery, Frame, Message};
use crate::metrics::{PhaseHint, ProtocolPhase, SimMetrics, XiBoundTable};
use crate::station::{HoldHint, SearchHint, SearchSlotRecord, Station, WakeHint};
use crate::stats::ChannelStats;
use crate::time::Ticks;
use crate::trace::{JsonlSink, Trace, TraceEvent};
use std::collections::VecDeque;

/// Error raised when assembling or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The medium configuration is physically implausible.
    InvalidMedium(String),
    /// A message routes to a station index that was never added.
    UnknownSource {
        /// The message's source id.
        source: u32,
        /// Number of stations attached.
        stations: usize,
    },
    /// `run_to_completion` exceeded its tick budget with work outstanding.
    Timeout {
        /// Time at which the run gave up.
        at: Ticks,
        /// Messages still queued across all stations.
        backlog: usize,
    },
    /// A federation assembly was internally inconsistent: mismatched
    /// segment/schedule counts, a zero epoch, or a malformed bridge route
    /// (see [`crate::federation`]).
    InvalidFederation(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidMedium(msg) => write!(f, "invalid medium: {msg}"),
            SimError::UnknownSource { source, stations } => {
                write!(f, "message for source {source} but only {stations} stations attached")
            }
            SimError::Timeout { at, backlog } => {
                write!(f, "simulation timed out at {at} with backlog {backlog}")
            }
            SimError::InvalidFederation(msg) => write!(f, "invalid federation: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-station hot state, split out of the boxed `Station` trait objects
/// into parallel structure-of-arrays columns: the fields the engine
/// touches on every decision slot (fencing, wake bookkeeping) live in
/// three dense arrays, so the per-slot scans are cache-linear instead of
/// chasing one heap allocation per station.
#[derive(Debug, Default)]
struct StationHot {
    /// Per-station fencing state: `Some(r)` means off the fabric until the
    /// slot with ordinal `r` (restart processed at the start of that
    /// slot). A crashed station carries its restart ordinal; an absent one
    /// (left, or never joined — see [`MembershipPlan`]) carries the
    /// [`ABSENT`] sentinel, which never falls due on its own. Only ever
    /// populated by a non-empty fault or membership plan.
    down: Vec<Option<u64>>,
    /// Whether the active-set scheduler has parked the station (see
    /// [`WakeHint::Dormant`]). A parked station is never down and never in
    /// the `active` index.
    parked: Vec<bool>,
    /// For a parked station: the absolute index (see
    /// `Engine::catchup_base`) of the first catch-up log entry it has not
    /// replayed yet — its next-wake position in the deferred channel
    /// history.
    cursor: Vec<u64>,
}

/// One deferred channel operation in the active-set catch-up log: enough
/// to drive the corresponding observation entry point of a parked station
/// with exactly the arguments a live station received, in channel order.
#[derive(Debug, Clone)]
enum CatchUp {
    /// One reference-stepped decision slot ([`Station::observe`]).
    Slot {
        at: Ticks,
        next_free: Ticks,
        observation: Observation,
    },
    /// A fast-forwarded silence run ([`Station::skip_silence`]).
    Silence { from: Ticks, slots: u64, slot: Ticks },
    /// A fast-forwarded busy run ([`Station::skip_busy`]).
    Busy {
        from: Ticks,
        frames: Vec<Frame>,
        slot: Ticks,
    },
    /// A fast-forwarded contention run ([`Station::skip_search`]; parked
    /// stations take the exact per-record replay path, so no checkpoint is
    /// stored).
    Search {
        from: Ticks,
        records: Vec<SearchSlotRecord>,
        slot: Ticks,
    },
    /// An analytic attempt-cycle run ([`Station::skip_attempt_cycles`]).
    Cycles {
        from: Ticks,
        cycles: u64,
        probes: u64,
        slot: Ticks,
    },
}

impl CatchUp {
    /// Channel time the deferred operation starts at. The log is
    /// contiguous in channel time: each entry starts where the previous
    /// one ended.
    fn start(&self) -> Ticks {
        match self {
            CatchUp::Slot { at, .. } => *at,
            CatchUp::Silence { from, .. }
            | CatchUp::Busy { from, .. }
            | CatchUp::Search { from, .. }
            | CatchUp::Cycles { from, .. } => *from,
        }
    }

    /// Channel time the deferred operation ends at.
    fn end(&self) -> Ticks {
        match self {
            CatchUp::Slot { next_free, .. } => *next_free,
            CatchUp::Silence { from, slots, slot } => *from + *slot * *slots,
            CatchUp::Busy { from, frames, .. } => {
                frames.iter().fold(*from, |at, f| at + f.duration())
            }
            CatchUp::Search { from, records, .. } => {
                records.last().map_or(*from, |r| r.next_free)
            }
            CatchUp::Cycles {
                from,
                cycles,
                probes,
                slot,
            } => *from + *slot * ((*probes + 1) * *cycles),
        }
    }
}

/// The engine-held epoch-anchored wake shortcut: a resynchronization
/// checkpoint captured from a fully caught-up station (see
/// [`Station::resync_checkpoint`]), refreshed on every park and wake and
/// dropped on fault/membership transitions. A station that parked before
/// the checkpoint's epoch boundary wakes by rebasing onto the boundary and
/// replaying only the log tail from it — `O(final epoch)` instead of
/// `O(dormant span)`.
struct WakeAnchor {
    /// Channel time of the epoch boundary the checkpoint rebuilds at.
    epoch_start: Ticks,
    /// Absolute catch-up log index at capture time: the donor had observed
    /// exactly the entries below it, so its counter block is exact there.
    at: u64,
    /// The opaque protocol checkpoint.
    checkpoint: Box<dyn std::any::Any + Send>,
}

/// The simulation engine: one broadcast medium plus its stations.
///
/// # Examples
///
/// ```
/// use ddcr_sim::{Engine, MediumConfig};
///
/// # fn main() -> Result<(), ddcr_sim::SimError> {
/// let engine = Engine::new(MediumConfig::ethernet())?;
/// assert_eq!(engine.now(), ddcr_sim::Ticks::ZERO);
/// # Ok(())
/// # }
/// ```
pub struct Engine {
    medium: MediumConfig,
    stations: Vec<Box<dyn Station>>,
    /// Future arrivals, sorted descending by (time, id) so `pop` yields the
    /// earliest. Kept unsorted between [`Engine::add_arrivals`] batches and
    /// sorted once on first use (see `pending_dirty`).
    pending: Vec<Message>,
    /// Whether `pending` needs a sort before the next ordered access.
    pending_dirty: bool,
    now: Ticks,
    stats: ChannelStats,
    trace: Trace,
    /// Scratch buffer for this slot's transmitters, reused across slots so
    /// the hot loop allocates nothing.
    transmitters: Vec<Frame>,
    /// The injected-fault schedule (empty by default: zero overhead).
    faults: FaultPlan,
    /// Count of decision slots resolved so far — the coordinate fault
    /// events are keyed by, identical under fast-forward and reference
    /// stepping.
    slot_ordinal: u64,
    /// The per-station hot state (down/absent fencing, park flags, wake
    /// cursors), SoA-split out of the boxed stations — see [`StationHot`].
    hot: StationHot,
    /// The active-set index: station indices not currently parked, in
    /// ascending attachment order (so every active-set loop visits
    /// stations in exactly the order the full loops did). Down stations
    /// stay in the index — the per-loop `down` checks fence them, exactly
    /// as before.
    active: Vec<usize>,
    /// Count of parked stations (`hot.parked` trues).
    parked_count: usize,
    /// The shared catch-up log of deferred channel operations; one entry
    /// serves every parked station, each tracking its own replay cursor.
    catchup: VecDeque<CatchUp>,
    /// Absolute index of `catchup`'s front entry: compaction drops
    /// replayed prefixes without renumbering cursors.
    catchup_base: u64,
    /// Compaction trigger: when the log outgrows this, drop the prefix
    /// every parked station has replayed and double the watermark
    /// (amortised O(1) per append).
    catchup_watermark: usize,
    /// Active-set scheduling (on by default): dormant stations are parked
    /// out of the per-slot loops and caught up in batches on wake.
    /// Independently switchable from the other tiers for bisection.
    active_set: bool,
    /// Count of `Station::poll` calls issued so far — the telemetry the
    /// active-set scale tests assert on (polled station-slots vs. the
    /// `slot_ordinal × station_count` total).
    polls: u64,
    /// Count of catch-up log entries replayed into waking stations —
    /// telemetry for the epoch-anchored wake shortcut (stays near the
    /// final-epoch tail size per wake when the shortcut engages, grows
    /// with the dormant span when it cannot).
    replays: u64,
    /// The epoch-anchored wake shortcut, when one is available.
    anchor: Option<WakeAnchor>,
    /// The scheduled membership changes (empty by default: zero overhead).
    membership: MembershipPlan,
    /// Cached `stations backlog + pending` total; valid when not stale.
    /// Silence slots cannot change any queue, so the cache only goes stale
    /// on delivered arrivals and busy/collision slots.
    backlog_cache: usize,
    backlog_stale: bool,
    /// Idle fast-forward (on by default). Disable to force the reference
    /// slot-by-slot stepper, e.g. for equivalence tests.
    fast_forward: bool,
    /// Busy-period fast-forward (on by default): back-to-back committed
    /// transmissions by a single holder are run without polling the quiet
    /// stations each slot. Independently switchable from `fast_forward`
    /// for bisection.
    busy_fast_forward: bool,
    /// Scratch buffer for the frames of one busy run, reused across runs.
    busy_frames: Vec<Frame>,
    /// Contention (tree-search) fast-forward (on by default): contended
    /// stretches are resolved by stepping only the engaged stations while
    /// the quiet majority is caught up once per run. Independently
    /// switchable from the other two tiers for bisection.
    contention_fast_forward: bool,
    /// Scratch buffer for the slot records of one contention run.
    search_records: Vec<SearchSlotRecord>,
    /// Scratch buffer for the engaged station indices of one contention run.
    search_engaged: Vec<usize>,
    /// Scratch buffer for the contender source ids of one analytic
    /// attempt-cycle run.
    cycle_sources: Vec<u32>,
    /// Streaming observability (None by default: zero overhead).
    metrics: Option<SimMetrics>,
    /// Streaming JSONL trace export (None by default).
    sink: Option<JsonlSink>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("medium", &self.medium)
            .field("stations", &self.stations.len())
            .field("pending", &self.pending.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Engine {
    /// Creates an engine over the given medium.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMedium`] if the configuration fails
    /// validation.
    pub fn new(medium: MediumConfig) -> Result<Self, SimError> {
        medium.validate().map_err(SimError::InvalidMedium)?;
        Ok(Engine {
            medium,
            stations: Vec::new(),
            pending: Vec::new(),
            pending_dirty: false,
            now: Ticks::ZERO,
            stats: ChannelStats::default(),
            trace: Trace::default(),
            transmitters: Vec::new(),
            faults: FaultPlan::none(),
            slot_ordinal: 0,
            hot: StationHot::default(),
            active: Vec::new(),
            parked_count: 0,
            catchup: VecDeque::new(),
            catchup_base: 0,
            catchup_watermark: 64,
            active_set: true,
            polls: 0,
            replays: 0,
            anchor: None,
            membership: MembershipPlan::none(),
            backlog_cache: 0,
            backlog_stale: true,
            fast_forward: true,
            busy_fast_forward: true,
            busy_frames: Vec::new(),
            contention_fast_forward: true,
            search_records: Vec::new(),
            search_engaged: Vec::new(),
            cycle_sources: Vec::new(),
            metrics: None,
            sink: None,
        })
    }

    /// Attaches a station; stations are indexed by attachment order, which
    /// must match the `SourceId`s used in the workload.
    pub fn add_station(&mut self, station: Box<dyn Station>) -> &mut Self {
        self.active.push(self.stations.len());
        self.stations.push(station);
        self.hot.down.push(None);
        self.hot.parked.push(false);
        self.hot.cursor.push(0);
        self.backlog_stale = true;
        self
    }

    /// Installs an injected-fault schedule (see [`FaultPlan`]). The empty
    /// plan — the default — leaves the engine bitwise identical to one
    /// without fault support.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = plan;
        self
    }

    /// Installs a membership schedule (see [`MembershipPlan`]): stations
    /// listed as initially absent are fenced off the fabric from slot 0,
    /// and scheduled joins/leaves are processed — epoch-fenced against
    /// every fast-forward tier — at their decision-slot ordinals. The
    /// empty plan (the default) leaves the engine bitwise identical to one
    /// without membership support. Call after attaching stations and
    /// before running.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSource`] if any event or initial
    /// absentee names a station index that was never attached.
    pub fn set_membership_plan(&mut self, plan: MembershipPlan) -> Result<&mut Self, SimError> {
        let stations = self.stations.len();
        let out_of_range = plan
            .initially_absent()
            .iter()
            .copied()
            .chain(plan.events().iter().map(|e| e.change.station()))
            .find(|&s| s as usize >= stations);
        if let Some(source) = out_of_range {
            return Err(SimError::UnknownSource { source, stations });
        }
        for &station in plan.initially_absent() {
            self.hot.down[station as usize] = Some(ABSENT);
        }
        self.membership = plan;
        self.backlog_stale = true;
        Ok(self)
    }

    /// Whether the station at `index` is currently absent from the fabric
    /// (left, or not yet joined) — as opposed to crashed with a scheduled
    /// restart, which [`Engine::is_down`] also reports.
    pub fn is_absent(&self, index: usize) -> bool {
        self.hot.down.get(index).is_some_and(|d| *d == Some(ABSENT))
    }

    /// Enables channel tracing.
    pub fn set_trace(&mut self, trace: Trace) -> &mut Self {
        self.trace = trace;
        self
    }

    /// Attaches a streaming JSONL trace sink: every channel event is
    /// written as one JSON line as it resolves, independent of (and in
    /// addition to) the in-memory [`Trace`]. The byte stream is a pure
    /// function of the channel history, hence bitwise identical across the
    /// fast-forward and reference steppers.
    pub fn set_trace_sink(&mut self, sink: JsonlSink) -> &mut Self {
        self.sink = Some(sink);
        self
    }

    /// Detaches the JSONL sink (call `finish` on it to flush and surface
    /// I/O errors).
    pub fn take_trace_sink(&mut self) -> Option<JsonlSink> {
        self.sink.take()
    }

    /// Enables streaming metrics (phase accounting, per-station counters).
    /// Idempotent; call after attaching stations or before — the per-station
    /// table grows on demand.
    pub fn enable_metrics(&mut self) -> &mut Self {
        if self.metrics.is_none() {
            // Dormancy is suspended under metrics (see
            // [`Engine::set_active_set`]); catch any already-parked
            // station up first.
            self.wake_all();
            self.metrics = Some(SimMetrics::new(self.stations.len()));
        }
        self
    }

    /// Enables metrics and installs analytic ξ allowances; observed
    /// per-epoch overhead is checked against them live, raising
    /// [`crate::MetricsViolation`]s on breach.
    pub fn set_xi_bounds(&mut self, time: XiBoundTable, static_: XiBoundTable) -> &mut Self {
        self.enable_metrics();
        if let Some(m) = self.metrics.as_mut() {
            m.set_xi_bounds(time, static_);
        }
        self
    }

    /// The metrics accumulated so far, if enabled.
    pub fn metrics(&self) -> Option<&SimMetrics> {
        self.metrics.as_ref()
    }

    /// Detaches the metrics, closing any observation window still open
    /// (cutoff windows are recorded but never bound-checked).
    pub fn take_metrics(&mut self) -> Option<SimMetrics> {
        let mut metrics = self.metrics.take()?;
        metrics.finish();
        Some(metrics)
    }

    /// Sets the retention policy for per-delivery and per-lost-message
    /// records: `Some(cap)` keeps only the first `cap` in memory while the
    /// counters and the latency histogram stay exact; `None` (the default)
    /// retains everything. `Some(0)` gives constant-memory runs.
    pub fn set_retention(&mut self, deliveries: Option<usize>, lost: Option<usize>) -> &mut Self {
        self.stats.delivery_retention = deliveries;
        self.stats.lost_retention = lost;
        self
    }

    /// Enables or disables idle fast-forward (on by default).
    ///
    /// With fast-forward off the engine is the naive reference stepper:
    /// every decision slot is polled and observed individually. The two
    /// modes are bitwise equivalent — identical traces, statistics, and
    /// delivery schedules — which the equivalence test suite asserts; the
    /// switch exists for those tests and for benchmarking the speedup.
    pub fn set_fast_forward(&mut self, enabled: bool) -> &mut Self {
        self.fast_forward = enabled;
        self
    }

    /// Enables or disables busy-period fast-forward (on by default),
    /// independently of [`Engine::set_fast_forward`] so either mechanism
    /// can be bisected on its own.
    ///
    /// With busy fast-forward on, a run of back-to-back committed
    /// transmissions (a DDCR burst, a backlog drain with every contender
    /// quiet — see [`HoldHint`]) resolves without polling the quiet
    /// stations each slot; they are caught up once per run through
    /// [`Station::skip_busy`]. Statistics, traces, metrics attribution and
    /// fault fencing are bitwise identical to the reference stepper.
    pub fn set_busy_fast_forward(&mut self, enabled: bool) -> &mut Self {
        self.busy_fast_forward = enabled;
        self
    }

    /// Enables or disables contention (tree-search) fast-forward (on by
    /// default), independently of the other two tiers so every mechanism
    /// can be bisected on its own.
    ///
    /// With contention fast-forward on, a contended stretch — a DDCR tree
    /// search resolving a collision, a backlog drain interleaved with
    /// probe slots — is run by stepping only the stations engaged in it
    /// (see [`SearchHint`]); the quiet majority is caught up once per run
    /// through [`Station::skip_search`]. Statistics, traces, metrics
    /// attribution and fault fencing are bitwise identical to the
    /// reference stepper.
    pub fn set_contention_fast_forward(&mut self, enabled: bool) -> &mut Self {
        self.contention_fast_forward = enabled;
        self
    }

    /// Enables or disables the active-set scheduler (on by default),
    /// independently of the three fast-forward tiers so every mechanism
    /// can be bisected on its own.
    ///
    /// With the scheduler on, stations whose [`Station::wake_hint`]
    /// promises dormancy are parked out of every per-slot loop — polls,
    /// tier-gating hint scans, and catch-up fan-outs all visit only the
    /// active set — and receive their deferred observations in one batch
    /// on their next wake (a delivery, a fault or membership transition,
    /// or a channel event that could break the promise). Statistics,
    /// traces and delivery schedules are bitwise identical to the full
    /// loops. Dormancy is suspended while metrics are enabled (per-slot
    /// phase attribution needs every synced station live), so enabling
    /// metrics is equivalent to switching the scheduler off.
    pub fn set_active_set(&mut self, enabled: bool) -> &mut Self {
        if !enabled {
            self.wake_all();
        }
        self.active_set = enabled;
        self
    }

    /// Whether stations may currently be parked: the scheduler is on and
    /// metrics are off (a dormant station's stale `phase_hint` must never
    /// be consulted for slot attribution).
    fn active_set_enabled(&self) -> bool {
        self.active_set && self.metrics.is_none()
    }

    /// Schedules a batch of future arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSource`] if a message's source index is
    /// out of range for the attached stations.
    pub fn add_arrivals<I>(&mut self, arrivals: I) -> Result<&mut Self, SimError>
    where
        I: IntoIterator<Item = Message>,
    {
        for msg in arrivals {
            if msg.source.0 as usize >= self.stations.len() {
                return Err(SimError::UnknownSource {
                    source: msg.source.0,
                    stations: self.stations.len(),
                });
            }
            // `pending` is kept descending by (arrival, id); a message that
            // extends the tail keeps it sorted, anything else defers one
            // sort to the next ordered access instead of re-sorting the
            // whole vector on every batch.
            if !self.pending_dirty {
                if let Some(last) = self.pending.last() {
                    if (msg.arrival, msg.id) > (last.arrival, last.id) {
                        self.pending_dirty = true;
                    }
                }
            }
            self.pending.push(msg);
            self.backlog_stale = true;
        }
        Ok(self)
    }

    /// Restores the descending (arrival, id) order of `pending` if batches
    /// were appended out of order. Keys are unique (message ids are), so
    /// the resulting order is identical to eager per-batch sorting.
    fn ensure_pending_sorted(&mut self) {
        if self.pending_dirty {
            self.pending
                .sort_by_key(|m| std::cmp::Reverse((m.arrival, m.id)));
            self.pending_dirty = false;
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Count of decision slots resolved so far (the coordinate
    /// [`FaultPlan`] events are keyed by).
    pub fn slot_ordinal(&self) -> u64 {
        self.slot_ordinal
    }

    /// Whether the station at `index` is currently crashed.
    pub fn is_down(&self, index: usize) -> bool {
        self.hot.down.get(index).is_some_and(|d| d.is_some())
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The channel trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Read access to an attached station (for protocol-state assertions in
    /// tests).
    pub fn station(&self, index: usize) -> Option<&dyn Station> {
        self.stations.get(index).map(|b| b.as_ref())
    }

    /// Number of stations attached to the medium.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Total messages queued across all stations plus not-yet-delivered
    /// arrivals.
    pub fn backlog(&self) -> usize {
        self.stations.iter().map(|s| s.backlog()).sum::<usize>() + self.pending.len()
    }

    /// Cached backlog total, re-summed only when a queue may have changed
    /// (an arrival was delivered, or a busy/collision slot was observed).
    /// Silence slots leave every queue untouched, so long idle stretches
    /// cost no per-slot O(stations) summation.
    fn tracked_backlog(&mut self) -> usize {
        if self.backlog_stale {
            // Parked stations hold no backlog — an empty queue is a
            // precondition for parking, and deferred observations never
            // enqueue — so summing the active set equals summing everyone.
            self.backlog_cache = self
                .active
                .iter()
                .map(|&idx| self.stations[idx].backlog())
                .sum::<usize>()
                + self.pending.len();
            self.backlog_stale = false;
        }
        self.backlog_cache
    }

    /// Count of [`Station::poll`] calls issued so far. With the active-set
    /// scheduler on and a sparse workload this stays far below the
    /// `slot_ordinal × station_count` total the full poll loop would
    /// issue — the scale tests assert on exactly that ratio.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Count of catch-up log entries replayed into waking stations so far.
    /// With the epoch-anchored wake shortcut engaged this grows by roughly
    /// one final-epoch tail per wake; without it, by the whole dormant
    /// span — the scale tests assert on the difference.
    pub fn replay_count(&self) -> u64 {
        self.replays
    }

    /// Appends one deferred channel operation to the catch-up log — a
    /// no-op while nothing is parked, so the log costs nothing when the
    /// scheduler is off or every station is active.
    fn record_catchup(&mut self, entry: CatchUp) {
        if self.parked_count == 0 {
            return;
        }
        self.catchup.push_back(entry);
        if self.catchup.len() >= self.catchup_watermark {
            self.compact_catchup();
            self.catchup_watermark = (self.catchup.len() * 2).max(64);
        }
    }

    /// Drops the catch-up prefix every parked station has already
    /// replayed.
    fn compact_catchup(&mut self) {
        let min_cursor = self
            .hot
            .cursor
            .iter()
            .zip(&self.hot.parked)
            .filter(|&(_, &parked)| parked)
            .map(|(&cursor, _)| cursor)
            .min()
            .unwrap_or(self.catchup_base + self.catchup.len() as u64);
        while self.catchup_base < min_cursor {
            self.catchup.pop_front();
            self.catchup_base += 1;
        }
    }

    /// Replays, in channel order, every deferred operation the parked
    /// station at `idx` has not seen yet — the batched catch-up of the
    /// active-set contract. When a wake anchor is available and valid the
    /// station is rebased onto the checkpoint's epoch boundary instead and
    /// replays only the log tail from it (see [`WakeAnchor`]); either way
    /// it lands in exactly the state per-slot engagement would have left
    /// it in.
    fn observe_skipped(&mut self, idx: usize) {
        let start = (self.hot.cursor[idx] - self.catchup_base) as usize;
        if start < self.catchup.len() && !self.try_anchored_catchup(idx, start) {
            self.replay_entries(idx, start, self.catchup.len(), None);
        }
        self.hot.cursor[idx] = self.catchup_base + self.catchup.len() as u64;
    }

    /// Attempts the epoch-anchored wake shortcut for the parked station at
    /// `idx` whose full replay would start at log position `start`: rebase
    /// the station onto the captured checkpoint's epoch boundary, replay
    /// only the log tail from that boundary, and adopt the shared counters
    /// at the capture position. Returns `false` — leaving the station
    /// untouched — whenever any validity condition fails; the caller then
    /// runs the exact full replay.
    fn try_anchored_catchup(&mut self, idx: usize, start: usize) -> bool {
        let Some(anchor) = self.anchor.as_ref() else {
            return false;
        };
        if anchor.at < self.catchup_base {
            // The checkpoint predates the current log era.
            return false;
        }
        let k = (anchor.at - self.catchup_base) as usize;
        let epoch = anchor.epoch_start;
        // First log entry starting at or after the epoch boundary.
        let t = self.catchup.partition_point(|e| e.start() < epoch);
        // Locate the boundary: exactly between entries, or splittably
        // inside entry `t - 1` (silence runs advance the idle automaton a
        // whole slot at a time and search runs record every slot, so both
        // can be entered mid-span; anything else falls back).
        let (first, cut) = if t < self.catchup.len() && self.catchup[t].start() == epoch {
            (t, None)
        } else if t == 0 {
            // The epoch began before the log did: coverage is unprovable.
            return false;
        } else {
            let prev = &self.catchup[t - 1];
            if epoch >= prev.end() {
                if t == self.catchup.len() {
                    (t, None) // boundary at the log head: empty tail
                } else {
                    return false; // non-contiguous log (defensive)
                }
            } else {
                match prev {
                    CatchUp::Silence { from, slot, .. }
                        if (epoch.as_u64() - from.as_u64())
                            .is_multiple_of(slot.as_u64()) =>
                    {
                        (t - 1, Some(epoch))
                    }
                    CatchUp::Search { .. } => (t - 1, Some(epoch)),
                    _ => return false,
                }
            }
        };
        // The station must have parked before the boundary (everything it
        // missed below `first` is subsumed by the rebase plus the adopted
        // counters), and the checkpoint must postdate the boundary.
        if start > first || k < first {
            return false;
        }
        if !self.stations[idx].resync_rebase(anchor.checkpoint.as_ref()) {
            return false;
        }
        let len = self.catchup.len();
        self.replay_entries(idx, first, k, cut);
        // Adopt the shared counters exactly at the capture position, then
        // replay whatever was logged after it.
        let anchor = self.anchor.as_ref().expect("anchor persists across replay");
        self.stations[idx].resync_adopt(anchor.checkpoint.as_ref());
        self.replay_entries(idx, k, len, if k == first { cut } else { None });
        true
    }

    /// Replays catch-up log entries `[from..to)` into station `idx`;
    /// `cut` enters the first replayed entry mid-span at the given channel
    /// time (only ever a silence run or a recorded search, per
    /// [`Engine::try_anchored_catchup`]).
    fn replay_entries(&mut self, idx: usize, from: usize, to: usize, cut: Option<Ticks>) {
        let catchup = std::mem::take(&mut self.catchup);
        let station = &mut self.stations[idx];
        for (i, entry) in catchup.iter().enumerate().take(to).skip(from) {
            self.replays += 1;
            let cut = cut.filter(|_| i == from);
            match entry {
                CatchUp::Slot {
                    at,
                    next_free,
                    observation,
                } => station.observe(*at, *next_free, observation),
                CatchUp::Silence { from, slots, slot } => match cut {
                    Some(at) => {
                        let skipped = (at.as_u64() - from.as_u64()) / slot.as_u64();
                        station.skip_silence(at, *slots - skipped, *slot);
                    }
                    None => station.skip_silence(*from, *slots, *slot),
                },
                CatchUp::Busy { from, frames, slot } => station.skip_busy(*from, frames, *slot),
                CatchUp::Search {
                    from,
                    records,
                    slot,
                } => match cut {
                    Some(at) => {
                        // The epoch-branch tail of `skip_search`, driven by
                        // the engine: every record from the boundary on.
                        for r in records.iter().filter(|r| r.at >= at) {
                            station.observe(r.at, r.next_free, &r.observation);
                        }
                    }
                    None => station.skip_search(*from, records, None, *slot),
                },
                CatchUp::Cycles {
                    from,
                    cycles,
                    probes,
                    slot,
                } => station.skip_attempt_cycles(*from, *cycles, *probes, *slot),
            }
        }
        self.catchup = catchup;
    }

    /// Captures a fresh wake anchor from the fully caught-up station at
    /// `idx`, if it publishes one (see [`Station::resync_checkpoint`]).
    ///
    /// Recapture is throttled: a still-current anchor less than
    /// [`ANCHOR_REFRESH_ENTRIES`] log entries behind the head is kept
    /// as-is. Anchors only pay off for stations dormant across many log
    /// entries — a slightly stale anchor merely lengthens the short
    /// post-adopt tail replay — while capturing one costs a heap
    /// allocation plus a counter snapshot, which is pure overhead in
    /// wake-heavy workloads where parks last a handful of slots.
    fn capture_anchor(&mut self, idx: usize) {
        const ANCHOR_REFRESH_ENTRIES: u64 = 32;
        let head = self.catchup_base + self.catchup.len() as u64;
        if let Some(anchor) = &self.anchor {
            if anchor.at >= self.catchup_base && head - anchor.at < ANCHOR_REFRESH_ENTRIES {
                return;
            }
        }
        if let Some((epoch_start, checkpoint)) = self.stations[idx].resync_checkpoint() {
            self.anchor = Some(WakeAnchor {
                epoch_start,
                at: self.catchup_base + self.catchup.len() as u64,
                checkpoint,
            });
        }
    }

    /// Wakes the parked station at `idx`: replays its deferred
    /// observations and reinstates it in the active index.
    fn wake_station(&mut self, idx: usize) {
        if !self.hot.parked[idx] {
            return;
        }
        self.observe_skipped(idx);
        self.hot.parked[idx] = false;
        self.parked_count -= 1;
        let pos = self.active.partition_point(|&a| a < idx);
        self.active.insert(pos, idx);
        if self.parked_count == 0 {
            self.catchup_base += self.catchup.len() as u64;
            self.catchup.clear();
        }
        // The freshly woken station is caught up to the log head: refresh
        // the wake anchor so later wakes rebase onto its current epoch.
        self.capture_anchor(idx);
    }

    /// Wakes every parked station (fault/membership transitions, metrics
    /// enablement, scheduler shutdown, and corrupted otherwise-silent
    /// slots all invalidate parked-state assumptions wholesale).
    fn wake_all(&mut self) {
        if self.parked_count == 0 {
            return;
        }
        for idx in 0..self.stations.len() {
            self.wake_station(idx);
        }
    }

    /// Wakes every parked station so direct inspection (e.g.
    /// [`Engine::station`] in tests) sees fully caught-up protocol state.
    /// Called automatically when [`Engine::run_until`] and
    /// [`Engine::run_to_completion`] return; cheap when nothing is parked.
    pub fn sync_stations(&mut self) {
        self.wake_all();
    }

    /// Parks every active station whose [`Station::wake_hint`] promises
    /// dormancy. Down stations never park (their fencing already keeps
    /// them out of every loop, and crash/restart bookkeeping must see
    /// them); an empty local queue is a hard engine-side precondition on
    /// top of the station's own promise.
    fn park_dormant(&mut self) {
        if !self.active_set_enabled() {
            return;
        }
        let mut first_parked = None;
        let mut k = 0;
        while k < self.active.len() {
            let idx = self.active[k];
            if self.hot.down[idx].is_none()
                && matches!(self.stations[idx].wake_hint(), WakeHint::Dormant)
                && self.stations[idx].backlog() == 0
            {
                self.active.remove(k);
                self.hot.parked[idx] = true;
                self.hot.cursor[idx] = self.catchup_base + self.catchup.len() as u64;
                self.parked_count += 1;
                first_parked.get_or_insert(idx);
            } else {
                k += 1;
            }
        }
        // A parking station has observed everything up to the log head:
        // its checkpoint anchors the wakes of this dormancy era.
        if let Some(idx) = first_parked {
            self.capture_anchor(idx);
        }
    }

    /// Runs until `deadline` (inclusive of the slot straddling it).
    pub fn run_until(&mut self, deadline: Ticks) {
        while self.now < deadline {
            self.advance(deadline, false);
        }
        self.sync_stations();
        self.stats.total_ticks = self.now;
    }

    /// Runs until every scheduled arrival has been delivered **and** every
    /// station's queue has drained, or until `max` ticks have elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the budget is exhausted first.
    pub fn run_to_completion(&mut self, max: Ticks) -> Result<(), SimError> {
        // One backlog computation per loop iteration; the cached total is
        // only re-summed after slots that can change a queue.
        let mut backlog = self.tracked_backlog();
        while backlog > 0 {
            if self.now >= max {
                self.sync_stations();
                self.stats.total_ticks = self.now;
                return Err(SimError::Timeout {
                    at: self.now,
                    backlog,
                });
            }
            self.advance(max, true);
            backlog = self.tracked_backlog();
        }
        self.sync_stations();
        self.stats.total_ticks = self.now;
        Ok(())
    }

    /// Runs until the backlog drains or `deadline` is reached, whichever
    /// comes first, and reports whether the backlog drained.
    ///
    /// This is the chunked-composition primitive the
    /// [`crate::federation`] layer's epoch-aligned rounds are built on:
    /// calling it repeatedly with an increasing sequence of deadlines
    /// resolves exactly the slots — and emits exactly the trace, metrics
    /// and statistics — that a single [`Engine::run_to_completion`] over
    /// the union would. Every fast-forward jump is cut at `deadline`
    /// precisely where the slot-by-slot loop would stop stepping, and a
    /// drained engine returns immediately without advancing its clock.
    /// Like [`Engine::run_until`], the slot straddling `deadline` may
    /// overshoot it; callers must read [`Engine::now`] back rather than
    /// assume the clock stopped at the deadline.
    pub fn run_until_drained(&mut self, deadline: Ticks) -> bool {
        let mut backlog = self.tracked_backlog();
        while backlog > 0 && self.now < deadline {
            self.advance(deadline, true);
            backlog = self.tracked_backlog();
        }
        self.stats.total_ticks = self.now;
        backlog == 0
    }

    /// Consumes the engine, returning the final statistics.
    pub fn into_stats(mut self) -> ChannelStats {
        self.stats.total_ticks = self.now;
        self.stats
    }

    /// Advances the simulation: a fast-forwarded silence run when every
    /// station permits it, a fast-forwarded busy run when exactly one
    /// station holds the channel and the rest stay quiet, one reference
    /// slot otherwise. `limit` bounds both jumps exactly where the
    /// slot-by-slot loop would stop stepping. `stop_on_drain` is set by
    /// [`Engine::run_to_completion`], whose loop exits as soon as the
    /// backlog drains — a jump must not outrun that check.
    fn advance(&mut self, limit: Ticks, stop_on_drain: bool) {
        self.advance_inner(limit, stop_on_drain);
        // Park whatever just went dormant (a drained queue, a search
        // resolving back to the idle cycle) before the next operation's
        // hint scans — keeping those scans O(active).
        self.park_dormant();
    }

    /// One resolved operation — a fast-forward run or one reference slot
    /// — without the trailing active-set park pass.
    fn advance_inner(&mut self, limit: Ticks, stop_on_drain: bool) {
        // A slot with a fault transition due (a scheduled event, or a
        // restart falling due) must go through the reference stepper: the
        // fast path's early `deliver_due` would otherwise race restart
        // processing, and a corrupted silent slot is not silent (nor is a
        // corrupted busy slot busy).
        if (self.fast_forward || self.busy_fast_forward || self.contention_fast_forward)
            && !self.fault_transition_due()
            && !self.membership_transition_due()
        {
            self.deliver_due();
            if stop_on_drain && self.backlog_stale && self.tracked_backlog() == 0 {
                // `deliver_due` just recorded the final pending arrivals as
                // lost (their station is down; a live delivery would have
                // left the backlog non-zero). The reference loop runs
                // exactly one more slot before its drain check stops it, so
                // a multi-slot jump here would overshoot the termination
                // point.
                self.step();
                return;
            }
            if self.fast_forward {
                if let Some(slots) = self.skippable_slots(limit) {
                    self.fast_forward_silence(slots);
                    return;
                }
            }
            if self.busy_fast_forward && self.try_busy_run(limit) {
                return;
            }
            if self.contention_fast_forward && self.try_search_run(limit) {
                return;
            }
        }
        self.step();
    }

    /// Whether the slot at the current ordinal needs fault processing: a
    /// scheduled fault event strikes it, or a crashed station's down time
    /// ends at (or before) it.
    fn fault_transition_due(&self) -> bool {
        if self.faults.is_empty() {
            // Crashes only originate from the plan; membership absences in
            // `down` carry the never-due ABSENT sentinel, so with no fault
            // plan no restart can fall due.
            return false;
        }
        self.hot.down
            .iter()
            .flatten()
            .any(|&restart| restart <= self.slot_ordinal)
            || !self.faults.events_at(self.slot_ordinal).is_empty()
    }

    /// Whether a scheduled membership change strikes the slot at the
    /// current ordinal — such a slot must go through the reference stepper
    /// so joins and leaves land at exactly the same channel state under
    /// every fast-forward tier.
    fn membership_transition_due(&self) -> bool {
        !self.membership.is_empty()
            && !self.membership.events_at(self.slot_ordinal).is_empty()
    }

    /// How many guaranteed-silent slots can be jumped from `now`, if any.
    ///
    /// Call only after [`Engine::deliver_due`]. Combines every station's
    /// [`Station::next_ready`] hint with the earliest pending arrival: the
    /// first decision slot that could be non-silent (or could deliver an
    /// arrival) is the first slot boundary at or after that horizon, so
    /// every slot before it is provably silent. With no horizon at all the
    /// jump runs straight to `limit`, exactly like the naive stepper would.
    fn skippable_slots(&mut self, limit: Ticks) -> Option<u64> {
        // Earliest time any station may act (None = never). Down stations
        // are fenced off the channel, so their hints do not apply; parked
        // stations promise `next_ready` of `None` for as long as they stay
        // parked (see [`WakeHint::Dormant`]), so scanning the active set
        // is exact.
        let mut horizon: Option<Ticks> = None;
        for &idx in &self.active {
            if self.hot.down[idx].is_some() {
                continue;
            }
            let station = &self.stations[idx];
            match station.next_ready(self.now) {
                Some(t) if t <= self.now => return None,
                Some(t) => horizon = Some(horizon.map_or(t, |h| h.min(t))),
                None => {}
            }
        }
        if let Some(next) = self.pending.last() {
            // deliver_due just ran, so the earliest arrival is in the
            // future; the slot that starts at or after it must be stepped.
            horizon = Some(horizon.map_or(next.arrival, |h| h.min(next.arrival)));
        }
        let target = horizon.map_or(limit, |h| h.min(limit));
        let span = target.saturating_sub(self.now);
        // Never jump over a scheduled fault, membership change, or pending
        // restart: the slot they strike must go through the reference
        // stepper.
        let slots = self.membership.fence(
            self.slot_ordinal,
            fence_cap(
                &self.faults,
                &self.hot.down,
                self.slot_ordinal,
                span.div_ceil_slots(Ticks(self.medium.slot_ticks)),
            ),
        );
        (slots > 0).then_some(slots)
    }

    /// Accounts `slots` silent decision slots in one jump: identical stats
    /// and trace as stepping them, with stations catching up through
    /// [`Station::skip_silence`] instead of per-slot polls and observes.
    fn fast_forward_silence(&mut self, slots: u64) {
        let slot = Ticks(self.medium.slot_ticks);
        self.stats.silence_slots += slots;
        if self.trace.is_enabled() || self.sink.is_some() {
            for i in 0..slots {
                self.emit(TraceEvent::Silence {
                    at: self.now + slot * i,
                });
            }
        }
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.on_skip(slots);
        }
        for k in 0..self.active.len() {
            let idx = self.active[k];
            if self.hot.down[idx].is_some() {
                continue;
            }
            self.stations[idx].skip_silence(self.now, slots, slot);
        }
        self.record_catchup(CatchUp::Silence {
            from: self.now,
            slots,
            slot,
        });
        self.now += slot * slots;
        self.slot_ordinal += slots;
    }

    /// Attempts a fast-forwarded busy run from `now`. Returns `true` when
    /// at least one committed transmission was resolved.
    ///
    /// Call only after [`Engine::deliver_due`] with no fault transition
    /// due. Gathers every live station's [`Station::hold_hint`]; the run
    /// proceeds only when exactly one answers [`HoldHint::Hold`] and all
    /// others answer [`HoldHint::Quiet`]. The run length is capped by
    /// every hint, the next scheduled fault/restart ordinal (mirroring
    /// [`Engine::skippable_slots`]' fencing), the next pending arrival,
    /// and `limit`.
    fn try_busy_run(&mut self, limit: Ticks) -> bool {
        let mut holder: Option<usize> = None;
        let mut max_frames = u64::MAX;
        // Parked stations promise `Quiet(u64::MAX)` — exactly the answer
        // their live state would give — so the scan covers the active set
        // only.
        for &idx in &self.active {
            if self.hot.down[idx].is_some() {
                continue;
            }
            let station = &self.stations[idx];
            match station.hold_hint(self.now) {
                HoldHint::Contend => return false,
                HoldHint::Quiet(n) => {
                    if n == 0 {
                        return false;
                    }
                    max_frames = max_frames.min(n);
                }
                HoldHint::Hold(n) => {
                    if holder.is_some() || n == 0 {
                        return false;
                    }
                    holder = Some(idx);
                    max_frames = max_frames.min(n);
                }
            }
        }
        let Some(holder) = holder else {
            return false;
        };
        // Never run into a scheduled fault, membership change, or pending
        // restart: the slot they strike must go through the reference
        // stepper.
        max_frames = self.membership.fence(
            self.slot_ordinal,
            fence_cap(&self.faults, &self.hot.down, self.slot_ordinal, max_frames),
        );
        if max_frames == 0 {
            return false;
        }
        self.run_busy(holder, max_frames, limit)
    }

    /// The busy-run duet loop: polls and observes only the holder, slot by
    /// slot, with full per-slot statistics / trace / metrics accounting
    /// (each busy slot is attributed exactly as the reference stepper
    /// would), then catches the quiet stations up once through
    /// [`Station::skip_busy`]. Stops before any frame whose start slot has
    /// a pending arrival due, and at `limit`, exactly where the reference
    /// loop would stop.
    fn run_busy(&mut self, holder: usize, max_frames: u64, limit: Ticks) -> bool {
        let mut frames = std::mem::take(&mut self.busy_frames);
        frames.clear();
        let from = self.now;
        let slot = Ticks(self.medium.slot_ticks);
        while (frames.len() as u64) < max_frames && self.now < limit {
            if self.pending.last().is_some_and(|m| m.arrival <= self.now) {
                // The reference stepper would deliver this arrival before
                // polling; stop so the next `advance` does exactly that.
                break;
            }
            self.polls += 1;
            let Action::Transmit(frame) = self.stations[holder].poll(self.now) else {
                // A `Hold` answer is a binding commitment (see
                // [`HoldHint`]); the default hint never holds, and every
                // in-tree protocol honours it.
                unreachable!("station {holder} broke its HoldHint::Hold commitment");
            };
            // A lone uncontested transmitter always resolves to `Busy` and
            // holds the channel for its frame duration — the invariant
            // that makes the run deterministic.
            let observation = Observation::Busy(frame);
            let next_free = self.now + frame.duration();
            let hint = if self.metrics.is_some() {
                self.current_phase_hint()
            } else {
                None
            };
            self.account(&observation, next_free, &SlotFaults::default());
            if self.metrics.is_some() {
                self.observe_metrics(hint, &observation, &SlotFaults::default());
            }
            self.stations[holder].observe(self.now, next_free, &observation);
            frames.push(frame);
            self.now = next_free;
            self.slot_ordinal += 1;
        }
        let done = frames.len() as u64;
        if done > 0 {
            for k in 0..self.active.len() {
                let idx = self.active[k];
                if idx == holder || self.hot.down[idx].is_some() {
                    continue;
                }
                self.stations[idx].skip_busy(from, &frames, slot);
            }
            if self.parked_count > 0 {
                self.record_catchup(CatchUp::Busy {
                    from,
                    frames: frames.clone(),
                    slot,
                });
            }
            if let Some(metrics) = self.metrics.as_mut() {
                metrics.on_busy_skip(done);
            }
        }
        self.busy_frames = frames;
        done > 0
    }

    /// Attempts a fast-forwarded contention (tree-search) run from `now`.
    /// Returns `true` when at least one decision slot was resolved.
    ///
    /// Call only after [`Engine::deliver_due`] with no fault transition
    /// due. Gathers every live station's [`Station::search_hint`]; the run
    /// proceeds only when at least one station answers
    /// [`SearchHint::Engage`] and at least one answers
    /// [`SearchHint::Quiet`] — the engaged (and contending) stations are
    /// then stepped through the reference per-slot cycle while the quiet
    /// ones are caught up once at the end. The run length is capped by the
    /// next scheduled fault/restart ordinal (the same fencing as the other
    /// tiers), the next pending arrival, and `limit`.
    fn try_search_run(&mut self, limit: Ticks) -> bool {
        // The analytic tier first: a run of deterministic loaded idle
        // cycles resolves in one step, no chorus stepping at all.
        if self.try_attempt_cycle_run(limit) {
            return true;
        }
        let mut engaged = std::mem::take(&mut self.search_engaged);
        engaged.clear();
        // Parked stations promise `Quiet` — exactly the answer their live
        // state would give — so they count toward the quiet chorus without
        // being consulted.
        let mut quiet = self.parked_count;
        let mut committed = false;
        for &idx in &self.active {
            if self.hot.down[idx].is_some() {
                continue;
            }
            let station = &self.stations[idx];
            match station.search_hint(self.now) {
                SearchHint::Quiet => quiet += 1,
                SearchHint::Engage => {
                    committed = true;
                    engaged.push(idx);
                }
                SearchHint::Contend => engaged.push(idx),
            }
        }
        let max_slots = self.membership.fence(
            self.slot_ordinal,
            fence_cap(&self.faults, &self.hot.down, self.slot_ordinal, u64::MAX),
        );
        let mut ran = false;
        if quiet > 0 && committed && max_slots > 0 && self.hint_attributable(&engaged) {
            ran = self.run_search(&engaged, max_slots, limit);
        }
        self.search_engaged = engaged;
        ran
    }

    /// Whether metrics attribution inside a contention run would match the
    /// reference stepper: the per-slot [`PhaseHint`] must come from an
    /// engaged station (quiet stations go stale for the duration of the
    /// run), so if only a quiet station can attribute the slot the run is
    /// refused. Synced replicas agree on the shared automaton, hence an
    /// engaged synced answer *is* the reference answer; engaged stations
    /// stay live for the whole (fault-fenced) run, so the check holds
    /// run-wide. Vacuously true with metrics disabled.
    fn hint_attributable(&self, engaged: &[usize]) -> bool {
        if self.metrics.is_none() {
            return true;
        }
        engaged
            .iter()
            .any(|&idx| self.stations[idx].phase_hint().is_some())
            || self.current_phase_hint().is_none()
    }

    /// The contention-run chorus loop: polls and observes only the engaged
    /// stations, slot by slot, with full per-slot statistics / trace /
    /// metrics accounting (each slot is attributed exactly as the
    /// reference stepper would — quiet stations poll [`Action::Idle`] by
    /// contract, so the resolved outcome is identical), then catches the
    /// quiet stations up once through [`Station::skip_search`], handing
    /// them the engaged stations' synchronization checkpoint. Stops before
    /// any slot with a pending arrival due, at `limit`, and as soon as
    /// every engaged backlog drains (the channel is provably silent from
    /// there on; the idle tier takes over).
    fn run_search(&mut self, engaged: &[usize], max_slots: u64, limit: Ticks) -> bool {
        let mut records = std::mem::take(&mut self.search_records);
        records.clear();
        let from = self.now;
        let slot = Ticks(self.medium.slot_ticks);
        while (records.len() as u64) < max_slots && self.now < limit {
            if self.pending.last().is_some_and(|m| m.arrival <= self.now) {
                // The reference stepper would deliver this arrival before
                // polling; stop so the next `advance` does exactly that.
                break;
            }
            let transmitters = self.collect_transmitters(engaged);
            // Attribute the slot before observations mutate the shared
            // automaton; an engaged synced replica's answer equals the
            // reference stepper's (see `hint_attributable`).
            let hint = if self.metrics.is_some() {
                engaged
                    .iter()
                    .find_map(|&idx| self.stations[idx].phase_hint())
            } else {
                None
            };
            let (observation, advance) = self.medium.resolve(&transmitters);
            self.transmitters = transmitters;
            let next_free = self.now + advance;
            self.account(&observation, next_free, &SlotFaults::default());
            if self.metrics.is_some() {
                self.observe_metrics(hint, &observation, &SlotFaults::default());
            }
            for &idx in engaged {
                self.stations[idx].observe(self.now, next_free, &observation);
            }
            records.push(SearchSlotRecord {
                at: self.now,
                next_free,
                observation,
            });
            self.now = next_free;
            self.slot_ordinal += 1;
            if engaged.iter().all(|&idx| self.stations[idx].backlog() == 0) {
                break;
            }
            if self.busy_fast_forward
                && engaged
                    .iter()
                    .any(|&idx| matches!(self.stations[idx].hold_hint(self.now), HoldHint::Hold(_)))
            {
                // An engaged station just committed to a hold (e.g. a burst
                // acquisition): yield to the busy tier, which skips the held
                // frames in one step instead of chorus-stepping them here.
                break;
            }
        }
        let done = records.len() as u64;
        if done > 0 {
            let checkpoint = engaged
                .iter()
                .find_map(|&idx| self.stations[idx].search_checkpoint());
            for k in 0..self.active.len() {
                let idx = self.active[k];
                if self.hot.down[idx].is_some() || engaged.contains(&idx) {
                    continue;
                }
                self.stations[idx].skip_search(from, &records, checkpoint.as_deref(), slot);
            }
            if self.parked_count > 0 {
                self.record_catchup(CatchUp::Search {
                    from,
                    records: records.clone(),
                    slot,
                });
            }
            if let Some(metrics) = self.metrics.as_mut() {
                metrics.on_search_skip(done);
            }
        }
        self.search_records = records;
        done > 0
    }

    /// Attempts an analytic attempt-cycle run from `now`: a stretch of
    /// *loaded idle cycles* — every backlogged station sits the whole time
    /// tree search out and collides at the attempt slot, cycle after cycle
    /// — resolved in bulk without stepping any station through the slots.
    /// Returns `true` when at least one whole cycle was resolved.
    ///
    /// Call only after [`Engine::deliver_due`] with no fault transition
    /// due. The run starts only when the medium destroys collisions (an
    /// arbitrating one delivers a survivor, which changes the dynamics),
    /// every live station answers [`Station::attempt_cycle_hint`] with the
    /// same cycle shape, and at least two are contenders. The cycle count
    /// is the minimum promise, cut at whole-cycle boundaries by the next
    /// pending arrival, the fault fence, and `limit`; the remainder falls
    /// through to the chorus loop and the reference stepper.
    fn try_attempt_cycle_run(&mut self, limit: Ticks) -> bool {
        if !matches!(self.medium.collision_mode, CollisionMode::Destructive) {
            return false;
        }
        let slot = Ticks(self.medium.slot_ticks);
        let mut sources = std::mem::take(&mut self.cycle_sources);
        sources.clear();
        let mut probes: Option<u64> = None;
        let mut cycles = u64::MAX;
        let mut refused = false;
        // Parked stations promise to be silent observers compatible with
        // whatever cycle shape the contenders agree on, with an unbounded
        // cycle count — exactly the hint their live (synced, empty-queue)
        // state would give — so only the active set is consulted.
        for &idx in &self.active {
            if self.hot.down[idx].is_some() {
                continue;
            }
            let station = &self.stations[idx];
            let Some(hint) = station.attempt_cycle_hint(self.now, slot) else {
                refused = true;
                break;
            };
            if *probes.get_or_insert(hint.probes) != hint.probes {
                refused = true;
                break;
            }
            cycles = cycles.min(hint.cycles);
            if let Some(source) = hint.contender {
                // Attachment order, like the reference poll loop gathers
                // this slot's transmitters.
                sources.push(source);
            }
        }
        let Some(probes) = probes.filter(|_| !refused) else {
            self.cycle_sources = sources;
            return false;
        };
        if sources.len() < 2 {
            self.cycle_sources = sources;
            return false;
        }
        // The reference stepper runs a slot iff it starts before `limit`
        // and before the earliest pending arrival (delivered at that
        // slot's start); a cycle is bulk-resolvable only while its last
        // slot — the attempt — still qualifies.
        let span = slot.as_u64() * (probes + 1);
        let mut horizon = limit;
        if let Some(next) = self.pending.last() {
            horizon = horizon.min(next.arrival);
        }
        let room = horizon.saturating_sub(self.now).as_u64();
        let within_horizon = match room.checked_sub(probes * slot.as_u64() + 1) {
            Some(e) => e / span + 1,
            None => 0,
        };
        cycles = cycles.min(within_horizon);
        // Never run into a scheduled fault, membership change, or pending
        // restart: the slot they strike must go through the reference
        // stepper.
        let fenced_slots = self.membership.fence(
            self.slot_ordinal,
            fence_cap(&self.faults, &self.hot.down, self.slot_ordinal, u64::MAX),
        );
        cycles = cycles.min(fenced_slots / (probes + 1));
        if cycles == 0 {
            self.cycle_sources = sources;
            return false;
        }
        self.run_attempt_cycles(probes, cycles, &sources);
        self.cycle_sources = sources;
        true
    }

    /// Resolves `cycles` whole loaded idle cycles in one step: identical
    /// statistics, trace events, and metrics attribution as stepping the
    /// `cycles · (probes + 1)` slots, with every live station caught up
    /// once through [`Station::skip_attempt_cycles`].
    fn run_attempt_cycles(&mut self, probes: u64, cycles: u64, sources: &[u32]) {
        let slot = Ticks(self.medium.slot_ticks);
        let span = slot * (probes + 1);
        let from = self.now;
        self.stats.silence_slots += cycles * probes;
        self.stats.collisions += cycles;
        // Queues are untouched by promise, but keep the cache honest the
        // way `account` does for any collision slot.
        self.backlog_stale = true;
        if self.trace.is_enabled() || self.sink.is_some() {
            for k in 0..cycles {
                let start = from + span * k;
                for p in 0..probes {
                    self.emit(TraceEvent::Silence {
                        at: start + slot * p,
                    });
                }
                self.emit(TraceEvent::Collision {
                    at: start + slot * probes,
                    survivor: None,
                });
            }
        }
        if let Some(metrics) = self.metrics.as_mut() {
            // Mirror the reference stepper's per-slot attribution: each
            // cycle is one epoch (`start_tts` stamps the fresh TTs at the
            // cycle boundary), its probes belong to the time search and
            // its attempt slot to the attempt phase, and the colliding
            // sources are seen in attachment order.
            for k in 0..cycles {
                let epoch_start = from + span * k;
                let probe_hint = Some(PhaseHint {
                    phase: ProtocolPhase::TimeSearch,
                    epoch_start,
                });
                for _ in 0..probes {
                    metrics.on_slot(probe_hint, 1, 0, false);
                }
                let attempt_hint = Some(PhaseHint {
                    phase: ProtocolPhase::Attempt,
                    epoch_start,
                });
                metrics.on_slot(attempt_hint, 1, 2, false);
                for &source in sources {
                    metrics.on_collision_seen(source as usize);
                }
            }
            metrics.on_search_skip(cycles * (probes + 1));
        }
        for k in 0..self.active.len() {
            let idx = self.active[k];
            if self.hot.down[idx].is_some() {
                continue;
            }
            self.stations[idx].skip_attempt_cycles(from, cycles, probes, slot);
        }
        self.record_catchup(CatchUp::Cycles {
            from,
            cycles,
            probes,
            slot,
        });
        self.now = from + span * cycles;
        self.slot_ordinal += cycles * (probes + 1);
    }

    /// Processes the fault transitions due at the current slot ordinal:
    /// restarts first (a station whose down time ends this slot is up for
    /// it), then newly scheduled crashes.
    fn process_fault_transitions(&mut self) {
        let ordinal = self.slot_ordinal;
        if self.parked_count > 0 && self.faults.crashes_at(ordinal).next().is_some() {
            // A crash mutates protocol state wholesale (and may strand a
            // burst reservation or mid-search state with no live witness
            // to veto fast-forward runs over it): catch everyone up and
            // let dormancy re-form afterwards.
            self.wake_all();
        }
        for idx in 0..self.hot.down.len() {
            if let Some(restart) = self.hot.down[idx] {
                if restart <= ordinal {
                    self.stations[idx].restart(self.now);
                    self.stats.restarts += 1;
                    self.hot.down[idx] = None;
                    self.backlog_stale = true;
                    // The captured checkpoint predates this transition;
                    // drop it rather than rebase onto a stale epoch.
                    self.anchor = None;
                }
            }
        }
        let crashes: Vec<(u32, u64)> = self.faults.crashes_at(ordinal).collect();
        for (station, down_slots) in crashes {
            let idx = station as usize;
            if idx >= self.stations.len() || self.hot.down[idx].is_some() {
                continue;
            }
            let lost = self.stations[idx].crash(self.now);
            for msg in lost {
                self.stats.push_lost(msg);
            }
            self.stats.crashes += 1;
            self.hot.down[idx] = Some(ordinal + down_slots.max(1));
            self.backlog_stale = true;
            self.anchor = None;
        }
    }

    /// Processes the membership changes due at the current slot ordinal:
    /// joins first (a station admitted this slot is up — receive-only,
    /// resynchronizing — for it), then leaves, mirroring the
    /// restarts-before-crashes order of the fault transitions.
    fn process_membership_transitions(&mut self) {
        let ordinal = self.slot_ordinal;
        let changes: Vec<MembershipChange> = self
            .membership
            .events_at(ordinal)
            .iter()
            .map(|e| e.change)
            .collect();
        if self.parked_count > 0 && !changes.is_empty() {
            // Joins and leaves rewire the fabric under the parked
            // stations' feet (a leave drops shared state mid-flight, a
            // join changes who participates in searches): catch everyone
            // up before applying them.
            self.wake_all();
        }
        // Whatever checkpoint was captured predates the membership changes
        // about to be applied; drop it rather than rebase onto a stale
        // epoch.
        if !changes.is_empty() {
            self.anchor = None;
        }
        for change in &changes {
            if let MembershipChange::Join { station } = *change {
                let idx = station as usize;
                if self.hot.down[idx].is_none() {
                    // Already on the fabric: a duplicate join is a no-op.
                    continue;
                }
                self.hot.down[idx] = None;
                // The join handshake reuses the crash-restart resync
                // primitive: the station comes up receive-only and stays
                // off the channel until an epoch anchor stamped after this
                // instant proves the shared state — its reserved,
                // provably-silent contention window.
                self.stations[idx].restart(self.now);
                self.stats.joins += 1;
                if let Some(metrics) = self.metrics.as_mut() {
                    metrics.on_membership(true);
                }
                self.emit(TraceEvent::Joined {
                    at: self.now,
                    station,
                });
                self.backlog_stale = true;
            }
        }
        for change in &changes {
            if let MembershipChange::Leave { station } = *change {
                let idx = station as usize;
                if self.hot.down[idx] == Some(ABSENT) {
                    // Already off the fabric: a duplicate leave is a no-op.
                    continue;
                }
                if self.hot.down[idx].is_none() {
                    // A live station's queue dies with its network module;
                    // a crashed one already lost it at the crash.
                    let lost = self.stations[idx].crash(self.now);
                    for msg in lost {
                        self.stats.push_lost(msg);
                    }
                }
                self.hot.down[idx] = Some(ABSENT);
                self.stats.leaves += 1;
                if let Some(metrics) = self.metrics.as_mut() {
                    metrics.on_membership(false);
                }
                self.emit(TraceEvent::Left {
                    at: self.now,
                    station,
                });
                self.backlog_stale = true;
            }
        }
    }

    /// Polls each station in `indices` (skipping fenced-down ones) for the
    /// slot starting at `now` and gathers the transmitted frames — the one
    /// transmitter-collection loop shared by the reference stepper and the
    /// contention chorus. Returns the reusable scratch buffer; callers put
    /// it back via `self.transmitters` once the slot resolves.
    fn collect_transmitters(&mut self, indices: &[usize]) -> Vec<Frame> {
        let mut transmitters = std::mem::take(&mut self.transmitters);
        transmitters.clear();
        for &idx in indices {
            if self.hot.down[idx].is_some() {
                continue;
            }
            self.polls += 1;
            if let Action::Transmit(frame) = self.stations[idx].poll(self.now) {
                transmitters.push(frame);
            }
        }
        transmitters
    }

    /// Executes one decision slot (the reference stepper).
    fn step(&mut self) {
        if !self.membership.is_empty() {
            self.process_membership_transitions();
        }
        if !self.faults.is_empty() {
            self.process_fault_transitions();
        }
        self.deliver_due();
        let active = std::mem::take(&mut self.active);
        let transmitters = self.collect_transmitters(&active);
        let had_transmitters = !transmitters.is_empty();
        let slot = Ticks(self.medium.slot_ticks);
        // Attribute the slot before observations mutate the shared
        // automaton (poll never changes phase state; observe does).
        let hint = if self.metrics.is_some() {
            self.current_phase_hint()
        } else {
            None
        };
        let (observation, advance) = self.medium.resolve(&transmitters);
        self.transmitters = transmitters;
        let (observation, advance, slot_faults) = if self.faults.is_empty() {
            (observation, advance, SlotFaults::default())
        } else {
            self.faults
                .apply(self.slot_ordinal, slot, observation, advance)
        };
        let next_free = self.now + advance;
        self.account(&observation, next_free, &slot_faults);
        if self.metrics.is_some() {
            self.observe_metrics(hint, &observation, &slot_faults);
        }
        for &idx in &active {
            if self.hot.down[idx].is_some() {
                continue;
            }
            self.stations[idx].observe(self.now, next_free, &observation);
        }
        self.active = active;
        self.record_catchup(CatchUp::Slot {
            at: self.now,
            next_free,
            observation,
        });
        if self.parked_count > 0
            && !had_transmitters
            && !matches!(observation, Observation::Silence)
        {
            // A fault lane turned an otherwise-silent slot into noise with
            // no transmitter on the channel: no active station need carry
            // the protocol consequences (every synced witness may be
            // parked), so the dormancy assumptions cannot be certified —
            // catch everyone up, after logging the slot they must replay.
            self.wake_all();
        }
        self.now = next_free;
        self.slot_ordinal += 1;
    }

    /// The slot attribution from the first synced station that offers one
    /// (replicas agree on the shared automaton, so any synced answer is
    /// the network's answer).
    fn current_phase_hint(&self) -> Option<PhaseHint> {
        self.stations
            .iter()
            .enumerate()
            .filter(|(idx, _)| self.hot.down[*idx].is_none())
            .find_map(|(_, station)| station.phase_hint())
    }

    /// Feeds one resolved slot into the metrics: phase/ξ accounting plus
    /// the per-station counters derivable from this slot's transmitters.
    fn observe_metrics(
        &mut self,
        hint: Option<PhaseHint>,
        observation: &Observation,
        slot_faults: &SlotFaults,
    ) {
        let Some(metrics) = self.metrics.as_mut() else {
            return;
        };
        // Overhead/resolved per the paper's ξ accounting: silence and
        // collisions are overhead slots; a success resolves one active
        // leaf; a collision proves at least two.
        let (overhead, resolved) = match observation {
            Observation::Silence => (1, 0),
            Observation::Busy(_) => (0, 1),
            Observation::Collision { .. } => (1, 2),
            Observation::Garbled => (1, 1),
        };
        let faulted = slot_faults.corrupted || slot_faults.erased.is_some();
        metrics.on_slot(hint, overhead, resolved, faulted);
        match observation {
            Observation::Silence => {}
            Observation::Busy(frame) => {
                metrics.on_transmit(frame.message.source.0 as usize);
            }
            Observation::Collision { survivor } => {
                for frame in &self.transmitters {
                    metrics.on_collision_seen(frame.message.source.0 as usize);
                }
                if let Some(frame) = survivor {
                    metrics.on_transmit(frame.message.source.0 as usize);
                }
            }
            Observation::Garbled => {
                if let Some(frame) = &slot_faults.erased {
                    metrics.on_garbled(frame.message.source.0 as usize);
                }
            }
        }
    }

    /// Records one channel event in the in-memory trace and the JSONL sink.
    fn emit(&mut self, event: TraceEvent) {
        self.trace.record(event);
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&event);
        }
    }

    /// Updates stats and trace for one resolved slot.
    fn account(&mut self, observation: &Observation, next_free: Ticks, slot_faults: &SlotFaults) {
        if slot_faults.corrupted {
            self.stats.corrupted_slots += 1;
        }
        if !matches!(observation, Observation::Silence) {
            // Busy/collision slots may dequeue (or, for CSMA-CD's attempt
            // cap, drop) frames inside `observe`; re-sum lazily.
            self.backlog_stale = true;
        }
        match observation {
            Observation::Silence => {
                self.stats.silence_slots += 1;
                self.emit(TraceEvent::Silence { at: self.now });
            }
            Observation::Busy(frame) => {
                self.stats.busy_ticks += frame.duration();
                self.emit(TraceEvent::TxStart {
                    at: self.now,
                    message: frame.message.id,
                });
                self.emit(TraceEvent::TxEnd {
                    at: next_free,
                    message: frame.message.id,
                });
                self.stats.push_delivery(Delivery {
                    message: frame.message,
                    completed_at: next_free,
                });
            }
            Observation::Collision { survivor } => {
                self.stats.collisions += 1;
                self.emit(TraceEvent::Collision {
                    at: self.now,
                    survivor: survivor.map(|f| f.message.id),
                });
                if let Some(frame) = survivor {
                    self.stats.busy_ticks += frame.duration();
                    self.emit(TraceEvent::TxEnd {
                        at: next_free,
                        message: frame.message.id,
                    });
                    self.stats.push_delivery(Delivery {
                        message: frame.message,
                        completed_at: next_free,
                    });
                }
            }
            Observation::Garbled => {
                // The channel was held but nothing got through: dead time,
                // neither useful work nor a counted collision.
                self.stats.erased_frames += 1;
                // `FaultPlan::apply` produces `Garbled` exactly when it
                // erases a frame, so `erased` carries the victim here; the
                // destructured form keeps that invariant panic-free (a
                // frameless garble would merely go untraced).
                if let Some(frame) = slot_faults.erased {
                    self.emit(TraceEvent::Garbled {
                        at: self.now,
                        message: frame.message.id,
                    });
                }
            }
        }
    }

    /// Hands every arrival with `T ≤ now` to its station. Arrivals for a
    /// crashed station are recorded lost: its network module is dead.
    fn deliver_due(&mut self) {
        self.ensure_pending_sorted();
        // `Message` is `Copy`, so peeking by value and popping afterwards
        // needs no re-check of the emptiness the peek already proved.
        while let Some(&msg) = self.pending.last() {
            if msg.arrival > self.now {
                break;
            }
            self.pending.pop();
            let idx = msg.source.0 as usize;
            if self.hot.down[idx].is_some() {
                self.stats.push_lost(msg);
            } else {
                if self.hot.parked[idx] {
                    // Catch the station up on everything it slept through
                    // — in channel order, before the delivery — and
                    // reinstate it in the poll loop.
                    self.wake_station(idx);
                }
                self.stations[idx].deliver(msg);
                if let Some(metrics) = self.metrics.as_mut() {
                    metrics.note_queue_depth(idx, self.stations[idx].backlog());
                }
            }
            self.backlog_stale = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::CollisionMode;
    use crate::message::{ClassId, MessageId, SourceId};
    use crate::station::test_support::GreedyStation;

    fn msg(id: u64, source: u32, arrival: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(0),
            bits: 1000,
            arrival: Ticks(arrival),
            deadline: Ticks(1_000_000),
        }
    }

    fn engine_with_stations(n: usize) -> Engine {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        for _ in 0..n {
            e.add_station(Box::new(GreedyStation::new(
                MediumConfig::ethernet().overhead_bits,
            )));
        }
        e
    }

    #[test]
    fn silent_channel_advances_by_slots() {
        let mut e = engine_with_stations(2);
        e.run_until(Ticks(5120));
        assert_eq!(e.stats().silence_slots, 10);
        assert_eq!(e.now(), Ticks(5120));
    }

    #[test]
    fn single_transmitter_succeeds() {
        let mut e = engine_with_stations(2);
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 1);
        assert_eq!(e.stats().collisions, 0);
        let d = e.stats().deliveries[0];
        assert_eq!(d.completed_at, Ticks(1208)); // 1000 + 26*8 overhead bits
    }

    #[test]
    fn two_greedy_stations_collide_forever() {
        let mut e = engine_with_stations(2);
        e.add_arrivals([msg(0, 0, 0), msg(1, 1, 0)]).unwrap();
        let err = e.run_to_completion(Ticks(51_200)).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
        assert!(e.stats().collisions >= 99); // every slot is a collision
        assert!(e.stats().deliveries.is_empty());
    }

    #[test]
    fn arbitrating_medium_lets_lowest_source_win() {
        let mut cfg = MediumConfig::ethernet();
        cfg.collision_mode = CollisionMode::Arbitrating;
        let mut e = Engine::new(cfg).unwrap();
        for _ in 0..2 {
            e.add_station(Box::new(GreedyStation::new(cfg.overhead_bits)));
        }
        e.add_arrivals([msg(0, 0, 0), msg(1, 1, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 2);
        // Source 0 wins the arbitration; both eventually deliver.
        assert_eq!(e.stats().deliveries[0].message.source, SourceId(0));
        assert_eq!(e.stats().deliveries[1].message.source, SourceId(1));
        assert_eq!(e.stats().collisions, 1);
    }

    #[test]
    fn rejects_unknown_source() {
        let mut e = engine_with_stations(1);
        let err = e.add_arrivals([msg(0, 5, 0)]).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownSource {
                source: 5,
                stations: 1
            }
        );
    }

    #[test]
    fn arrivals_delivered_in_time_order() {
        let mut e = engine_with_stations(1);
        e.add_arrivals([msg(1, 0, 2000), msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        let ids: Vec<u64> = e.stats().deliveries.iter().map(|d| d.message.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn trace_records_channel_history() {
        let mut e = engine_with_stations(1);
        e.set_trace(Trace::enabled());
        e.add_arrivals([msg(0, 0, 512)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        let events = e.trace().events();
        assert!(matches!(events[0], TraceEvent::Silence { .. }));
        assert!(matches!(events[1], TraceEvent::TxStart { .. }));
        assert!(matches!(events[2], TraceEvent::TxEnd { .. }));
    }

    #[test]
    fn stats_total_time_set_on_completion() {
        let mut e = engine_with_stations(1);
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().total_ticks, e.now());
        let stats = e.into_stats();
        assert!(stats.total_ticks > Ticks::ZERO);
    }

    /// A greedy transmitter that additionally implements the fast-forward
    /// contract: idle (and provably silent) whenever its queue is empty.
    struct SleepyStation {
        inner: GreedyStation,
        skipped_slots: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl SleepyStation {
        fn new() -> Self {
            SleepyStation {
                inner: GreedyStation::new(MediumConfig::ethernet().overhead_bits),
                skipped_slots: std::sync::Arc::default(),
            }
        }
    }

    impl Station for SleepyStation {
        fn deliver(&mut self, message: Message) {
            self.inner.deliver(message);
        }
        fn poll(&mut self, now: Ticks) -> Action {
            self.inner.poll(now)
        }
        fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
            self.inner.observe(now, next_free, observation);
        }
        fn backlog(&self) -> usize {
            self.inner.backlog()
        }
        fn next_ready(&self, now: Ticks) -> Option<Ticks> {
            if self.inner.queue.is_empty() {
                None
            } else {
                Some(now)
            }
        }
        fn skip_silence(&mut self, _from: Ticks, slots: u64, _slot: Ticks) {
            self.skipped_slots.fetch_add(slots, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn fast_forward_jumps_idle_run_with_exact_stats() {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.add_station(Box::new(SleepyStation::new()));
        e.set_trace(Trace::enabled());
        e.run_until(Ticks(512 * 100));
        assert_eq!(e.now(), Ticks(512 * 100));
        assert_eq!(e.stats().silence_slots, 100);
        assert_eq!(e.trace().events().len(), 100);
        for (i, ev) in e.trace().events().iter().enumerate() {
            assert_eq!(*ev, TraceEvent::Silence { at: Ticks(512 * i as u64) });
        }
    }

    #[test]
    fn fast_forward_lands_on_slot_covering_unaligned_deadline() {
        // The naive stepper exits run_until once `now >= deadline`, i.e. on
        // the first slot boundary at or past it; the jump must match.
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.add_station(Box::new(SleepyStation::new()));
        e.run_until(Ticks(5000));
        assert_eq!(e.now(), Ticks(5120));
        assert_eq!(e.stats().silence_slots, 10);
    }

    #[test]
    fn fast_forward_wakes_for_future_arrival() {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.add_station(Box::new(SleepyStation::new()));
        // Arrival mid-slot: slots [0, 9728) are silent, delivery happens at
        // the slot starting 9728 (the first boundary past 9700).
        e.add_arrivals([msg(0, 0, 9700)]).unwrap();
        e.run_to_completion(Ticks(1_000_000)).unwrap();
        assert_eq!(e.stats().silence_slots, 19);
        assert_eq!(e.stats().deliveries.len(), 1);
        assert_eq!(e.stats().deliveries[0].completed_at, Ticks(9728 + 1208));
    }

    #[test]
    fn fast_forward_matches_reference_stepper() {
        let build = |fast: bool| {
            let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
            e.set_fast_forward(fast);
            e.set_trace(Trace::enabled());
            for _ in 0..3 {
                e.add_station(Box::new(SleepyStation::new()));
            }
            // Staggered so the greedy (never backing off) stations do not
            // collide forever; collision equivalence is covered by the
            // protocol-level proptest suite.
            e.add_arrivals([msg(0, 0, 300), msg(1, 1, 40_000), msg(2, 2, 80_000)])
                .unwrap();
            e.run_to_completion(Ticks(10_000_000)).unwrap();
            e
        };
        let fast = build(true);
        let reference = build(false);
        assert_eq!(fast.now(), reference.now());
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        // The fast engine really did skip: its stations saw bulk silence.
        assert!(fast.stats().silence_slots > 0);
    }

    #[test]
    fn skip_silence_called_instead_of_per_slot_observe() {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        let station = SleepyStation::new();
        let skipped = station.skipped_slots.clone();
        e.add_station(Box::new(station));
        e.run_until(Ticks(512 * 64));
        assert_eq!(skipped.load(std::sync::atomic::Ordering::Relaxed), 64);
    }

    /// A greedy transmitter that additionally implements the busy
    /// fast-forward contract: it commits to draining its whole queue when
    /// it holds work and promises silence otherwise.
    struct HoldingStation {
        inner: GreedyStation,
        busy_skipped: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl HoldingStation {
        fn new() -> Self {
            HoldingStation {
                inner: GreedyStation::new(MediumConfig::ethernet().overhead_bits),
                busy_skipped: std::sync::Arc::default(),
            }
        }
    }

    impl Station for HoldingStation {
        fn deliver(&mut self, message: Message) {
            self.inner.deliver(message);
        }
        fn poll(&mut self, now: Ticks) -> Action {
            self.inner.poll(now)
        }
        fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
            self.inner.observe(now, next_free, observation);
        }
        fn backlog(&self) -> usize {
            self.inner.backlog()
        }
        fn next_ready(&self, now: Ticks) -> Option<Ticks> {
            if self.inner.queue.is_empty() {
                None
            } else {
                Some(now)
            }
        }
        fn hold_hint(&self, _now: Ticks) -> HoldHint {
            if self.inner.queue.is_empty() {
                HoldHint::Quiet(u64::MAX)
            } else {
                HoldHint::Hold(self.inner.queue.len() as u64)
            }
        }
        fn skip_busy(&mut self, from: Ticks, frames: &[Frame], slot: Ticks) {
            self.busy_skipped.fetch_add(frames.len() as u64, std::sync::atomic::Ordering::Relaxed);
            // Foreign frames never match this queue; replay only records
            // the observations, exactly like the reference stepper.
            let mut at = from;
            for frame in frames {
                let next_free = at + frame.duration();
                self.observe(at, next_free, &Observation::Busy(*frame));
                at = next_free;
            }
            let _ = slot;
        }
    }

    /// Builds a two-station [`HoldingStation`] engine with the given
    /// fast-forward switches and returns it plus the quiet station's
    /// busy-skip counter.
    fn holding_pair(
        fast: bool,
        busy: bool,
    ) -> (Engine, std::sync::Arc<std::sync::atomic::AtomicU64>) {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.set_fast_forward(fast);
        e.set_busy_fast_forward(busy);
        e.set_trace(Trace::enabled());
        let holder = HoldingStation::new();
        let quiet = HoldingStation::new();
        let skipped = quiet.busy_skipped.clone();
        e.add_station(Box::new(holder));
        e.add_station(Box::new(quiet));
        (e, skipped)
    }

    #[test]
    fn busy_run_matches_reference_stepper_bitwise() {
        // A five-frame drain at station 0 while station 1 stays quiet,
        // then a later lone frame from station 1: every switch combination
        // must produce identical stats, trace, and timing.
        let run = |fast: bool, busy: bool| {
            let (mut e, skipped) = holding_pair(fast, busy);
            e.add_arrivals((0..5).map(|i| msg(i, 0, 0)))
                .unwrap();
            e.add_arrivals([msg(9, 1, 40_000)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            (e, skipped)
        };
        let (reference, ref_skipped) = run(false, false);
        assert_eq!(ref_skipped.load(std::sync::atomic::Ordering::Relaxed), 0, "reference must not busy-skip");
        for (fast, busy) in [(true, true), (false, true), (true, false)] {
            let (e, skipped) = run(fast, busy);
            assert_eq!(e.now(), reference.now(), "fast={fast} busy={busy}");
            assert_eq!(e.stats(), reference.stats(), "fast={fast} busy={busy}");
            assert_eq!(
                e.trace().events(),
                reference.trace().events(),
                "fast={fast} busy={busy}"
            );
            // Bisection: the quiet station is caught up in bulk exactly
            // when busy fast-forward is on.
            assert_eq!(skipped.load(std::sync::atomic::Ordering::Relaxed) > 0, busy, "fast={fast} busy={busy}");
        }
    }

    #[test]
    fn busy_run_stops_for_an_arrival_landing_mid_drain() {
        // The second batch lands while frame 2 of the drain is on the wire;
        // the run must break at the next decision slot so the arrival is
        // delivered exactly where the reference stepper would.
        let run = |busy: bool| {
            let (mut e, _) = holding_pair(true, busy);
            e.add_arrivals((0..3).map(|i| msg(i, 0, 0))).unwrap();
            e.add_arrivals([msg(7, 0, 1_500)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            e
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        assert_eq!(fast.stats().deliveries.len(), 4);
        // Frames go back to back: 4 × 1208 ticks, no silence in between.
        assert_eq!(fast.stats().deliveries[3].completed_at, Ticks(4 * 1208));
    }

    #[test]
    fn busy_run_refuses_to_cross_a_scheduled_fault() {
        use crate::fault::{FaultEvent, FaultKind};
        // An erasure strikes slot 2, mid-drain: the busy run must stop at
        // ordinal 2 and hand the slot to the reference stepper.
        let run = |busy: bool| {
            let (mut e, _) = holding_pair(true, busy);
            e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
                slot: 2,
                kind: FaultKind::EraseFrame,
            }]));
            e.add_arrivals((0..4).map(|i| msg(i, 0, 0))).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            e
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        assert_eq!(fast.stats().erased_frames, 1);
        assert_eq!(fast.stats().deliveries.len(), 4);
    }

    /// Regression for the slot-path panic sweep: the Garbled accounting arm
    /// used to `expect` the erased frame out of the slot faults; drive an
    /// erasure through a real transmission and pin both sides of the
    /// restructured invariant — the frame is counted *and* traced.
    #[test]
    fn erasure_fault_accounts_and_traces_without_panicking() {
        use crate::fault::{FaultEvent, FaultKind};
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.set_trace(Trace::enabled());
        e.add_station(Box::new(GreedyStation::new(208)));
        e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::EraseFrame,
        }]));
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(1_000_000)).unwrap();
        assert_eq!(e.stats().erased_frames, 1);
        assert!(
            e.trace()
                .events()
                .iter()
                .any(|ev| matches!(ev, TraceEvent::Garbled { .. })),
            "erased frame must still be traced"
        );
        // The retry after the erasure delivers the message.
        assert_eq!(e.stats().deliveries.len(), 1);
    }

    /// Regression for the slot-path panic sweep: `deliver_due` used to pop
    /// with a checked-non-empty `expect`; hammer it with a same-tick burst
    /// split across a live and a crashed station.
    #[test]
    fn same_tick_arrival_burst_delivers_and_loses_without_panicking() {
        use crate::fault::{FaultEvent, FaultKind};
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        e.add_station(Box::new(GreedyStation::new(208)));
        e.add_station(Box::new(GreedyStation::new(208)));
        // Station 1 is down from slot 0 for a long stretch: all its
        // arrivals inside that window are recorded lost.
        e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::Crash {
                station: 1,
                down_slots: 1_000,
            },
        }]));
        let burst: Vec<Message> = (0..16).map(|i| msg(i, (i % 2) as u32, 0)).collect();
        e.add_arrivals(burst).unwrap();
        e.run_until(Ticks(40_000));
        assert_eq!(e.stats().lost_total, 8, "crashed station's arrivals are lost");
        assert!(!e.stats().deliveries.is_empty());
    }

    #[test]
    fn busy_run_metrics_are_fully_attributed() {
        // Busy-skipped slots keep exact per-slot metrics attribution; the
        // skip counters are telemetry on top, not an accounting bucket.
        let run = |busy: bool| {
            let (mut e, _) = holding_pair(true, busy);
            e.enable_metrics();
            e.add_arrivals((0..5).map(|i| msg(i, 0, 0))).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            e.take_metrics().unwrap()
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast.phase_slots, reference.phase_slots);
        assert_eq!(fast.violations_total, reference.violations_total);
        assert_eq!(fast.busy_skipped_slots, 5);
        assert_eq!(fast.busy_skip_runs, 1);
        assert_eq!(reference.busy_skipped_slots, 0);
    }

    /// A greedy transmitter that additionally implements the contention
    /// fast-forward contract: engaged while it holds work, quiet (and
    /// bulk-catch-up-able) otherwise. Observations are mirrored into a
    /// shared log so tests can compare what a quiet station heard across
    /// steppers.
    struct SearchingStation {
        inner: GreedyStation,
        search_skipped: std::sync::Arc<std::sync::atomic::AtomicU64>,
        log: std::sync::Arc<std::sync::Mutex<Vec<(Ticks, Ticks, Observation)>>>,
    }

    impl SearchingStation {
        fn new() -> Self {
            SearchingStation {
                inner: GreedyStation::new(MediumConfig::ethernet().overhead_bits),
                search_skipped: std::sync::Arc::default(),
                log: std::sync::Arc::default(),
            }
        }
    }

    impl Station for SearchingStation {
        fn deliver(&mut self, message: Message) {
            self.inner.deliver(message);
        }
        fn poll(&mut self, now: Ticks) -> Action {
            self.inner.poll(now)
        }
        fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
            self.log.lock().unwrap().push((now, next_free, *observation));
            self.inner.observe(now, next_free, observation);
        }
        fn backlog(&self) -> usize {
            self.inner.backlog()
        }
        fn next_ready(&self, now: Ticks) -> Option<Ticks> {
            if self.inner.queue.is_empty() {
                None
            } else {
                Some(now)
            }
        }
        fn search_hint(&self, _now: Ticks) -> SearchHint {
            if self.inner.queue.is_empty() {
                SearchHint::Quiet
            } else {
                SearchHint::Engage
            }
        }
        fn skip_search(
            &mut self,
            from: Ticks,
            records: &[SearchSlotRecord],
            _checkpoint: Option<&dyn std::any::Any>,
            _slot: Ticks,
        ) {
            self.search_skipped
                .fetch_add(records.len() as u64, std::sync::atomic::Ordering::Relaxed);
            let _ = from;
            // Replay through `observe` so the shared log records exactly
            // what the reference stepper would have reported.
            for r in records {
                self.observe(r.at, r.next_free, &r.observation);
            }
        }
    }

    /// Builds a three-station [`SearchingStation`] engine on an arbitrating
    /// medium (collisions resolve to the lowest source, so greedy
    /// contenders make progress) with the given fast-forward switches.
    /// Returns the engine plus station 2's skip counter and observation
    /// log — the tests keep station 2 quiet.
    #[allow(clippy::type_complexity)]
    fn searching_trio(
        fast: bool,
        busy: bool,
        contention: bool,
    ) -> (
        Engine,
        std::sync::Arc<std::sync::atomic::AtomicU64>,
        std::sync::Arc<std::sync::Mutex<Vec<(Ticks, Ticks, Observation)>>>,
    ) {
        let mut cfg = MediumConfig::ethernet();
        cfg.collision_mode = CollisionMode::Arbitrating;
        let mut e = Engine::new(cfg).unwrap();
        e.set_fast_forward(fast);
        e.set_busy_fast_forward(busy);
        e.set_contention_fast_forward(contention);
        e.set_trace(Trace::enabled());
        let quiet = SearchingStation::new();
        let skipped = quiet.search_skipped.clone();
        let log = quiet.log.clone();
        e.add_station(Box::new(SearchingStation::new()));
        e.add_station(Box::new(SearchingStation::new()));
        e.add_station(Box::new(quiet));
        (e, skipped, log)
    }

    #[test]
    fn search_run_matches_reference_stepper_bitwise() {
        // Stations 0 and 1 contend (two arbitrated collisions, then a lone
        // success) while station 2 stays quiet: every switch combination
        // must produce identical stats, trace, timing, and quiet-station
        // observations.
        let run = |fast: bool, busy: bool, contention: bool| {
            let (mut e, skipped, log) = searching_trio(fast, busy, contention);
            e.add_arrivals([msg(0, 0, 0), msg(1, 0, 0), msg(10, 1, 0)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            (e, skipped, log)
        };
        let (reference, ref_skipped, ref_log) = run(false, false, false);
        assert_eq!(ref_skipped.load(std::sync::atomic::Ordering::Relaxed), 0, "reference must not search-skip");
        assert_eq!(reference.stats().collisions, 2);
        for fast in [false, true] {
            for busy in [false, true] {
                for contention in [false, true] {
                    if !(fast || busy || contention) {
                        continue;
                    }
                    let (e, skipped, log) = run(fast, busy, contention);
                    let tag = format!("fast={fast} busy={busy} contention={contention}");
                    assert_eq!(e.now(), reference.now(), "{tag}");
                    assert_eq!(e.stats(), reference.stats(), "{tag}");
                    assert_eq!(e.trace().events(), reference.trace().events(), "{tag}");
                    assert_eq!(*log.lock().unwrap(), *ref_log.lock().unwrap(), "{tag}");
                    // Bisection: the quiet station is caught up in bulk
                    // exactly when contention fast-forward is on.
                    assert_eq!(skipped.load(std::sync::atomic::Ordering::Relaxed) > 0, contention, "{tag}");
                }
            }
        }
    }

    #[test]
    fn search_run_stops_for_an_arrival_landing_mid_drain() {
        // Station 2's arrival lands while frame 2 of station 0's drain is
        // on the wire; the run must break at the next decision slot so the
        // arrival is delivered exactly where the reference stepper would —
        // and station 2 flips from quiet to engaged for the second run.
        let run = |contention: bool| {
            let (mut e, skipped, _) = searching_trio(true, true, contention);
            e.add_arrivals((0..3).map(|i| msg(i, 0, 0))).unwrap();
            e.add_arrivals([msg(7, 2, 1_500)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            (e, skipped)
        };
        let (fast, skipped) = run(true);
        let (reference, _) = run(false);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        assert_eq!(fast.stats().deliveries.len(), 4);
        assert!(skipped.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn search_run_refuses_to_cross_a_scheduled_fault() {
        use crate::fault::{FaultEvent, FaultKind};
        // An erasure strikes slot 2, mid-contention: the run must stop at
        // ordinal 2 and hand the slot to the reference stepper.
        let run = |contention: bool| {
            let (mut e, _, _) = searching_trio(true, true, contention);
            e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
                slot: 2,
                kind: FaultKind::EraseFrame,
            }]));
            e.add_arrivals([msg(0, 0, 0), msg(1, 0, 0), msg(10, 1, 0)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            e
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        assert_eq!(fast.stats().erased_frames, 1);
        assert_eq!(fast.stats().deliveries.len(), 3);
    }

    #[test]
    fn search_run_metrics_are_fully_attributed() {
        // Contention-skipped slots keep exact per-slot metrics attribution;
        // the skip counters are telemetry on top, not an accounting bucket.
        let run = |contention: bool| {
            let (mut e, _, _) = searching_trio(true, true, contention);
            e.enable_metrics();
            e.add_arrivals([msg(0, 0, 0), msg(1, 0, 0), msg(10, 1, 0)]).unwrap();
            e.run_to_completion(Ticks(1_000_000)).unwrap();
            e.take_metrics().unwrap()
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast.phase_slots, reference.phase_slots);
        assert_eq!(fast.stations(), reference.stations());
        assert_eq!(fast.violations_total, reference.violations_total);
        assert_eq!(fast.search_skipped_slots, 3);
        assert_eq!(fast.search_skip_runs, 1);
        assert_eq!(reference.search_skipped_slots, 0);
    }

    #[test]
    fn out_of_order_batches_still_deliver_in_time_order() {
        let mut e = engine_with_stations(1);
        e.add_arrivals([msg(2, 0, 4000)]).unwrap();
        e.add_arrivals([msg(1, 0, 2000), msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        let ids: Vec<u64> = e.stats().deliveries.iter().map(|d| d.message.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn corrupt_slot_turns_success_into_collision() {
        use crate::fault::{FaultEvent, FaultKind};
        let mut e = engine_with_stations(1);
        e.set_trace(Trace::enabled());
        // Slot 0 is corrupted; the lone transmitter retries at slot 1.
        e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::CorruptSlot,
        }]));
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().corrupted_slots, 1);
        assert_eq!(e.stats().collisions, 1);
        assert_eq!(e.stats().deliveries.len(), 1);
        // Retry starts at 512 (one slot burned), completes 512 + 1208.
        assert_eq!(e.stats().deliveries[0].completed_at, Ticks(512 + 1208));
        assert_eq!(e.trace().render_timeline(), "X#");
    }

    #[test]
    fn erased_frame_holds_channel_but_delivers_nothing() {
        use crate::fault::{FaultEvent, FaultKind};
        let mut e = engine_with_stations(1);
        e.set_trace(Trace::enabled());
        e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::EraseFrame,
        }]));
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().erased_frames, 1);
        assert_eq!(e.stats().deliveries.len(), 1);
        // The erased attempt held the channel for the full frame (1208
        // ticks); the retry completes at 1208 + 1208.
        assert_eq!(e.stats().deliveries[0].completed_at, Ticks(2 * 1208));
        assert_eq!(e.trace().render_timeline(), "?#");
    }

    #[test]
    fn crashed_station_is_fenced_and_its_arrivals_are_lost() {
        use crate::fault::{FaultEvent, FaultKind};
        let mut e = engine_with_stations(2);
        // Station 0 crashes at slot 0 for 5 slots; its queued arrival and
        // the one arriving while it is down are both lost. Station 1 is
        // unaffected.
        e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::Crash {
                station: 0,
                down_slots: 5,
            },
        }]));
        // msg 0 and 1 arrive while station 0 is down (lost); msg 3 arrives
        // well after its restart and goes through.
        e.add_arrivals([msg(0, 0, 0), msg(1, 0, 600), msg(2, 1, 0), msg(3, 0, 50_000)])
            .unwrap();
        e.run_to_completion(Ticks(1_000_000)).unwrap();
        assert_eq!(e.stats().crashes, 1);
        assert_eq!(e.stats().restarts, 1);
        assert_eq!(e.stats().lost.len(), 2);
        assert_eq!(
            e.stats().lost.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(e.stats().deliveries.len(), 2);
        assert_eq!(e.stats().deliveries[0].message.source, SourceId(1));
        assert_eq!(e.stats().deliveries[1].message.id, MessageId(3));
        assert!(!e.is_down(0), "restart processed");
    }

    #[test]
    fn fast_forward_refuses_to_skip_a_scheduled_fault() {
        use crate::fault::{FaultEvent, FaultKind};
        // An idle network with a corrupt fault scheduled mid-run: the slot
        // must be stepped, observed as a collision by the (idle) station,
        // and accounted — fast-forwarded or not.
        let build = |fast: bool| {
            let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
            e.set_fast_forward(fast);
            e.set_trace(Trace::enabled());
            e.add_station(Box::new(SleepyStation::new()));
            e.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
                slot: 13,
                kind: FaultKind::CorruptSlot,
            }]));
            e.run_until(Ticks(512 * 40));
            e
        };
        let fast = build(true);
        let reference = build(false);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.trace().events(), reference.trace().events());
        assert_eq!(fast.stats().corrupted_slots, 1);
        assert_eq!(fast.stats().collisions, 1);
        assert_eq!(fast.stats().silence_slots, 39);
        assert_eq!(fast.trace().events()[13].at(), Ticks(13 * 512));
    }

    #[test]
    fn empty_fault_plan_is_bitwise_invisible() {
        let build = |with_plan: bool| {
            let mut e = engine_with_stations(2);
            e.set_trace(Trace::enabled());
            if with_plan {
                e.set_fault_plan(FaultPlan::none());
            }
            e.add_arrivals([msg(0, 0, 300), msg(1, 1, 40_000)]).unwrap();
            e.run_to_completion(Ticks(10_000_000)).unwrap();
            e
        };
        let with = build(true);
        let without = build(false);
        assert_eq!(with.stats(), without.stats());
        assert_eq!(with.trace().events(), without.trace().events());
        assert_eq!(with.now(), without.now());
    }

    #[test]
    fn invalid_medium_rejected() {
        let cfg = MediumConfig {
            slot_ticks: 0,
            overhead_bits: 0,
            collision_mode: CollisionMode::Destructive,
        };
        assert!(matches!(
            Engine::new(cfg),
            Err(SimError::InvalidMedium(_))
        ));
    }
}
