//! The slot-synchronous simulation engine.
//!
//! The engine advances a single broadcast channel through decision slots.
//! At each decision point it (1) delivers due message arrivals to their
//! stations, (2) polls every station for an [`Action`], (3) resolves the
//! channel state exactly as the paper's model prescribes — silence, busy,
//! or collision — and (4) reports the identical [`Observation`] to every
//! station. Time advances by one slot time `x` for silence and destructive
//! collisions, and by the frame duration `l'` for successful transmissions
//! (throughput normalised to 1 bit/tick), which keeps the engine's
//! accounting aligned with the `B_DDCR` bound of §4.3 (`Σ l'/ψ + x·S`).

use crate::channel::{Action, CollisionMode, MediumConfig, Observation};
use crate::message::{Delivery, Frame, Message};
use crate::station::Station;
use crate::stats::ChannelStats;
use crate::time::Ticks;
use crate::trace::{Trace, TraceEvent};

/// Error raised when assembling or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The medium configuration is physically implausible.
    InvalidMedium(String),
    /// A message routes to a station index that was never added.
    UnknownSource {
        /// The message's source id.
        source: u32,
        /// Number of stations attached.
        stations: usize,
    },
    /// `run_to_completion` exceeded its tick budget with work outstanding.
    Timeout {
        /// Time at which the run gave up.
        at: Ticks,
        /// Messages still queued across all stations.
        backlog: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidMedium(msg) => write!(f, "invalid medium: {msg}"),
            SimError::UnknownSource { source, stations } => {
                write!(f, "message for source {source} but only {stations} stations attached")
            }
            SimError::Timeout { at, backlog } => {
                write!(f, "simulation timed out at {at} with backlog {backlog}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The simulation engine: one broadcast medium plus its stations.
///
/// # Examples
///
/// ```
/// use ddcr_sim::{Engine, MediumConfig};
///
/// # fn main() -> Result<(), ddcr_sim::SimError> {
/// let engine = Engine::new(MediumConfig::ethernet())?;
/// assert_eq!(engine.now(), ddcr_sim::Ticks::ZERO);
/// # Ok(())
/// # }
/// ```
pub struct Engine {
    medium: MediumConfig,
    stations: Vec<Box<dyn Station>>,
    /// Future arrivals, sorted descending by (time, id) so `pop` yields the
    /// earliest.
    pending: Vec<Message>,
    now: Ticks,
    stats: ChannelStats,
    trace: Trace,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("medium", &self.medium)
            .field("stations", &self.stations.len())
            .field("pending", &self.pending.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Engine {
    /// Creates an engine over the given medium.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMedium`] if the configuration fails
    /// validation.
    pub fn new(medium: MediumConfig) -> Result<Self, SimError> {
        medium.validate().map_err(SimError::InvalidMedium)?;
        Ok(Engine {
            medium,
            stations: Vec::new(),
            pending: Vec::new(),
            now: Ticks::ZERO,
            stats: ChannelStats::default(),
            trace: Trace::default(),
        })
    }

    /// Attaches a station; stations are indexed by attachment order, which
    /// must match the `SourceId`s used in the workload.
    pub fn add_station(&mut self, station: Box<dyn Station>) -> &mut Self {
        self.stations.push(station);
        self
    }

    /// Enables channel tracing.
    pub fn set_trace(&mut self, trace: Trace) -> &mut Self {
        self.trace = trace;
        self
    }

    /// Schedules a batch of future arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSource`] if a message's source index is
    /// out of range for the attached stations.
    pub fn add_arrivals<I>(&mut self, arrivals: I) -> Result<&mut Self, SimError>
    where
        I: IntoIterator<Item = Message>,
    {
        for msg in arrivals {
            if msg.source.0 as usize >= self.stations.len() {
                return Err(SimError::UnknownSource {
                    source: msg.source.0,
                    stations: self.stations.len(),
                });
            }
            self.pending.push(msg);
        }
        // Descending, so the earliest (smallest) arrival is at the end.
        self.pending
            .sort_by_key(|m| std::cmp::Reverse((m.arrival, m.id)));
        Ok(self)
    }

    /// Current simulation time.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The channel trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Read access to an attached station (for protocol-state assertions in
    /// tests).
    pub fn station(&self, index: usize) -> Option<&dyn Station> {
        self.stations.get(index).map(|b| b.as_ref())
    }

    /// Total messages queued across all stations plus not-yet-delivered
    /// arrivals.
    pub fn backlog(&self) -> usize {
        self.stations.iter().map(|s| s.backlog()).sum::<usize>() + self.pending.len()
    }

    /// Runs until `deadline` (inclusive of the slot straddling it).
    pub fn run_until(&mut self, deadline: Ticks) {
        while self.now < deadline {
            self.step();
        }
        self.stats.total_ticks = self.now;
    }

    /// Runs until every scheduled arrival has been delivered **and** every
    /// station's queue has drained, or until `max` ticks have elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the budget is exhausted first.
    pub fn run_to_completion(&mut self, max: Ticks) -> Result<(), SimError> {
        while self.backlog() > 0 {
            if self.now >= max {
                self.stats.total_ticks = self.now;
                return Err(SimError::Timeout {
                    at: self.now,
                    backlog: self.backlog(),
                });
            }
            self.step();
        }
        self.stats.total_ticks = self.now;
        Ok(())
    }

    /// Consumes the engine, returning the final statistics.
    pub fn into_stats(mut self) -> ChannelStats {
        self.stats.total_ticks = self.now;
        self.stats
    }

    /// Executes one decision slot.
    fn step(&mut self) {
        self.deliver_due();
        let mut transmitters: Vec<(usize, Frame)> = Vec::new();
        for (idx, station) in self.stations.iter_mut().enumerate() {
            if let Action::Transmit(frame) = station.poll(self.now) {
                transmitters.push((idx, frame));
            }
        }
        let slot = Ticks(self.medium.slot_ticks);
        let (observation, advance) = match transmitters.len() {
            0 => (Observation::Silence, slot),
            1 => {
                let frame = transmitters[0].1;
                (Observation::Busy(frame), frame.duration())
            }
            _ => match self.medium.collision_mode {
                CollisionMode::Destructive => (Observation::Collision { survivor: None }, slot),
                CollisionMode::Arbitrating => {
                    // Lowest source id wins bit-level arbitration.
                    let winner = transmitters
                        .iter()
                        .min_by_key(|(_, f)| f.message.source)
                        .expect("non-empty")
                        .1;
                    (
                        Observation::Collision {
                            survivor: Some(winner),
                        },
                        winner.duration(),
                    )
                }
            },
        };
        let next_free = self.now + advance;
        self.account(&observation, next_free);
        for station in &mut self.stations {
            station.observe(self.now, next_free, &observation);
        }
        self.now = next_free;
    }

    /// Updates stats and trace for one resolved slot.
    fn account(&mut self, observation: &Observation, next_free: Ticks) {
        match observation {
            Observation::Silence => {
                self.stats.silence_slots += 1;
                self.trace.record(TraceEvent::Silence { at: self.now });
            }
            Observation::Busy(frame) => {
                self.stats.busy_ticks += frame.duration();
                self.trace.record(TraceEvent::TxStart {
                    at: self.now,
                    message: frame.message.id,
                });
                self.trace.record(TraceEvent::TxEnd {
                    at: next_free,
                    message: frame.message.id,
                });
                self.stats.deliveries.push(Delivery {
                    message: frame.message,
                    completed_at: next_free,
                });
            }
            Observation::Collision { survivor } => {
                self.stats.collisions += 1;
                self.trace.record(TraceEvent::Collision {
                    at: self.now,
                    survivor: survivor.map(|f| f.message.id),
                });
                if let Some(frame) = survivor {
                    self.stats.busy_ticks += frame.duration();
                    self.trace.record(TraceEvent::TxEnd {
                        at: next_free,
                        message: frame.message.id,
                    });
                    self.stats.deliveries.push(Delivery {
                        message: frame.message,
                        completed_at: next_free,
                    });
                }
            }
        }
    }

    /// Hands every arrival with `T ≤ now` to its station.
    fn deliver_due(&mut self) {
        while let Some(msg) = self.pending.last() {
            if msg.arrival > self.now {
                break;
            }
            let msg = self.pending.pop().expect("checked non-empty");
            self.stations[msg.source.0 as usize].deliver(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClassId, MessageId, SourceId};
    use crate::station::test_support::GreedyStation;

    fn msg(id: u64, source: u32, arrival: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(0),
            bits: 1000,
            arrival: Ticks(arrival),
            deadline: Ticks(1_000_000),
        }
    }

    fn engine_with_stations(n: usize) -> Engine {
        let mut e = Engine::new(MediumConfig::ethernet()).unwrap();
        for _ in 0..n {
            e.add_station(Box::new(GreedyStation::new(
                MediumConfig::ethernet().overhead_bits,
            )));
        }
        e
    }

    #[test]
    fn silent_channel_advances_by_slots() {
        let mut e = engine_with_stations(2);
        e.run_until(Ticks(5120));
        assert_eq!(e.stats().silence_slots, 10);
        assert_eq!(e.now(), Ticks(5120));
    }

    #[test]
    fn single_transmitter_succeeds() {
        let mut e = engine_with_stations(2);
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 1);
        assert_eq!(e.stats().collisions, 0);
        let d = e.stats().deliveries[0];
        assert_eq!(d.completed_at, Ticks(1208)); // 1000 + 26*8 overhead bits
    }

    #[test]
    fn two_greedy_stations_collide_forever() {
        let mut e = engine_with_stations(2);
        e.add_arrivals([msg(0, 0, 0), msg(1, 1, 0)]).unwrap();
        let err = e.run_to_completion(Ticks(51_200)).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
        assert!(e.stats().collisions >= 99); // every slot is a collision
        assert!(e.stats().deliveries.is_empty());
    }

    #[test]
    fn arbitrating_medium_lets_lowest_source_win() {
        let mut cfg = MediumConfig::ethernet();
        cfg.collision_mode = CollisionMode::Arbitrating;
        let mut e = Engine::new(cfg).unwrap();
        for _ in 0..2 {
            e.add_station(Box::new(GreedyStation::new(cfg.overhead_bits)));
        }
        e.add_arrivals([msg(0, 0, 0), msg(1, 1, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().deliveries.len(), 2);
        // Source 0 wins the arbitration; both eventually deliver.
        assert_eq!(e.stats().deliveries[0].message.source, SourceId(0));
        assert_eq!(e.stats().deliveries[1].message.source, SourceId(1));
        assert_eq!(e.stats().collisions, 1);
    }

    #[test]
    fn rejects_unknown_source() {
        let mut e = engine_with_stations(1);
        let err = e.add_arrivals([msg(0, 5, 0)]).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownSource {
                source: 5,
                stations: 1
            }
        );
    }

    #[test]
    fn arrivals_delivered_in_time_order() {
        let mut e = engine_with_stations(1);
        e.add_arrivals([msg(1, 0, 2000), msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        let ids: Vec<u64> = e.stats().deliveries.iter().map(|d| d.message.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn trace_records_channel_history() {
        let mut e = engine_with_stations(1);
        e.set_trace(Trace::enabled());
        e.add_arrivals([msg(0, 0, 512)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        let events = e.trace().events();
        assert!(matches!(events[0], TraceEvent::Silence { .. }));
        assert!(matches!(events[1], TraceEvent::TxStart { .. }));
        assert!(matches!(events[2], TraceEvent::TxEnd { .. }));
    }

    #[test]
    fn stats_total_time_set_on_completion() {
        let mut e = engine_with_stations(1);
        e.add_arrivals([msg(0, 0, 0)]).unwrap();
        e.run_to_completion(Ticks(100_000)).unwrap();
        assert_eq!(e.stats().total_ticks, e.now());
        let stats = e.into_stats();
        assert!(stats.total_ticks > Ticks::ZERO);
    }

    #[test]
    fn invalid_medium_rejected() {
        let cfg = MediumConfig {
            slot_ticks: 0,
            overhead_bits: 0,
            collision_mode: CollisionMode::Destructive,
        };
        assert!(matches!(
            Engine::new(cfg),
            Err(SimError::InvalidMedium(_))
        ));
    }
}
