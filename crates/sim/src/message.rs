//! Messages, sources and deadline bookkeeping — the `<m.HRTDM>` message
//! model of section 2.2.

use crate::time::Ticks;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a message source `s_i` (a station on the broadcast medium).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a message class (an element of the set `MSG`): all
/// instances of a class share bit length, relative deadline and arrival
/// density bound.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique identifier of one message instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One message instance `msg` submitted to a network module.
///
/// Carries the Data-Link PDU length `l(msg)` in bits; the physical framing
/// overhead that turns it into the Ph-PDU length `l'(msg)` is a property of
/// the medium ([`crate::MediumConfig::overhead_bits`]), not of the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// Unique instance id.
    pub id: MessageId,
    /// The source this instance is mapped onto (the mapping model).
    pub source: SourceId,
    /// The message class this instance belongs to.
    pub class: ClassId,
    /// Data-Link PDU bit length `l(msg)`.
    pub bits: u64,
    /// Arrival time `T(msg)` at the network module.
    pub arrival: Ticks,
    /// Relative deadline `d(msg)`: transmission must complete by
    /// `T(msg) + d(msg)`.
    pub deadline: Ticks,
}

impl Message {
    /// Absolute deadline `DM(msg) = T(msg) + d(msg)`.
    pub fn absolute_deadline(&self) -> Ticks {
        self.arrival + self.deadline
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} ({} bits, T={}, DM={})",
            self.id,
            self.source,
            self.bits,
            self.arrival,
            self.absolute_deadline()
        )
    }
}

/// The shared-state coordinates of a tree-search epoch, carried in every
/// DDCR frame header so a restarted station can resynchronize.
///
/// Within one epoch the protocol's shared state is a pure function of the
/// epoch's starting coordinates and the observation sequence since, so a
/// rejoiner that hears any frame stamped with an epoch that began after its
/// restart can rebuild a consistent replica by replaying its buffered
/// observations from `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EpochStamp {
    /// Channel time at which the epoch's TTs run began.
    pub start: Ticks,
    /// The reference time `reft` in force when the epoch began.
    pub reft: Ticks,
    /// Packet-bursting reservation armed at the epoch boundary, if any:
    /// an epoch can begin with a source still holding channel control
    /// (the reservation is noted *before* the next TTs run starts).
    pub burst: Option<SourceId>,
}

/// The on-channel representation of a message being transmitted: what every
/// station can decode from a successful transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// The message carried.
    pub message: Message,
    /// Ph-PDU bit length `l'(msg) = l(msg) + overhead`.
    pub wire_bits: u64,
    /// Packet-bursting continuation flag (IEEE 802.3z, §5 of the paper):
    /// when set, the transmitter keeps channel control and will send
    /// another frame in the immediately following slot; other stations must
    /// stay off the channel for that slot.
    pub burst_more: bool,
    /// Tree-search epoch coordinates of the transmitter's replica, if the
    /// protocol stamps them (DDCR does; the baselines leave this `None`).
    /// Resynchronization anchor for restarted stations.
    pub epoch: Option<EpochStamp>,
}

impl Frame {
    /// A plain frame with no burst continuation and no epoch stamp.
    pub fn new(message: Message, wire_bits: u64) -> Self {
        Frame {
            message,
            wire_bits,
            burst_more: false,
            epoch: None,
        }
    }

    /// Channel occupation time at `ψ = 1 bit/tick`.
    pub fn duration(&self) -> Ticks {
        Ticks(self.wire_bits)
    }
}

/// Record of one completed transmission, for latency/miss accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delivery {
    /// The transmitted message.
    pub message: Message,
    /// When the transmission completed (last bit on the wire).
    pub completed_at: Ticks,
}

impl Delivery {
    /// Whether the hard deadline `DM(msg)` was met.
    pub fn deadline_met(&self) -> bool {
        self.completed_at <= self.message.absolute_deadline()
    }

    /// Transmission latency `completed_at − T(msg)`.
    pub fn latency(&self) -> Ticks {
        self.completed_at - self.message.arrival
    }

    /// Lateness beyond the deadline (zero when met).
    pub fn lateness(&self) -> Ticks {
        self.completed_at
            .saturating_sub(self.message.absolute_deadline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message {
            id: MessageId(7),
            source: SourceId(2),
            class: ClassId(1),
            bits: 1000,
            arrival: Ticks(500),
            deadline: Ticks(2000),
        }
    }

    #[test]
    fn absolute_deadline_adds_relative() {
        assert_eq!(msg().absolute_deadline(), Ticks(2500));
    }

    #[test]
    fn frame_duration_is_wire_bits() {
        let f = Frame::new(msg(), 1200);
        assert!(!f.burst_more);
        assert_eq!(f.duration(), Ticks(1200));
    }

    #[test]
    fn delivery_accounting() {
        let on_time = Delivery {
            message: msg(),
            completed_at: Ticks(2500),
        };
        assert!(on_time.deadline_met());
        assert_eq!(on_time.latency(), Ticks(2000));
        assert_eq!(on_time.lateness(), Ticks::ZERO);

        let late = Delivery {
            message: msg(),
            completed_at: Ticks(2600),
        };
        assert!(!late.deadline_met());
        assert_eq!(late.lateness(), Ticks(100));
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(SourceId(3).to_string(), "s3");
        assert_eq!(ClassId(1).to_string(), "c1");
        assert_eq!(MessageId(9).to_string(), "m9");
        assert!(msg().to_string().contains("m7@s2"));
    }
}
