//! Channel-level statistics and per-run metrics.

use crate::message::{Delivery, Message, SourceId};
use crate::time::Ticks;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by [`ChannelStats::latency_quantile`] for a quantile
/// outside `[0, 1]` (including NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileError {
    /// The offending quantile.
    pub q: f64,
}

impl fmt::Display for QuantileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quantile must be in [0, 1], got {}", self.q)
    }
}

impl std::error::Error for QuantileError {}

/// Aggregate statistics of one simulation run.
///
/// Utilization and overhead follow the paper's accounting: successful
/// transmission time is useful work; collision slots and silence slots are
/// overhead (the quantity `ξ` bounds); the channel is otherwise idle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Slots in which no station transmitted.
    pub silence_slots: u64,
    /// Collision events (each costs one slot under destructive collisions).
    pub collisions: u64,
    /// Ticks spent on successful frame transmission (including the
    /// surviving frame of an arbitrated collision).
    pub busy_ticks: Ticks,
    /// Total simulated time.
    pub total_ticks: Ticks,
    /// Every completed transmission, in completion order.
    pub deliveries: Vec<Delivery>,
    /// Injected-fault accounting: slots forced to read as collisions.
    pub corrupted_slots: u64,
    /// Injected-fault accounting: frames erased on the wire (CRC loss).
    pub erased_frames: u64,
    /// Injected-fault accounting: station crashes processed.
    pub crashes: u64,
    /// Injected-fault accounting: station restarts processed.
    pub restarts: u64,
    /// Messages lost to crashes: queue contents dropped at crash time plus
    /// arrivals addressed to a station while it was down.
    pub lost: Vec<Message>,
}

impl ChannelStats {
    /// Channel utilization: fraction of time spent on successful
    /// transmissions.
    pub fn utilization(&self) -> f64 {
        if self.total_ticks == Ticks::ZERO {
            0.0
        } else {
            self.busy_ticks.as_u64() as f64 / self.total_ticks.as_u64() as f64
        }
    }

    /// Number of deliveries that missed their hard deadline.
    pub fn deadline_misses(&self) -> usize {
        self.deliveries.iter().filter(|d| !d.deadline_met()).count()
    }

    /// Deadline miss ratio over all deliveries (0 when nothing delivered).
    pub fn miss_ratio(&self) -> f64 {
        if self.deliveries.is_empty() {
            0.0
        } else {
            self.deadline_misses() as f64 / self.deliveries.len() as f64
        }
    }

    /// Worst observed transmission latency.
    pub fn max_latency(&self) -> Ticks {
        self.deliveries
            .iter()
            .map(Delivery::latency)
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Worst observed lateness beyond a deadline (zero when all met).
    pub fn max_lateness(&self) -> Ticks {
        self.deliveries
            .iter()
            .map(Delivery::lateness)
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Mean transmission latency (0 when nothing delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.deliveries.is_empty() {
            0.0
        } else {
            self.deliveries
                .iter()
                .map(|d| d.latency().as_u64() as f64)
                .sum::<f64>()
                / self.deliveries.len() as f64
        }
    }

    /// Deliveries originating from one source.
    pub fn deliveries_from(&self, source: SourceId) -> impl Iterator<Item = &Delivery> {
        self.deliveries
            .iter()
            .filter(move |d| d.message.source == source)
    }

    /// Worst latency among messages of one source (0 when none).
    pub fn max_latency_from(&self, source: SourceId) -> Ticks {
        self.deliveries_from(source)
            .map(Delivery::latency)
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Latency at quantile `q ∈ [0, 1]` (nearest-rank; 0 when nothing
    /// delivered).
    ///
    /// # Errors
    ///
    /// Returns [`QuantileError`] if `q` is outside `[0, 1]` (NaN included)
    /// instead of panicking, so callers fed an untrusted quantile (CLI
    /// flags, sweep configs) can report it.
    pub fn latency_quantile(&self, q: f64) -> Result<Ticks, QuantileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(QuantileError { q });
        }
        if self.deliveries.is_empty() {
            return Ok(Ticks::ZERO);
        }
        let mut latencies: Vec<Ticks> = self.deliveries.iter().map(Delivery::latency).collect();
        latencies.sort_unstable();
        let rank = ((q * latencies.len() as f64).ceil() as usize)
            .clamp(1, latencies.len());
        Ok(latencies[rank - 1])
    }

    /// Median, 95th and 99th percentile latencies, for tail reporting.
    pub fn latency_percentiles(&self) -> (Ticks, Ticks, Ticks) {
        let at = |q| {
            self.latency_quantile(q)
                .expect("percentile constants are in range")
        };
        (at(0.50), at(0.95), at(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClassId, Message, MessageId};

    fn delivery(id: u64, source: u32, arrival: u64, deadline: u64, done: u64) -> Delivery {
        Delivery {
            message: Message {
                id: MessageId(id),
                source: SourceId(source),
                class: ClassId(0),
                bits: 100,
                arrival: Ticks(arrival),
                deadline: Ticks(deadline),
            },
            completed_at: Ticks(done),
        }
    }

    fn stats() -> ChannelStats {
        ChannelStats {
            silence_slots: 3,
            collisions: 2,
            busy_ticks: Ticks(500),
            total_ticks: Ticks(1000),
            deliveries: vec![
                delivery(0, 0, 0, 100, 90),    // met, latency 90
                delivery(1, 1, 10, 100, 150),  // missed by 40, latency 140
                delivery(2, 0, 50, 500, 200),  // met, latency 150
            ],
            ..ChannelStats::default()
        }
    }

    #[test]
    fn utilization_is_busy_over_total() {
        assert!((stats().utilization() - 0.5).abs() < 1e-12);
        assert_eq!(ChannelStats::default().utilization(), 0.0);
    }

    #[test]
    fn miss_accounting() {
        let s = stats();
        assert_eq!(s.deadline_misses(), 1);
        assert!((s.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_lateness(), Ticks(40));
    }

    #[test]
    fn latency_accounting() {
        let s = stats();
        assert_eq!(s.max_latency(), Ticks(150));
        assert!((s.mean_latency() - (90.0 + 140.0 + 150.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_source_filters() {
        let s = stats();
        assert_eq!(s.deliveries_from(SourceId(0)).count(), 2);
        assert_eq!(s.max_latency_from(SourceId(1)), Ticks(140));
        assert_eq!(s.max_latency_from(SourceId(9)), Ticks::ZERO);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let s = stats();
        // Sorted latencies: 90, 140, 150.
        assert_eq!(s.latency_quantile(0.0), Ok(Ticks(90)));
        assert_eq!(s.latency_quantile(0.34), Ok(Ticks(140)));
        assert_eq!(s.latency_quantile(0.5), Ok(Ticks(140)));
        assert_eq!(s.latency_quantile(1.0), Ok(Ticks(150)));
        let (p50, p95, p99) = s.latency_percentiles();
        assert_eq!((p50, p95, p99), (Ticks(140), Ticks(150), Ticks(150)));
    }

    #[test]
    fn quantile_rejects_out_of_range_instead_of_panicking() {
        let s = stats();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = s.latency_quantile(bad).unwrap_err();
            assert!(
                err.to_string().contains("quantile must be in [0, 1]"),
                "unexpected error text: {err}"
            );
        }
        // Out-of-range on an empty stats object is still an error, not a
        // silent zero.
        assert!(ChannelStats::default().latency_quantile(2.0).is_err());
    }

    #[test]
    fn quantile_edges_and_empty_deliveries() {
        // Empty deliveries: any in-range quantile is zero.
        let empty = ChannelStats::default();
        assert_eq!(empty.latency_quantile(0.0), Ok(Ticks::ZERO));
        assert_eq!(empty.latency_quantile(0.5), Ok(Ticks::ZERO));
        assert_eq!(empty.latency_quantile(1.0), Ok(Ticks::ZERO));
        // Exact boundary values are in range on populated stats too.
        let s = stats();
        assert_eq!(s.latency_quantile(0.0), Ok(Ticks(90)));
        assert_eq!(s.latency_quantile(1.0), Ok(Ticks(150)));
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = ChannelStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.max_latency(), Ticks::ZERO);
        assert_eq!(s.mean_latency(), 0.0);
    }
}
