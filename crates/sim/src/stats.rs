//! Channel-level statistics and per-run metrics.

use crate::message::{Delivery, Message, SourceId};
use crate::metrics::LatencyHistogram;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by [`ChannelStats::latency_quantile`] for a quantile
/// outside `[0, 1]` (including NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileError {
    /// The offending quantile.
    pub q: f64,
}

impl fmt::Display for QuantileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quantile must be in [0, 1], got {}", self.q)
    }
}

impl std::error::Error for QuantileError {}

/// Aggregate statistics of one simulation run.
///
/// Utilization and overhead follow the paper's accounting: successful
/// transmission time is useful work; collision slots and silence slots are
/// overhead (the quantity `ξ` bounds); the channel is otherwise idle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Slots in which no station transmitted.
    pub silence_slots: u64,
    /// Collision events (each costs one slot under destructive collisions).
    pub collisions: u64,
    /// Ticks spent on successful frame transmission (including the
    /// surviving frame of an arbitrated collision).
    pub busy_ticks: Ticks,
    /// Total simulated time.
    pub total_ticks: Ticks,
    /// Retained completed transmissions, in completion order. With the
    /// default retention policy (`delivery_retention: None`) this is every
    /// delivery; under a cap only the first `cap` are kept, while the
    /// counters and the histogram stay exact. Feed this through
    /// [`ChannelStats::push_delivery`], never `push` directly.
    pub deliveries: Vec<Delivery>,
    /// Exact number of completed transmissions (retention-independent).
    pub delivered: u64,
    /// Exact number of deliveries that missed their hard deadline.
    pub missed_deadlines: u64,
    /// Sum of all delivery latencies, for exact mean latency.
    pub latency_ticks_total: u64,
    /// Worst delivery latency observed.
    pub worst_latency: Ticks,
    /// Worst lateness beyond a deadline observed (zero when all met).
    pub worst_lateness: Ticks,
    /// Log-scale histogram of every delivery latency, for constant-memory
    /// percentile reporting (see [`LatencyHistogram`]).
    pub latency_histogram: LatencyHistogram,
    /// `Some(cap)` keeps only the first `cap` deliveries in
    /// [`ChannelStats::deliveries`]; `None` (default) retains all.
    pub delivery_retention: Option<usize>,
    /// Injected-fault accounting: slots forced to read as collisions.
    pub corrupted_slots: u64,
    /// Injected-fault accounting: frames erased on the wire (CRC loss).
    pub erased_frames: u64,
    /// Injected-fault accounting: station crashes processed.
    pub crashes: u64,
    /// Injected-fault accounting: station restarts processed.
    pub restarts: u64,
    /// Membership accounting: stations that (re-)joined the fabric.
    pub joins: u64,
    /// Membership accounting: stations that left the fabric.
    pub leaves: u64,
    /// Retained messages lost to crashes: queue contents dropped at crash
    /// time plus arrivals addressed to a station while it was down. Subject
    /// to [`ChannelStats::lost_retention`]; [`ChannelStats::lost_total`] is
    /// always exact. Feed through [`ChannelStats::push_lost`].
    pub lost: Vec<Message>,
    /// Exact number of messages lost to crashes (retention-independent).
    pub lost_total: u64,
    /// `Some(cap)` keeps only the first `cap` lost messages in
    /// [`ChannelStats::lost`]; `None` (default) retains all.
    pub lost_retention: Option<usize>,
}

impl ChannelStats {
    /// Channel utilization: fraction of time spent on successful
    /// transmissions.
    pub fn utilization(&self) -> f64 {
        if self.total_ticks == Ticks::ZERO {
            0.0
        } else {
            self.busy_ticks.as_u64() as f64 / self.total_ticks.as_u64() as f64
        }
    }

    /// Records a completed transmission: updates the exact counters and the
    /// latency histogram, and retains the delivery itself subject to
    /// [`ChannelStats::delivery_retention`].
    pub fn push_delivery(&mut self, delivery: Delivery) {
        self.delivered += 1;
        let latency = delivery.latency();
        self.latency_ticks_total += latency.as_u64();
        if latency > self.worst_latency {
            self.worst_latency = latency;
        }
        let lateness = delivery.lateness();
        if lateness > self.worst_lateness {
            self.worst_lateness = lateness;
        }
        if !delivery.deadline_met() {
            self.missed_deadlines += 1;
        }
        self.latency_histogram.record(latency);
        match self.delivery_retention {
            Some(cap) if self.deliveries.len() >= cap => {}
            _ => self.deliveries.push(delivery),
        }
    }

    /// Records a message lost to a crash: exact count always, the message
    /// itself subject to [`ChannelStats::lost_retention`].
    pub fn push_lost(&mut self, message: Message) {
        self.lost_total += 1;
        match self.lost_retention {
            Some(cap) if self.lost.len() >= cap => {}
            _ => self.lost.push(message),
        }
    }

    /// Number of deliveries that missed their hard deadline (exact,
    /// retention-independent).
    pub fn deadline_misses(&self) -> usize {
        self.missed_deadlines as usize
    }

    /// Deadline miss ratio over all deliveries (0 when nothing delivered).
    pub fn miss_ratio(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.missed_deadlines as f64 / self.delivered as f64
        }
    }

    /// Worst observed transmission latency (exact, retention-independent).
    pub fn max_latency(&self) -> Ticks {
        self.worst_latency
    }

    /// Worst observed lateness beyond a deadline (zero when all met).
    pub fn max_lateness(&self) -> Ticks {
        self.worst_lateness
    }

    /// Mean transmission latency (0 when nothing delivered; exact,
    /// retention-independent).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_ticks_total as f64 / self.delivered as f64
        }
    }

    /// Deliveries originating from one source.
    pub fn deliveries_from(&self, source: SourceId) -> impl Iterator<Item = &Delivery> {
        self.deliveries
            .iter()
            .filter(move |d| d.message.source == source)
    }

    /// Worst latency among messages of one source (0 when none).
    pub fn max_latency_from(&self, source: SourceId) -> Ticks {
        self.deliveries_from(source)
            .map(Delivery::latency)
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Latency at quantile `q ∈ [0, 1]` (nearest-rank; 0 when nothing
    /// delivered).
    ///
    /// # Errors
    ///
    /// Returns [`QuantileError`] if `q` is outside `[0, 1]` (NaN included)
    /// instead of panicking, so callers fed an untrusted quantile (CLI
    /// flags, sweep configs) can report it.
    pub fn latency_quantile(&self, q: f64) -> Result<Ticks, QuantileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(QuantileError { q });
        }
        if self.deliveries.is_empty() {
            return Ok(Ticks::ZERO);
        }
        let mut latencies: Vec<Ticks> = self.deliveries.iter().map(Delivery::latency).collect();
        latencies.sort_unstable();
        let rank = ((q * latencies.len() as f64).ceil() as usize)
            .clamp(1, latencies.len());
        Ok(latencies[rank - 1])
    }

    /// Median, 95th and 99th percentile latencies over the retained
    /// deliveries, for tail reporting.
    ///
    /// Equivalent to three [`ChannelStats::latency_quantile`] calls, but
    /// collects and sorts the latency vector once and reads all three ranks
    /// from it (the naive form sorted three times over).
    pub fn latency_percentiles(&self) -> (Ticks, Ticks, Ticks) {
        if self.deliveries.is_empty() {
            return (Ticks::ZERO, Ticks::ZERO, Ticks::ZERO);
        }
        let mut latencies: Vec<Ticks> = self.deliveries.iter().map(Delivery::latency).collect();
        latencies.sort_unstable();
        let len = latencies.len();
        let at = |q: f64| {
            let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
            latencies[rank - 1]
        };
        (at(0.50), at(0.95), at(0.99))
    }

    /// Median, 95th and 99th percentile latencies from the always-on
    /// log-scale histogram: exact over **all** deliveries (not just the
    /// retained ones), at bucket granularity — each value is the upper
    /// bound of the bucket containing the exact nearest-rank quantile.
    pub fn histogram_percentiles(&self) -> (Ticks, Ticks, Ticks) {
        self.latency_histogram.percentiles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClassId, Message, MessageId};

    fn delivery(id: u64, source: u32, arrival: u64, deadline: u64, done: u64) -> Delivery {
        Delivery {
            message: Message {
                id: MessageId(id),
                source: SourceId(source),
                class: ClassId(0),
                bits: 100,
                arrival: Ticks(arrival),
                deadline: Ticks(deadline),
            },
            completed_at: Ticks(done),
        }
    }

    fn stats() -> ChannelStats {
        let mut s = ChannelStats {
            silence_slots: 3,
            collisions: 2,
            busy_ticks: Ticks(500),
            total_ticks: Ticks(1000),
            ..ChannelStats::default()
        };
        s.push_delivery(delivery(0, 0, 0, 100, 90)); // met, latency 90
        s.push_delivery(delivery(1, 1, 10, 100, 150)); // missed by 40, latency 140
        s.push_delivery(delivery(2, 0, 50, 500, 200)); // met, latency 150
        s
    }

    #[test]
    fn utilization_is_busy_over_total() {
        assert!((stats().utilization() - 0.5).abs() < 1e-12);
        assert_eq!(ChannelStats::default().utilization(), 0.0);
    }

    #[test]
    fn miss_accounting() {
        let s = stats();
        assert_eq!(s.deadline_misses(), 1);
        assert!((s.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_lateness(), Ticks(40));
    }

    #[test]
    fn latency_accounting() {
        let s = stats();
        assert_eq!(s.max_latency(), Ticks(150));
        assert!((s.mean_latency() - (90.0 + 140.0 + 150.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_source_filters() {
        let s = stats();
        assert_eq!(s.deliveries_from(SourceId(0)).count(), 2);
        assert_eq!(s.max_latency_from(SourceId(1)), Ticks(140));
        assert_eq!(s.max_latency_from(SourceId(9)), Ticks::ZERO);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let s = stats();
        // Sorted latencies: 90, 140, 150.
        assert_eq!(s.latency_quantile(0.0), Ok(Ticks(90)));
        assert_eq!(s.latency_quantile(0.34), Ok(Ticks(140)));
        assert_eq!(s.latency_quantile(0.5), Ok(Ticks(140)));
        assert_eq!(s.latency_quantile(1.0), Ok(Ticks(150)));
        let (p50, p95, p99) = s.latency_percentiles();
        assert_eq!((p50, p95, p99), (Ticks(140), Ticks(150), Ticks(150)));
    }

    #[test]
    fn quantile_rejects_out_of_range_instead_of_panicking() {
        let s = stats();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = s.latency_quantile(bad).unwrap_err();
            assert!(
                err.to_string().contains("quantile must be in [0, 1]"),
                "unexpected error text: {err}"
            );
        }
        // Out-of-range on an empty stats object is still an error, not a
        // silent zero.
        assert!(ChannelStats::default().latency_quantile(2.0).is_err());
    }

    #[test]
    fn quantile_edges_and_empty_deliveries() {
        // Empty deliveries: any in-range quantile is zero.
        let empty = ChannelStats::default();
        assert_eq!(empty.latency_quantile(0.0), Ok(Ticks::ZERO));
        assert_eq!(empty.latency_quantile(0.5), Ok(Ticks::ZERO));
        assert_eq!(empty.latency_quantile(1.0), Ok(Ticks::ZERO));
        // Exact boundary values are in range on populated stats too.
        let s = stats();
        assert_eq!(s.latency_quantile(0.0), Ok(Ticks(90)));
        assert_eq!(s.latency_quantile(1.0), Ok(Ticks(150)));
    }

    /// Pins the q ∈ {0.0, 1.0, NaN} × total ∈ {0, 1} matrix: boundary
    /// quantiles are exact at every population, NaN is always a typed
    /// error (never a silently saturated rank).
    #[test]
    fn quantile_boundary_matrix_total_zero_and_one() {
        let empty = ChannelStats::default();
        assert_eq!(empty.latency_quantile(0.0), Ok(Ticks::ZERO));
        assert_eq!(empty.latency_quantile(1.0), Ok(Ticks::ZERO));
        assert!(empty.latency_quantile(f64::NAN).unwrap_err().q.is_nan());

        let mut one = ChannelStats::default();
        one.push_delivery(delivery(0, 0, 0, 100, 42)); // single delivery, latency 42
        assert_eq!(one.latency_quantile(0.0), Ok(Ticks(42)));
        assert_eq!(one.latency_quantile(0.5), Ok(Ticks(42)));
        assert_eq!(one.latency_quantile(1.0), Ok(Ticks(42)));
        let err = one.latency_quantile(f64::NAN).unwrap_err();
        assert!(err.q.is_nan());
        // The always-on histogram mirror agrees at the same corners.
        assert!(one.latency_histogram.try_quantile(f64::NAN).is_err());
        assert_eq!(
            one.latency_histogram.quantile(0.0),
            one.latency_histogram.quantile(1.0),
            "total=1: every clamped quantile reads the one bucket"
        );
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = ChannelStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.max_latency(), Ticks::ZERO);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn percentiles_match_individual_quantiles() {
        // The single-sort fast path must agree with three independent
        // latency_quantile calls, across delivery counts that hit every
        // rank-rounding edge (1 element, even, odd, larger sets).
        for n in [1u64, 2, 3, 7, 100, 101] {
            let mut s = ChannelStats::default();
            for i in 0..n {
                // Deliberately non-monotone latencies.
                let latency = (i * 37) % 91 + 1;
                s.push_delivery(delivery(i, 0, 0, 1_000_000, latency));
            }
            let (p50, p95, p99) = s.latency_percentiles();
            assert_eq!(p50, s.latency_quantile(0.50).unwrap(), "n={n}");
            assert_eq!(p95, s.latency_quantile(0.95).unwrap(), "n={n}");
            assert_eq!(p99, s.latency_quantile(0.99).unwrap(), "n={n}");
        }
    }

    #[test]
    fn delivery_retention_caps_the_vec_but_not_the_counters() {
        let mut s = ChannelStats {
            delivery_retention: Some(2),
            ..ChannelStats::default()
        };
        for i in 0..10u64 {
            let met = i % 2 == 0; // half the deliveries miss
            let done = if met { 50 } else { 200 };
            s.push_delivery(delivery(i, 0, 0, 100, done));
        }
        assert_eq!(s.deliveries.len(), 2);
        assert_eq!(s.delivered, 10);
        assert_eq!(s.deadline_misses(), 5);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.max_latency(), Ticks(200));
        assert_eq!(s.max_lateness(), Ticks(100));
        assert!((s.mean_latency() - 125.0).abs() < 1e-12);
        // Histogram percentiles keep working with the vec capped.
        assert_eq!(s.latency_histogram.total(), 10);
        let (p50, _, p99) = s.histogram_percentiles();
        assert!(p50 >= Ticks(50) && p99 >= Ticks(200));
    }

    #[test]
    fn lost_retention_caps_the_vec_but_not_the_count() {
        let mut s = ChannelStats {
            lost_retention: Some(3),
            ..ChannelStats::default()
        };
        for i in 0..8u64 {
            s.push_lost(delivery(i, 0, 0, 100, 0).message);
        }
        assert_eq!(s.lost.len(), 3);
        assert_eq!(s.lost_total, 8);
        // The first three are the ones retained.
        assert_eq!(s.lost.iter().map(|m| m.id.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_retention_retains_nothing_but_counts_everything() {
        let mut s = ChannelStats {
            delivery_retention: Some(0),
            lost_retention: Some(0),
            ..ChannelStats::default()
        };
        s.push_delivery(delivery(0, 0, 0, 100, 90));
        s.push_lost(delivery(1, 0, 0, 100, 0).message);
        assert!(s.deliveries.is_empty());
        assert!(s.lost.is_empty());
        assert_eq!(s.delivered, 1);
        assert_eq!(s.lost_total, 1);
        assert_eq!(s.max_latency(), Ticks(90));
    }
}
