//! Deterministic, seeded fault injection for the broadcast channel.
//!
//! The paper's analysis assumes an ideal medium; real broadcast channels
//! (§3.2 names Ethernet segments and busses internal to ATM nodes) corrupt
//! slots, lose frames to CRC errors, and host stations that crash and come
//! back. A [`FaultPlan`] is an explicit, precomputed schedule of such
//! faults, keyed by **decision-slot ordinal** — the count of decision slots
//! the engine has resolved — so a plan applies bitwise-identically whether
//! the engine steps slot by slot or jumps idle stretches with the
//! fast-forward path (which refuses to skip over a scheduled fault).
//!
//! Plans are either handcrafted ([`FaultPlan::from_events`]) for
//! adversarial checking, or generated from a seed and per-slot rates
//! ([`FaultPlan::generate`]) via the same domain-separated SplitMix64
//! stream every other stochastic component uses — a run under faults is a
//! pure function of `(configuration, workload, seed)`.

use crate::channel::Observation;
use crate::message::Frame;
use crate::rng::fault_seed;
use crate::time::Ticks;
use serde::{Deserialize, Serialize};

/// What kind of fault strikes a decision slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Channel noise: every station perceives the slot as a destructive
    /// collision, whatever actually happened. A transmitter treats it as a
    /// collision and retries; a genuinely busy slot delivers nothing and
    /// costs one slot time (collision detection aborts the transfer).
    CorruptSlot,
    /// CRC loss: if the slot resolves to a decodable frame (a lone
    /// transmission, or the survivor of an arbitrated collision), the
    /// channel is held for the frame's full duration but nothing is
    /// decoded — stations observe [`Observation::Garbled`]. A no-op on
    /// silent and destructively-collided slots.
    EraseFrame,
    /// Station omission failure: the station crashes at the start of the
    /// slot, stays off the channel for `down_slots` decision slots, then
    /// restarts (see [`crate::Station::crash`] / [`crate::Station::restart`]).
    Crash {
        /// Index of the station that fails.
        station: u32,
        /// Decision slots the station stays down before restarting.
        down_slots: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Decision-slot ordinal (0-based count of resolved slots) the fault
    /// strikes at.
    pub slot: u64,
    /// The fault.
    pub kind: FaultKind,
}

/// Per-slot fault probabilities for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultRates {
    /// Probability a slot is corrupted.
    pub corrupt: f64,
    /// Probability a decodable frame in a slot is erased.
    pub erase: f64,
    /// Per-station probability of crashing at a slot (while up).
    pub crash: f64,
    /// Down time of every generated crash, in decision slots.
    pub down_slots: u64,
}

/// What the faults scheduled for one slot did to its resolved outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotFaults {
    /// The slot was forced to read as a destructive collision.
    pub corrupted: bool,
    /// The frame that was erased on the wire, if any.
    pub erased: Option<Frame>,
}

/// A replayable fault schedule: events sorted by slot ordinal.
///
/// # Examples
///
/// ```
/// use ddcr_sim::{FaultEvent, FaultKind, FaultPlan};
///
/// let plan = FaultPlan::from_events(vec![
///     FaultEvent { slot: 3, kind: FaultKind::CorruptSlot },
///     FaultEvent { slot: 0, kind: FaultKind::Crash { station: 1, down_slots: 8 } },
/// ]);
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.next_event_at_or_after(0), Some(0));
/// assert_eq!(plan.next_event_at_or_after(1), Some(3));
/// assert_eq!(plan.next_event_at_or_after(4), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: injects nothing. An engine running under it is
    /// bitwise identical to one with no plan at all (the equivalence test
    /// suite asserts exactly that).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (sorted internally by slot;
    /// within a slot, the given order is kept).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.slot);
        FaultPlan { events }
    }

    /// Generates a plan over `horizon_slots` decision slots from `seed` and
    /// per-slot `rates`, for a network of `stations` stations.
    ///
    /// The draws come from [`fault_seed`]-separated SplitMix64 lanes — one
    /// lane per fault kind — indexed by slot ordinal (and station, for
    /// crashes), so the plan depends only on `(seed, stations,
    /// horizon_slots, rates)`. A station already down is not re-crashed:
    /// generated crash intervals never overlap per station.
    pub fn generate(seed: u64, stations: u32, horizon_slots: u64, rates: &FaultRates) -> Self {
        // Per-lane early-outs: a zero-rate lane can never draw below its
        // threshold, so skip its `unit()` call per slot — and with every
        // lane inert, skip the horizon walk entirely. `ddcr run` and the
        // federation paths call this with all-zero defaults and horizons
        // in the millions of slots; the plan must cost nothing there.
        let draw_corrupt = rates.corrupt > 0.0;
        let draw_erase = rates.erase > 0.0;
        let draw_crash = rates.crash > 0.0 && rates.down_slots > 0;
        if !draw_corrupt && !draw_erase && !draw_crash {
            return FaultPlan::none();
        }
        let corrupt_lane = fault_seed(seed, 0);
        let erase_lane = fault_seed(seed, 1);
        let crash_lane = fault_seed(seed, 2);
        let mut events = Vec::new();
        let mut down_until = vec![0u64; stations as usize];
        for slot in 0..horizon_slots {
            if draw_corrupt && unit(corrupt_lane, slot) < rates.corrupt {
                events.push(FaultEvent {
                    slot,
                    kind: FaultKind::CorruptSlot,
                });
            }
            if draw_erase && unit(erase_lane, slot) < rates.erase {
                events.push(FaultEvent {
                    slot,
                    kind: FaultKind::EraseFrame,
                });
            }
            if draw_crash {
                for station in 0..stations {
                    if down_until[station as usize] > slot {
                        continue;
                    }
                    let draw = unit(crash_lane, slot * u64::from(stations) + u64::from(station));
                    if draw < rates.crash {
                        down_until[station as usize] = slot + rates.down_slots;
                        events.push(FaultEvent {
                            slot,
                            kind: FaultKind::Crash {
                                station,
                                down_slots: rates.down_slots,
                            },
                        });
                    }
                }
            }
        }
        FaultPlan { events }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events, sorted by slot.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The ordinal of the first event at or after `slot`, if any — the
    /// fast-forward path uses this to bound silence jumps so no scheduled
    /// fault is ever skipped over.
    pub fn next_event_at_or_after(&self, slot: u64) -> Option<u64> {
        let i = self.events.partition_point(|e| e.slot < slot);
        self.events.get(i).map(|e| e.slot)
    }

    /// The events scheduled exactly at `slot`.
    pub fn events_at(&self, slot: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.slot < slot);
        let hi = self.events.partition_point(|e| e.slot <= slot);
        &self.events[lo..hi]
    }

    /// The crash events scheduled at `slot`, as `(station, down_slots)`.
    pub fn crashes_at(&self, slot: u64) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.events_at(slot).iter().filter_map(|e| match e.kind {
            FaultKind::Crash {
                station,
                down_slots,
            } => Some((station, down_slots)),
            _ => None,
        })
    }

    /// Applies the channel faults (corruption, erasure — crashes are
    /// handled by the engine loop) scheduled at `slot` to a resolved
    /// observation, returning the faulted observation, the channel time it
    /// consumes, and what happened.
    ///
    /// Corruption wins over erasure when both strike: a corrupted slot
    /// reads as a destructive collision (one slot time), leaving no
    /// decodable frame to erase.
    pub fn apply(
        &self,
        slot: u64,
        slot_ticks: Ticks,
        observation: Observation,
        advance: Ticks,
    ) -> (Observation, Ticks, SlotFaults) {
        let mut faults = SlotFaults::default();
        let events = self.events_at(slot);
        if events.is_empty() {
            return (observation, advance, faults);
        }
        let mut observation = observation;
        let mut advance = advance;
        if events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CorruptSlot))
        {
            faults.corrupted = true;
            observation = Observation::Collision { survivor: None };
            advance = slot_ticks;
        }
        if events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::EraseFrame))
        {
            let decoded = match observation {
                Observation::Busy(f) => Some(f),
                Observation::Collision { survivor } => survivor,
                Observation::Silence | Observation::Garbled => None,
            };
            if let Some(frame) = decoded {
                faults.erased = Some(frame);
                observation = Observation::Garbled;
                advance = frame.duration();
            }
        }
        (observation, advance, faults)
    }
}

/// Caps a fast-forward run so it never crosses a fault transition.
///
/// Every fast-forward tier (idle silence skips, busy runs, contention
/// search runs) shares one fencing rule: a jump of at most `cap` decision
/// slots starting at `slot_ordinal` must stop short of the next scheduled
/// fault event **and** of the earliest pending station restart in `down`
/// (`Some(r)` means the station restarts at ordinal `r`), because the slot
/// a transition strikes must go through the reference stepper. Returns the
/// fenced cap; with an empty plan nothing can be down (crashes only
/// originate from the plan) and `cap` passes through untouched.
pub(crate) fn fence_cap(
    plan: &FaultPlan,
    down: &[Option<u64>],
    slot_ordinal: u64,
    cap: u64,
) -> u64 {
    if plan.is_empty() {
        return cap;
    }
    let mut wake = plan.next_event_at_or_after(slot_ordinal);
    for &restart in down.iter().flatten() {
        wake = Some(wake.map_or(restart, |w| w.min(restart)));
    }
    match wake {
        Some(w) => cap.min(w.saturating_sub(slot_ordinal)),
        None => cap,
    }
}

/// Uniform draw in `[0, 1)` from a SplitMix64 lane at an index.
fn unit(lane: u64, index: u64) -> f64 {
    (crate::rng::derive_seed(lane, index) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClassId, Message, MessageId, SourceId};

    fn frame(bits: u64) -> Frame {
        Frame::new(
            Message {
                id: MessageId(0),
                source: SourceId(0),
                class: ClassId(0),
                bits,
                arrival: Ticks(0),
                deadline: Ticks(1_000),
            },
            bits + 208,
        )
    }

    #[test]
    fn events_sorted_and_queryable() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent { slot: 9, kind: FaultKind::EraseFrame },
            FaultEvent { slot: 2, kind: FaultKind::CorruptSlot },
            FaultEvent { slot: 2, kind: FaultKind::EraseFrame },
        ]);
        assert_eq!(plan.events_at(2).len(), 2);
        assert_eq!(plan.events_at(3).len(), 0);
        assert_eq!(plan.next_event_at_or_after(3), Some(9));
        assert_eq!(plan.next_event_at_or_after(10), None);
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let (obs, adv, f) = plan.apply(0, Ticks(512), Observation::Busy(frame(1000)), Ticks(1208));
        assert_eq!(obs, Observation::Busy(frame(1000)));
        assert_eq!(adv, Ticks(1208));
        assert_eq!(f, SlotFaults::default());
    }

    #[test]
    fn corruption_forces_destructive_collision() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            slot: 4,
            kind: FaultKind::CorruptSlot,
        }]);
        let (obs, adv, f) =
            plan.apply(4, Ticks(512), Observation::Busy(frame(1000)), Ticks(1208));
        assert_eq!(obs, Observation::Collision { survivor: None });
        assert_eq!(adv, Ticks(512));
        assert!(f.corrupted);
        assert!(f.erased.is_none());
        // Other slots untouched.
        let (obs, ..) = plan.apply(5, Ticks(512), Observation::Silence, Ticks(512));
        assert_eq!(obs, Observation::Silence);
    }

    #[test]
    fn erasure_garbles_busy_and_survivor_slots_only() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::EraseFrame,
        }]);
        let f = frame(1000);
        let (obs, adv, sf) = plan.apply(0, Ticks(512), Observation::Busy(f), f.duration());
        assert_eq!(obs, Observation::Garbled);
        assert_eq!(adv, f.duration(), "channel still held for the frame");
        assert_eq!(sf.erased, Some(f));
        // Arbitrated survivor erased too.
        let (obs, adv, _) = plan.apply(
            0,
            Ticks(512),
            Observation::Collision { survivor: Some(f) },
            f.duration(),
        );
        assert_eq!(obs, Observation::Garbled);
        assert_eq!(adv, f.duration());
        // No-op on silence and destructive collisions.
        let (obs, ..) = plan.apply(0, Ticks(512), Observation::Silence, Ticks(512));
        assert_eq!(obs, Observation::Silence);
        let (obs, ..) = plan.apply(
            0,
            Ticks(512),
            Observation::Collision { survivor: None },
            Ticks(512),
        );
        assert_eq!(obs, Observation::Collision { survivor: None });
    }

    #[test]
    fn corruption_wins_over_erasure() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent { slot: 0, kind: FaultKind::EraseFrame },
            FaultEvent { slot: 0, kind: FaultKind::CorruptSlot },
        ]);
        let (obs, adv, sf) =
            plan.apply(0, Ticks(512), Observation::Busy(frame(1000)), Ticks(1208));
        assert_eq!(obs, Observation::Collision { survivor: None });
        assert_eq!(adv, Ticks(512));
        assert!(sf.corrupted && sf.erased.is_none());
    }

    #[test]
    fn generation_is_deterministic_and_rate_scaled() {
        let rates = FaultRates {
            corrupt: 0.01,
            erase: 0.02,
            crash: 0.001,
            down_slots: 50,
        };
        let a = FaultPlan::generate(42, 4, 10_000, &rates);
        let b = FaultPlan::generate(42, 4, 10_000, &rates);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4, 10_000, &rates);
        assert_ne!(a, c, "different seed, different plan");
        // Counts in the statistical ballpark (wide tolerances; the draws
        // are fixed by the seed, so this cannot flake).
        let corrupt = a
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::CorruptSlot)
            .count();
        assert!((30..300).contains(&corrupt), "corrupt events: {corrupt}");
    }

    #[test]
    fn zero_rates_generate_nothing() {
        let plan = FaultPlan::generate(7, 8, 100_000, &FaultRates::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn zero_rates_skip_the_horizon_walk_entirely() {
        // Regression: an all-zero plan must cost O(1), not O(horizon).
        // This horizon would take years to walk slot by slot; the test
        // only terminates because `generate` early-outs.
        let plan = FaultPlan::generate(7, 1024, u64::MAX / 2, &FaultRates::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn single_active_lane_matches_full_generation() {
        // The per-lane guards must not perturb the draws of lanes that
        // remain active: a corrupt-only plan generated alongside inert
        // erase/crash lanes is exactly the corrupt subset of a plan where
        // every lane is live (lanes are seed-separated and independent).
        let all = FaultRates {
            corrupt: 0.01,
            erase: 0.02,
            crash: 0.001,
            down_slots: 50,
        };
        let corrupt_only = FaultRates {
            corrupt: 0.01,
            ..FaultRates::default()
        };
        let full = FaultPlan::generate(99, 16, 50_000, &all);
        let partial = FaultPlan::generate(99, 16, 50_000, &corrupt_only);
        assert!(!partial.is_empty());
        let expected: Vec<FaultEvent> = full
            .events()
            .iter()
            .copied()
            .filter(|e| matches!(e.kind, FaultKind::CorruptSlot))
            .collect();
        assert_eq!(partial.events(), expected.as_slice());
    }

    #[test]
    fn fence_cap_passes_through_with_empty_plan() {
        // No plan means no faults and nothing down: the cap is untouched.
        assert_eq!(fence_cap(&FaultPlan::none(), &[], 0, u64::MAX), u64::MAX);
        assert_eq!(fence_cap(&FaultPlan::none(), &[None, None], 7, 42), 42);
    }

    #[test]
    fn fence_cap_stops_short_of_the_next_scheduled_event() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent { slot: 10, kind: FaultKind::CorruptSlot },
            FaultEvent { slot: 30, kind: FaultKind::EraseFrame },
        ]);
        // From ordinal 4 the run may cover slots 4..10 only.
        assert_eq!(fence_cap(&plan, &[None], 4, u64::MAX), 6);
        // A tighter caller cap wins.
        assert_eq!(fence_cap(&plan, &[None], 4, 3), 3);
        // A fault due right now fences the run to zero slots.
        assert_eq!(fence_cap(&plan, &[None], 10, u64::MAX), 0);
        // Past the event, the next one fences.
        assert_eq!(fence_cap(&plan, &[None], 11, u64::MAX), 19);
        // Past every event, the cap passes through.
        assert_eq!(fence_cap(&plan, &[None], 31, 9), 9);
    }

    #[test]
    fn fence_cap_stops_short_of_a_pending_restart() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            slot: 0,
            kind: FaultKind::Crash { station: 0, down_slots: 20 },
        }]);
        // The scheduled event at slot 0 is behind us; only the restart at
        // ordinal 20 fences.
        assert_eq!(fence_cap(&plan, &[Some(20), None], 5, u64::MAX), 15);
        // The earliest of restart and event wins.
        let plan2 = FaultPlan::from_events(vec![
            FaultEvent { slot: 0, kind: FaultKind::Crash { station: 0, down_slots: 20 } },
            FaultEvent { slot: 12, kind: FaultKind::CorruptSlot },
        ]);
        assert_eq!(fence_cap(&plan2, &[Some(20), None], 5, u64::MAX), 7);
        assert_eq!(fence_cap(&plan2, &[Some(9), None], 5, u64::MAX), 4);
        // A restart due at or before the current ordinal fences to zero.
        assert_eq!(fence_cap(&plan, &[Some(5)], 5, u64::MAX), 0);
    }

    #[test]
    fn generated_crashes_never_overlap_per_station() {
        let rates = FaultRates {
            corrupt: 0.0,
            erase: 0.0,
            crash: 0.05,
            down_slots: 30,
        };
        let plan = FaultPlan::generate(1, 2, 5_000, &rates);
        let mut down_until = [0u64; 2];
        let mut crashes = 0;
        for e in plan.events() {
            if let FaultKind::Crash { station, down_slots } = e.kind {
                assert!(
                    e.slot >= down_until[station as usize],
                    "station {station} re-crashed while down at slot {}",
                    e.slot
                );
                down_until[station as usize] = e.slot + down_slots;
                crashes += 1;
            }
        }
        assert!(crashes > 0, "rate 0.05 over 5000 slots produced no crash");
    }
}
