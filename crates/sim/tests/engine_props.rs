//! Property-based tests of the simulation engine's channel contract.

use ddcr_sim::{
    Action, ClassId, CollisionMode, Engine, Frame, MediumConfig, Message, MessageId,
    Observation, SourceId, Station, Ticks, Trace, TraceEvent,
};
use proptest::prelude::*;

/// A scripted station: transmits at exactly the decision-slot ordinals it
/// was given (a deterministic way to explore weird interleavings).
#[derive(Debug)]
struct Scripted {
    source: SourceId,
    transmit_on: Vec<u64>,
    slot: u64,
    queue: Vec<Message>,
}

impl Scripted {
    fn new(source: SourceId, transmit_on: Vec<u64>, messages: usize) -> Self {
        let queue = (0..messages)
            .map(|i| Message {
                id: MessageId(u64::from(source.0) * 1000 + i as u64),
                source,
                class: ClassId(0),
                bits: 1_000,
                arrival: Ticks::ZERO,
                deadline: Ticks(u64::MAX / 2),
            })
            .collect();
        Scripted {
            source,
            transmit_on,
            slot: 0,
            queue,
        }
    }
}

impl Station for Scripted {
    fn deliver(&mut self, message: Message) {
        self.queue.push(message);
    }

    fn poll(&mut self, _now: Ticks) -> Action {
        let fire = self.transmit_on.contains(&self.slot);
        self.slot += 1;
        match (fire, self.queue.first()) {
            (true, Some(&m)) => Action::Transmit(Frame::new(m, m.bits + 208)),
            _ => Action::Idle,
        }
    }

    fn observe(&mut self, _now: Ticks, _next_free: Ticks, observation: &Observation) {
        let winner = match observation {
            Observation::Busy(f) => Some(f.message.id),
            Observation::Collision { survivor: Some(f) } => Some(f.message.id),
            _ => None,
        };
        if winner.is_some() && self.queue.first().map(|m| m.id) == winner {
            self.queue.remove(0);
        }
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn label(&self) -> String {
        format!("scripted:{}", self.source)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Channel conservation: whatever the stations do, the trace is a
    /// sequence of non-overlapping transmissions, time only advances, and
    /// busy-tick accounting equals the sum of delivered frame durations.
    #[test]
    fn channel_invariants_hold_for_arbitrary_scripts(
        scripts in prop::collection::vec(
            prop::collection::vec(0u64..64, 0..12),
            1..5,
        ),
        arbitrating in any::<bool>(),
    ) {
        let medium = MediumConfig {
            slot_ticks: 512,
            overhead_bits: 208,
            collision_mode: if arbitrating {
                CollisionMode::Arbitrating
            } else {
                CollisionMode::Destructive
            },
        };
        let mut engine = Engine::new(medium).unwrap();
        engine.set_trace(Trace::enabled());
        for (i, script) in scripts.iter().enumerate() {
            engine.add_station(Box::new(Scripted::new(
                SourceId(i as u32),
                script.clone(),
                4,
            )));
        }
        engine.run_until(Ticks(512 * 80));
        let stats = engine.stats();

        // Busy accounting.
        let wire_total: u64 = stats.deliveries.iter().map(|d| d.message.bits + 208).sum();
        prop_assert_eq!(stats.busy_ticks, Ticks(wire_total));

        // Non-overlap + monotone time in the trace.
        let mut last = Ticks::ZERO;
        let mut in_flight = false;
        for e in engine.trace().events() {
            let is_tx_end = matches!(e, TraceEvent::TxEnd { .. });
            prop_assert!(e.at() >= last || is_tx_end);
            match e {
                TraceEvent::TxStart { at, .. } => {
                    prop_assert!(!in_flight);
                    in_flight = true;
                    last = *at;
                }
                TraceEvent::TxEnd { at, .. } => {
                    in_flight = false;
                    last = *at;
                }
                TraceEvent::Silence { at }
                | TraceEvent::Collision { at, .. }
                | TraceEvent::Garbled { at, .. } => {
                    prop_assert!(!in_flight);
                    last = *at;
                }
                // Membership annotations occupy no channel time.
                TraceEvent::Joined { .. } | TraceEvent::Left { .. } => {}
            }
        }

        // Deliveries never exceed queued messages.
        prop_assert!(stats.deliveries.len() <= scripts.len() * 4);
    }

    /// In arbitrating mode, every collision's survivor is the lowest
    /// transmitting source (bit-dominance), and destructive mode never has
    /// survivors.
    #[test]
    fn arbitration_picks_lowest_source(
        fire_both in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        for arbitrating in [false, true] {
            let medium = MediumConfig {
                slot_ticks: 512,
                overhead_bits: 208,
                collision_mode: if arbitrating {
                    CollisionMode::Arbitrating
                } else {
                    CollisionMode::Destructive
                },
            };
            let slots: Vec<u64> = fire_both
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as u64)
                .collect();
            let mut engine = Engine::new(medium).unwrap();
            engine.set_trace(Trace::enabled());
            engine.add_station(Box::new(Scripted::new(SourceId(0), slots.clone(), 32)));
            engine.add_station(Box::new(Scripted::new(SourceId(1), slots.clone(), 32)));
            engine.run_until(Ticks(512 * 40));
            for e in engine.trace().events() {
                if let TraceEvent::Collision { survivor, .. } = e {
                    if arbitrating {
                        // Survivor ids are source 0's (ids < 1000).
                        prop_assert!(survivor.is_some());
                        prop_assert!(survivor.unwrap().0 < 1000);
                    } else {
                        prop_assert!(survivor.is_none());
                    }
                }
            }
        }
    }
}
