//! # ddcr-bench — experiment and figure-regeneration harness
//!
//! Shared infrastructure for the experiment binaries (`fig1`, `fig2`,
//! `exp_*`) that regenerate every figure and quantitative claim of the
//! paper, and for the Criterion benches. See `DESIGN.md` (per-experiment
//! index) and `EXPERIMENTS.md` (paper-vs-measured record) at the repository
//! root.

#![warn(missing_docs)]

pub mod enginebench;
pub mod harness;
pub mod json;
pub mod report;
pub mod sweep;

/// The directory experiment binaries write CSV results into, created on
/// demand (`results/` under the workspace root or current directory).
///
/// # Panics
///
/// Panics if the directory cannot be created — experiment binaries cannot
/// do anything useful without a results sink.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("cannot create results/ directory");
    dir
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_creatable() {
        let dir = super::results_dir();
        assert!(dir.is_dir());
    }
}
