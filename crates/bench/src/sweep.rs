//! Parallel deterministic sweep runner.
//!
//! Experiment binaries drive grids of `(protocol, scenario, seed)` runs.
//! Each run is an independent, deterministic simulation, so a sweep
//! parallelises perfectly — *provided* nothing about the result depends on
//! scheduling. This module guarantees that by construction:
//!
//! * every job's RNG seed is derived from `(master_seed, job_index)` via
//!   [`ddcr_sim::rng::job_seed`] — never from worker identity or clock;
//! * jobs are pulled from a shared counter by a pool of
//!   `crossbeam`-scoped worker threads and results are reassembled **in
//!   job order** on the fan-in channel;
//! * shared read-only state (the `ξ_k^t` tables of [`ddcr_tree::cache`])
//!   is memoized behind a lock, and a pure function of the tree shape.
//!
//! Consequently a sweep's outcome vector is bitwise identical for any
//! worker count (`--jobs 1` vs `--jobs 8`), which the integration tests
//! assert. Wall-clock and cache hit/miss counters are recorded per job —
//! those *do* vary run to run and are reported separately from the
//! deterministic [`RunSummary`] payload.
//!
//! Two layers:
//!
//! * [`run_indexed`] — generic fan-out of `count` indexed jobs over the
//!   pool; each job closure gets a [`JobContext`] (index + derived seed)
//!   and may return any `Send` value.
//! * [`SweepGrid`] — a grid of protocol-comparison jobs returning
//!   [`RunSummary`]s, the common case for the `exp_*` binaries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ddcr_sim::{MediumConfig, Message, Ticks};
use ddcr_traffic::MessageSet;
use ddcr_tree::cache::{self, CacheStats};

use crate::harness::{run_protocol, ProtocolKind, RunSummary};

/// Worker-pool configuration for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Master seed every job seed is derived from.
    pub master_seed: u64,
}

impl SweepConfig {
    /// A config with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn new(workers: usize, master_seed: u64) -> Self {
        SweepConfig {
            workers: workers.max(1),
            master_seed,
        }
    }

    /// Resolves the worker count like the `exp_*` binaries do: an explicit
    /// `--jobs` value wins, then the `DDCR_JOBS` environment variable,
    /// then all available cores.
    #[must_use]
    pub fn resolve(jobs_flag: Option<usize>, master_seed: u64) -> Self {
        let workers = jobs_flag
            .or_else(|| std::env::var("DDCR_JOBS").ok().and_then(|s| s.parse().ok()))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        SweepConfig::new(workers, master_seed)
    }
}

/// Scans raw process arguments for a `--jobs N` pair (the experiment
/// binaries take no other flags, so a full parser is not warranted).
#[must_use]
pub fn jobs_flag_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find_map(|pair| {
        if pair[0] == "--jobs" {
            pair[1].parse().ok()
        } else {
            None
        }
    })
}

/// Per-job inputs handed to a job closure.
#[derive(Debug, Clone, Copy)]
pub struct JobContext {
    /// Position of this job in the grid (also its reassembly key).
    pub index: usize,
    /// Seed derived from `(master_seed, index)` — the only randomness a
    /// job may use if the sweep is to stay reproducible.
    pub seed: u64,
}

/// One completed job: its deterministic value plus performance metadata.
#[derive(Debug, Clone)]
pub struct JobOutcome<T> {
    /// Grid position.
    pub index: usize,
    /// The derived job seed (for reproducing this job alone).
    pub seed: u64,
    /// Wall-clock time this job took on its worker.
    pub wall: Duration,
    /// Search-time-table cache traffic attributed to this job.
    pub cache: CacheStats,
    /// The job's return value.
    pub value: T,
}

/// A completed sweep, outcomes in job order.
#[derive(Debug, Clone)]
pub struct IndexedReport<T> {
    /// One entry per job, index order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// End-to-end wall-clock for the whole sweep.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl<T> IndexedReport<T> {
    /// Total cache traffic across all jobs.
    #[must_use]
    pub fn cache_totals(&self) -> CacheStats {
        self.outcomes.iter().fold(CacheStats::default(), |acc, o| CacheStats {
            hits: acc.hits + o.cache.hits,
            misses: acc.misses + o.cache.misses,
        })
    }

    /// Sum of per-job wall-clock times (the sequential-equivalent cost;
    /// divide by [`Self::wall_clock`] for the observed speedup).
    #[must_use]
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// One-line performance summary for experiment stdout.
    #[must_use]
    pub fn perf_line(&self) -> String {
        let cache = self.cache_totals();
        format!(
            "sweep: {} jobs on {} workers, wall {:.2}s, cpu {:.2}s (speedup {:.2}x), table cache {} hits / {} misses",
            self.outcomes.len(),
            self.workers,
            self.wall_clock.as_secs_f64(),
            self.cpu_time().as_secs_f64(),
            self.cpu_time().as_secs_f64() / self.wall_clock.as_secs_f64().max(1e-9),
            cache.hits,
            cache.misses,
        )
    }
}

/// Fans `count` jobs out over a worker pool and reassembles results in
/// job order.
///
/// The closure runs once per index with that job's [`JobContext`]. Worker
/// threads pull indices from a shared counter, so completion order is
/// arbitrary — but the output vector is ordered by index and every seed
/// is a pure function of `(master_seed, index)`, making the value part of
/// the report independent of `config.workers`.
///
/// # Panics
///
/// Propagates the first job panic (after the scope joins all workers).
pub fn run_indexed<T, F>(config: SweepConfig, count: usize, job: F) -> IndexedReport<T>
where
    T: Send,
    F: Fn(JobContext) -> T + Sync,
{
    let started = Instant::now();
    let workers = config.workers.min(count.max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<JobOutcome<T>>();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move |_| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let context = JobContext {
                    index,
                    seed: ddcr_sim::rng::job_seed(config.master_seed, index as u64),
                };
                let cache_before = cache::thread_stats();
                let job_started = Instant::now();
                let value = job(context);
                let outcome = JobOutcome {
                    index,
                    seed: context.seed,
                    wall: job_started.elapsed(),
                    cache: cache::thread_stats().since(cache_before),
                    value,
                };
                if tx.send(outcome).is_err() {
                    break;
                }
            });
        }
    })
    .unwrap_or_else(|_| panic!("a sweep worker panicked"));
    drop(tx);

    let mut slots: Vec<Option<JobOutcome<T>>> = (0..count).map(|_| None).collect();
    for outcome in rx.iter() {
        let index = outcome.index;
        slots[index] = Some(outcome);
    }
    let outcomes: Vec<JobOutcome<T>> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no outcome")))
        .collect();

    IndexedReport {
        outcomes,
        wall_clock: started.elapsed(),
        workers,
    }
}

/// One cell of a protocol-comparison grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Scenario label carried into reports and CSV.
    pub label: String,
    /// Protocol to run. Stochastic protocols (CSMA-CD) are reseeded with
    /// the derived job seed, so the grid's results depend only on
    /// `(master_seed, job_index)`.
    pub kind: ProtocolKind,
    /// The traffic contract the engine is assembled from.
    pub set: MessageSet,
    /// Concrete arrivals to replay.
    pub schedule: Vec<Message>,
    /// Channel model.
    pub medium: MediumConfig,
    /// Give-up horizon.
    pub budget: Ticks,
}

/// A grid of protocol-comparison jobs.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    jobs: Vec<SweepJob>,
}

impl SweepGrid {
    /// An empty grid.
    #[must_use]
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Appends one job.
    pub fn push(&mut self, job: SweepJob) {
        self.jobs.push(job);
    }

    /// Appends one job per protocol kind over a shared workload — the
    /// common "compare protocols on this scenario" cell block.
    pub fn push_comparison(
        &mut self,
        label: &str,
        kinds: &[ProtocolKind],
        set: &MessageSet,
        schedule: &[Message],
        medium: MediumConfig,
        budget: Ticks,
    ) {
        for kind in kinds {
            self.push(SweepJob {
                label: label.to_owned(),
                kind: kind.clone(),
                set: set.clone(),
                schedule: schedule.to_vec(),
                medium,
                budget,
            });
        }
    }

    /// Number of jobs in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the grid on the worker pool. Results come back in job order;
    /// the deterministic part ([`SweepOutcome::summary`]) is bitwise
    /// independent of `config.workers`.
    #[must_use]
    pub fn run(&self, config: SweepConfig) -> SweepReport {
        let report = run_indexed(config, self.jobs.len(), |context| {
            let job = &self.jobs[context.index];
            run_protocol(
                &job.kind.with_seed(context.seed),
                &job.set,
                &job.schedule,
                job.medium,
                job.budget,
            )
        });
        let wall_clock = report.wall_clock;
        let workers = report.workers;
        let outcomes = report
            .outcomes
            .into_iter()
            .map(|outcome| SweepOutcome {
                index: outcome.index,
                label: self.jobs[outcome.index].label.clone(),
                protocol: self.jobs[outcome.index].kind.name(),
                seed: outcome.seed,
                wall: outcome.wall,
                cache: outcome.cache,
                summary: outcome.value,
            })
            .collect();
        SweepReport {
            outcomes,
            wall_clock,
            workers,
        }
    }
}

/// One completed protocol-comparison job.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Grid position.
    pub index: usize,
    /// Scenario label from the job.
    pub label: String,
    /// Protocol name (as reported in CSV).
    pub protocol: String,
    /// Derived job seed.
    pub seed: u64,
    /// Wall-clock on the worker (non-deterministic; excluded from the
    /// determinism guarantee).
    pub wall: Duration,
    /// Table-cache traffic attributed to this job (depends on job
    /// interleaving; excluded from the determinism guarantee).
    pub cache: CacheStats,
    /// The run's deterministic result.
    pub summary: Result<RunSummary, String>,
}

/// A completed protocol sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per job, in job order.
    pub outcomes: Vec<SweepOutcome>,
    /// End-to-end wall-clock.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl SweepReport {
    /// The deterministic summaries in job order, or the first job error.
    ///
    /// # Errors
    ///
    /// Returns the first failed job's message (in job order).
    pub fn summaries(&self) -> Result<Vec<RunSummary>, String> {
        self.outcomes.iter().map(|o| o.summary.clone()).collect()
    }

    /// Total cache traffic across all jobs.
    #[must_use]
    pub fn cache_totals(&self) -> CacheStats {
        self.outcomes.iter().fold(CacheStats::default(), |acc, o| CacheStats {
            hits: acc.hits + o.cache.hits,
            misses: acc.misses + o.cache.misses,
        })
    }

    /// Sum of per-job wall-clock times (sequential-equivalent cost).
    #[must_use]
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// One-line performance summary for experiment stdout.
    #[must_use]
    pub fn perf_line(&self) -> String {
        let cache = self.cache_totals();
        format!(
            "sweep: {} jobs on {} workers, wall {:.2}s, cpu {:.2}s (speedup {:.2}x), table cache {} hits / {} misses",
            self.outcomes.len(),
            self.workers,
            self.wall_clock.as_secs_f64(),
            self.cpu_time().as_secs_f64(),
            self.cpu_time().as_secs_f64() / self.wall_clock.as_secs_f64().max(1e-9),
            cache.hits,
            cache.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_baseline::QueueDiscipline;
    use ddcr_traffic::{scenario, ScheduleBuilder};

    fn tiny_grid() -> SweepGrid {
        let medium = MediumConfig::ethernet();
        let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.2).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(2_000_000)).unwrap();
        let kinds = [
            ProtocolKind::Ddcr(crate::harness::default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 7),
            ProtocolKind::NpEdf,
        ];
        let mut grid = SweepGrid::new();
        grid.push_comparison("uniform", &kinds, &set, &schedule, medium, Ticks(1_000_000_000));
        grid
    }

    #[test]
    fn results_are_identical_for_any_worker_count() {
        let grid = tiny_grid();
        let one = grid.run(SweepConfig::new(1, 99)).summaries().unwrap();
        let four = grid.run(SweepConfig::new(4, 99)).summaries().unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn job_seeds_depend_on_index_not_workers() {
        let config_a = SweepConfig::new(1, 5);
        let config_b = SweepConfig::new(3, 5);
        let a = run_indexed(config_a, 6, |ctx| ctx.seed);
        let b = run_indexed(config_b, 6, |ctx| ctx.seed);
        let seeds_a: Vec<u64> = a.outcomes.iter().map(|o| o.value).collect();
        let seeds_b: Vec<u64> = b.outcomes.iter().map(|o| o.value).collect();
        assert_eq!(seeds_a, seeds_b);
        let mut unique = seeds_a.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds_a.len(), "job seeds must be distinct");
    }

    #[test]
    fn outcomes_come_back_in_job_order() {
        let report = run_indexed(SweepConfig::new(4, 0), 32, |ctx| ctx.index * 10);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert_eq!(outcome.value, i * 10);
        }
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let report = run_indexed(SweepConfig::new(64, 0), 3, |ctx| ctx.index);
        assert_eq!(report.workers, 3);
        assert_eq!(report.outcomes.len(), 3);
    }

    #[test]
    fn resolve_prefers_flag_over_env() {
        let config = SweepConfig::resolve(Some(5), 1);
        assert_eq!(config.workers, 5);
        let config = SweepConfig::new(0, 1);
        assert_eq!(config.workers, 1, "zero workers clamps to one");
    }

    #[test]
    fn grid_reseeds_stochastic_protocols_per_job() {
        let grid = tiny_grid();
        let report = grid.run(SweepConfig::new(2, 123));
        // The CSMA-CD job (index 1) must have been reseeded with its
        // derived job seed, not the literal 7 from the grid.
        assert_eq!(report.outcomes[1].seed, ddcr_sim::rng::job_seed(123, 1));
        for outcome in &report.outcomes {
            assert!(outcome.summary.is_ok());
        }
    }
}
