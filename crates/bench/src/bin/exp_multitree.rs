//! **Experiment E5 — Eq. (16)–(19), problem P2**: the multi-tree bound.
//!
//! Sweeps `(u, v)` instances, computes the exact optimum of Eq. (16) by
//! dynamic programming and the paper's asymptotic solution
//! `v·ξ̃_{u/v}^t = ξ̃_u^{tv} − (v−1)/(m−1)` (Eq. 18), and verifies Eq. (19)
//! (the bound dominates) plus the Eq. (18) identity between the two closed
//! forms. Writes `results/exp_multitree.csv`.

use ddcr_bench::report::{ascii_chart, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_tree::{multi::MultiTreeProblem, TreeShape};

fn main() {
    let shape = TreeShape::new(4, 3).expect("64-leaf quaternary tree (q = 64)");
    let mut csv = Csv::create(
        &results_dir().join("exp_multitree.csv"),
        &["t", "m", "u", "v", "exact", "bound", "overestimate_pct", "witness"],
    )
    .expect("create csv");

    println!("E5 — P2: worst-case search over v consecutive 64-leaf quaternary trees");
    println!(
        "{:>5} {:>3} {:>8} {:>10} {:>8} {:>16}",
        "u", "v", "exact", "bound", "over%", "worst split"
    );
    let mut exact_pts = Vec::new();
    let mut bound_pts = Vec::new();
    let mut all_dominated = true;
    let mut identity_ok = true;

    for v in [1u64, 2, 4, 8] {
        for u_mult in [2u64, 4, 8, 16, 32] {
            let u = v * u_mult;
            if u > shape.leaves() * v {
                continue;
            }
            let p = MultiTreeProblem::new(shape, u, v).expect("feasible instance");
            // Cached lookups: the second `exact_optimum_cached` (for the
            // witness) hits the memo instead of re-running the DP.
            let optimum = p.exact_optimum_cached().expect("dp");
            let exact = optimum.total;
            let bound = p.bound_cached();
            let over = 100.0 * (bound - exact as f64) / exact as f64;
            all_dominated &= bound + 1e-9 >= exact as f64;
            identity_ok &=
                (bound - p.bound_big_tree_form()).abs() <= 1e-9 * bound.abs().max(1.0);
            let witness = p.exact_optimum_cached().expect("dp").parts.clone();
            println!(
                "{:>5} {:>3} {:>8} {:>10.2} {:>8.2} {:>16}",
                u,
                v,
                exact,
                bound,
                over,
                format!("{witness:?}")
            );
            csv.row(&[
                shape.leaves().to_string(),
                shape.branching().to_string(),
                u.to_string(),
                v.to_string(),
                exact.to_string(),
                format!("{bound:.4}"),
                format!("{over:.4}"),
                format!("{witness:?}").replace(',', ";"),
            ])
            .expect("row");
            if v == 4 {
                exact_pts.push((u as f64, exact as f64));
                bound_pts.push((u as f64, bound));
            }
        }
    }
    csv.finish().expect("flush");

    println!();
    println!(
        "{}",
        ascii_chart(
            "v = 4 trees: exact optimum (e) vs P2 bound (b) over u",
            &[
                Series::new("e exact", exact_pts),
                Series::new("b bound", bound_pts),
            ],
            60,
            14,
        )
    );
    println!(
        "Eq. 19 (bound dominates exact optimum): {}",
        if all_dominated { "REPRODUCED" } else { "FAILED" }
    );
    println!(
        "Eq. 18 identity v·xi~_{{u/v}}^t = xi~_u^{{tv}} − (v−1)/(m−1): {}",
        if identity_ok { "REPRODUCED" } else { "FAILED" }
    );
    assert!(all_dominated && identity_ok);
    println!("wrote results/exp_multitree.csv");
}
