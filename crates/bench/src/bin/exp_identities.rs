//! **Experiment E3 — Eq. (4)–(8) and Eq. (15)**: numerically regenerates
//! every named identity of §4.1 across a sweep of tree shapes and verifies
//! each against the exact DP of Eq. (1). Writes `results/exp_identities.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_tree::{closed_form, exact, floor_log, TreeShape};

fn main() {
    let shapes: Vec<TreeShape> = [
        (2u64, 4u32),
        (2, 6),
        (2, 8),
        (3, 3),
        (3, 4),
        (4, 2),
        (4, 3),
        (5, 2),
        (8, 2),
        (9, 2),
    ]
    .iter()
    .map(|&(m, n)| TreeShape::new(m, n).expect("valid shape"))
    .collect();

    let mut csv = Csv::create(
        &results_dir().join("exp_identities.csv"),
        &["m", "t", "identity", "lhs", "rhs", "holds"],
    )
    .expect("create csv");
    let mut all_hold = true;
    println!("E3 — identities Eq. (4)-(8), (15) vs exact DP (Eq. 1)");
    println!("{:>3} {:>6} {:<28} {:>10} {:>10} {:>6}", "m", "t", "identity", "lhs", "rhs", "holds");

    for &shape in &shapes {
        let m = shape.branching();
        let t = shape.leaves();
        let table = exact::SearchTimeTable::compute(shape).expect("table");
        let mut check = |name: &str, lhs: i64, rhs: i64| {
            let holds = lhs == rhs;
            all_hold &= holds;
            println!("{m:>3} {t:>6} {name:<28} {lhs:>10} {rhs:>10} {holds:>6}");
            csv.row(&[
                m.to_string(),
                t.to_string(),
                name.to_owned(),
                lhs.to_string(),
                rhs.to_string(),
                holds.to_string(),
            ])
            .expect("write row");
        };

        // Eq. 5: ξ_2^t = m·log_m(t) − 1.
        check(
            "eq5_xi2",
            table.xi(2).unwrap() as i64,
            closed_form::xi_two(shape) as i64,
        );
        // Eq. 6: peak value at k = 2t/m.
        check(
            "eq6_peak",
            table.xi(closed_form::peak_k(shape)).unwrap() as i64,
            closed_form::xi_peak(shape) as i64,
        );
        // Eq. 7: full activity.
        check(
            "eq7_full",
            table.xi(t).unwrap() as i64,
            closed_form::xi_full(shape) as i64,
        );
        // Eq. 4 (single level) or Eq. 8 (derivative) — spot checks.
        if shape.height() == 1 {
            let p = m / 2;
            if p >= 1 {
                check(
                    "eq4_single_level",
                    table.xi(2 * p).unwrap() as i64,
                    (1 + m - 2 * p) as i64,
                );
            }
        } else {
            let mut worst = true;
            for p in 1..(t / 2) {
                let lhs = table.xi(2 * p + 2).unwrap() as i64 - table.xi(2 * p).unwrap() as i64;
                let rhs =
                    m as i64 * (i64::from(shape.height()) - i64::from(floor_log(m, m * p))) - 2;
                worst &= lhs == rhs;
            }
            check("eq8_derivative_all_p", i64::from(worst), 1);
        }
        // Eq. 15: linear tail over [2t/m, t].
        let mut tail = true;
        for k in (2 * t / m)..=t {
            tail &= table.xi(k).unwrap() == closed_form::xi_tail(shape, k).unwrap();
        }
        check("eq15_tail_all_k", i64::from(tail), 1);
        // Eq. 3: odd staircase.
        let mut odd = true;
        for p in 1..t.div_ceil(2) {
            odd &= table.xi(2 * p + 1).unwrap() == table.xi(2 * p).unwrap() - 1;
        }
        check("eq3_odd_staircase", i64::from(odd), 1);
    }
    csv.finish().expect("flush");
    println!();
    println!(
        "all identities: {}",
        if all_hold { "REPRODUCED" } else { "FAILED" }
    );
    assert!(all_hold);
    println!("wrote results/exp_identities.csv");
}
