//! **Experiment E1 — Fig. 1 of the paper**: worst-case search times for a
//! 64-leaf balanced quaternary tree.
//!
//! Regenerates the two curves of the figure — the exact `ξ_k^64` (m = 4)
//! and its concave asymptotic upper bound `ξ̃_k^64` — for `k ∈ [0, 64]`,
//! prints the series, renders an ASCII rendition of the figure and writes
//! `results/fig1.csv`.

use ddcr_bench::report::{ascii_chart, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_tree::{asymptotic, closed_form, exact, TreeShape};

fn main() {
    let shape = TreeShape::new(4, 3).expect("64-leaf quaternary tree");
    let table = exact::SearchTimeTable::compute(shape).expect("table for 64 leaves");

    let mut exact_pts = Vec::new();
    let mut tilde_pts = Vec::new();
    let mut csv = Csv::create(&results_dir().join("fig1.csv"), &["k", "xi_exact", "xi_tilde"])
        .expect("create fig1.csv");

    println!("Fig. 1 — worst-case search times, 64-leaf balanced quaternary tree (m = 4)");
    println!("{:>4} {:>10} {:>12}", "k", "xi_k^64", "xi~_k^64");
    for k in 0..=64u64 {
        let xi = table.xi(k).expect("k in range");
        let tilde = if k >= 2 {
            asymptotic::xi_tilde(shape, k as f64)
        } else {
            f64::NAN
        };
        exact_pts.push((k as f64, xi as f64));
        if k >= 2 {
            tilde_pts.push((k as f64, tilde));
        }
        let tilde_cell = if tilde.is_nan() {
            "-".to_owned()
        } else {
            format!("{tilde:.2}")
        };
        println!("{k:>4} {xi:>10} {tilde_cell:>12}");
        csv.row(&[k.to_string(), xi.to_string(), tilde_cell])
            .expect("write row");
    }
    csv.finish().expect("flush fig1.csv");

    println!();
    println!(
        "{}",
        ascii_chart(
            "xi (x) vs asymptotic bound (~), k = 0..64",
            &[
                Series::new("x exact", exact_pts.clone()),
                Series::new("~ bound", tilde_pts.clone()),
            ],
            64,
            20,
        )
    );

    // The figure's qualitative content, checked numerically:
    let peak_k = closed_form::peak_k(shape);
    println!("peak of exact curve at k = 2t/m = {peak_k}: xi = {}", closed_form::xi_peak(shape));
    println!("xi_2 = {} (Eq. 5), xi_64 = {} (Eq. 7)", closed_form::xi_two(shape), closed_form::xi_full(shape));
    let max_gap = asymptotic::max_gap(shape).expect("gap measurement");
    println!(
        "max (xi~ - xi) over even k in [2, 2t/m] = {:.2} slots = {:.2}% of t \
         (paper's Eq. 13/14 envelope bound: c(4)·t = {:.2}% of t, universal 9.54%)",
        max_gap.max_gap_even,
        100.0 * max_gap.max_gap_even / shape.leaves() as f64,
        100.0 * asymptotic::tightness_coefficient(4)
    );
    println!(
        "max over all k (odd staircase included): {:.2} slots = {:.2}% of t",
        max_gap.max_gap,
        100.0 * max_gap.relative_to_t
    );
    println!("wrote results/fig1.csv");
}
