//! **Experiment E7 — §4.3 feasibility conditions, validated end to end.**
//!
//! The paper's correctness claim is: if
//! `B_DDCR(s_i, M) ≤ d(M)` for every class `M`, then no message ever
//! misses its deadline under CSMA/DDCR — against *any* arrival pattern
//! within the declared density bounds. This experiment:
//!
//! 1. sweeps HRTDM instances (sources × load × deadline);
//! 2. evaluates the feasibility conditions analytically;
//! 3. runs the **adversarial peak-load workload** (the worst pattern the
//!    bounds allow) through the full protocol simulation;
//! 4. checks that measured worst-case latency never exceeds `B_DDCR` and
//!    that FC-positive instances have **zero** deadline misses.
//!
//! Writes `results/exp_fc_validation.csv`.

use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_core::{feasibility, StaticAllocation};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() {
    let medium = MediumConfig::ethernet();
    let mut csv = Csv::create(
        &results_dir().join("exp_fc_validation.csv"),
        &[
            "z",
            "load",
            "deadline_ms",
            "bound_ticks",
            "deadline_ticks",
            "fc_feasible",
            "measured_max_latency",
            "bound_ratio",
            "misses",
            "fc_sound",
        ],
    )
    .expect("create csv");

    println!("E7 — feasibility conditions vs adversarial peak-load simulation");
    println!(
        "{:>2} {:>5} {:>6} {:>12} {:>12} {:>9} {:>12} {:>7} {:>7} {:>6}",
        "z", "load", "d(ms)", "B_DDCR", "d(ticks)", "feasible", "max_lat", "ratio", "misses", "sound"
    );

    let mut all_sound = true;
    let mut any_feasible = false;
    let mut any_infeasible = false;

    for z in [2u32, 4, 8] {
        for load in [0.05f64, 0.15, 0.3, 0.5] {
            for deadline_ms in [1u64, 5, 20] {
                let deadline = Ticks(deadline_ms * 1_000_000);
                let set = scenario::uniform(z, 8_000, deadline, load).expect("scenario");
                let config = default_ddcr_config(&set, &medium);
                let allocation =
                    StaticAllocation::round_robin(config.static_tree, z).expect("allocation");
                let report = feasibility::evaluate(&set, &config, &allocation, &medium)
                    .expect("feasibility");
                let tightest = report.tightest().expect("non-empty").clone();
                let feasible = report.feasible();
                any_feasible |= feasible;
                any_infeasible |= !feasible;

                // Adversarial run: peak-load bursts over several windows.
                let horizon = Ticks(set.classes()[0].density.w.as_u64() * 4);
                let schedule = ScheduleBuilder::peak_load(&set).build(horizon).expect("schedule");
                let summary = run_protocol(
                    &ProtocolKind::Ddcr(config),
                    &set,
                    &schedule,
                    medium,
                    Ticks(60_000_000_000),
                )
                .expect("run");
                assert!(summary.completed, "peak-load run must drain");

                let ratio = summary.max_latency as f64 / tightest.bound;
                // Soundness: if FC says feasible, the simulation must show
                // zero misses AND stay under the bound.
                let sound = !feasible
                    || (summary.misses == 0 && (summary.max_latency as f64) <= tightest.bound);
                all_sound &= sound;
                println!(
                    "{:>2} {:>5.2} {:>6} {:>12.0} {:>12} {:>9} {:>12} {:>7.3} {:>7} {:>6}",
                    z,
                    load,
                    deadline_ms,
                    tightest.bound,
                    deadline.as_u64(),
                    feasible,
                    summary.max_latency,
                    ratio,
                    summary.misses,
                    sound
                );
                csv.row(&[
                    z.to_string(),
                    load.to_string(),
                    deadline_ms.to_string(),
                    format!("{:.0}", tightest.bound),
                    deadline.as_u64().to_string(),
                    feasible.to_string(),
                    summary.max_latency.to_string(),
                    format!("{ratio:.4}"),
                    summary.misses.to_string(),
                    sound.to_string(),
                ])
                .expect("row");
            }
        }
    }
    csv.finish().expect("flush");

    println!();
    println!(
        "sweep covered both verdicts: feasible={any_feasible}, infeasible={any_infeasible}"
    );
    println!(
        "FC soundness (feasible => zero misses and latency <= B_DDCR): {}",
        if all_sound { "REPRODUCED" } else { "VIOLATED" }
    );
    assert!(all_sound, "a feasible instance missed a deadline or broke its bound");
    assert!(any_feasible && any_infeasible, "sweep should straddle the feasibility frontier");
    println!("wrote results/exp_fc_validation.csv");
}
