//! **Experiment E6 — §4.1 closing claim**: "optimal m is derived from the
//! general expression of ξ_k^t".
//!
//! For several deployment sizes (minimum leaf counts), scores every
//! candidate branching degree by its worst-case and aggregate search
//! times and reports the winner. Reproduces and generalises the Fig. 2
//! binary-vs-quaternary comparison.
//!
//! The deployment sizes run as a deterministic parallel sweep (`--jobs N`
//! / `DDCR_JOBS`). Candidate shapes repeat across sizes (e.g. `m = 8`
//! rounds up to `t = 64` for both 16 and 64 minimum leaves), so the
//! shared [`ddcr_tree::cache`] computes each ξ table once per process —
//! the cache-hit counter in the stats CSV must be non-zero. Writes
//! `results/exp_optimal_m.csv` plus `results/exp_optimal_m_sweep_stats.csv`.

use ddcr_bench::report::{write_indexed_stats, Csv};
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{jobs_flag_from_args, run_indexed, SweepConfig};
use ddcr_tree::optimal;

fn main() {
    let candidates = [2u64, 3, 4, 5, 8, 16];
    let mut csv = Csv::create(
        &results_dir().join("exp_optimal_m.csv"),
        &["min_leaves", "m", "t", "max_xi", "sum_xi", "xi_two", "winner"],
    )
    .expect("create csv");

    println!("E6 — optimal branching degree per deployment size");
    let sizes = [16u64, 64, 256, 1024];
    let labels: Vec<String> = sizes.iter().map(|s| format!("min_leaves={s}")).collect();
    let report = run_indexed(
        SweepConfig::resolve(jobs_flag_from_args(), 6),
        sizes.len(),
        |ctx| {
            let min_leaves = sizes[ctx.index];
            optimal::compare_branching_degrees(min_leaves, &candidates, min_leaves)
                .expect("scores")
        },
    );

    for (outcome, &min_leaves) in report.outcomes.iter().zip(&sizes) {
        let scores = &outcome.value;
        let best = optimal::best_by_worst_case(scores).expect("non-empty");
        println!("\n>= {min_leaves} leaves (k up to {min_leaves}):");
        println!(
            "{:>3} {:>7} {:>9} {:>10} {:>8} {:>7}",
            "m", "t", "max_xi", "sum_xi", "xi_2", "winner"
        );
        for s in scores {
            let winner = s.shape == best.shape;
            println!(
                "{:>3} {:>7} {:>9} {:>10} {:>8} {:>7}",
                s.shape.branching(),
                s.shape.leaves(),
                s.max_xi,
                s.sum_xi,
                s.xi_two,
                if winner { "<-- " } else { "" }
            );
            csv.row(&[
                min_leaves.to_string(),
                s.shape.branching().to_string(),
                s.shape.leaves().to_string(),
                s.max_xi.to_string(),
                s.sum_xi.to_string(),
                s.xi_two.to_string(),
                winner.to_string(),
            ])
            .expect("row");
        }
    }
    csv.finish().expect("flush");
    write_indexed_stats(
        &results_dir().join("exp_optimal_m_sweep_stats.csv"),
        &labels,
        &report,
    )
    .expect("sweep stats");
    println!("\n{}", report.perf_line());

    // Shapes recur across deployment sizes, so the process-wide table
    // cache must have been hit at least once.
    assert!(
        report.cache_totals().hits > 0,
        "expected repeated shapes to hit the shared table cache"
    );

    // Fig. 2's specific instance: 64 leaves, quaternary beats binary.
    let scores = optimal::compare_branching_degrees(64, &[2, 4], 64).expect("scores");
    assert!(
        scores[1].max_xi <= scores[0].max_xi && scores[1].sum_xi <= scores[0].sum_xi,
        "Fig. 2 winner should be quaternary"
    );
    println!("Fig. 2 instance (64 leaves): quaternary dominates binary — REPRODUCED");
    println!("wrote results/exp_optimal_m.csv");
}
