//! Perf-gate comparator: validates `BENCH_engine.json` against the schema
//! and thresholds in [`ddcr_bench::enginebench::check_report`].
//!
//! ```text
//! bench_check [report-path]
//! ```
//!
//! Exit status 0 when the gate passes, 1 with one line per violation when
//! it does not (missing file, malformed JSON, schema mismatch, idle
//! speedup below the 2x floor, loaded speedup below the 5x floor at load
//! 0.5 or 0.8 on >= 32 stations, a contention fast-forward section that
//! diverged or whose tier never engaged, a station-scale section that
//! diverged, failed to complete, or scaled below the 5x floor at >= 2048
//! stations, divergent fast/reference
//! statistics, incomplete drains, a multichannel section that diverged
//! across worker counts, missed deadlines, lost its pinned capacity win,
//! or — on hosts with >= 4 cores — scaled below the 2x floor, and a
//! federation section that diverged across worker counts, broke the
//! N=1 ≡ single-bus identity, bridged no traffic, or scaled below its
//! own 2x floor on hosts with >= 4 cores).
//! `scripts/bench_check` wraps this binary for CI.

use ddcr_bench::enginebench::{check_report, REPORT_PATH};
use ddcr_bench::json::Json;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| REPORT_PATH.to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_check: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let violations = check_report(&doc);
    if violations.is_empty() {
        let idle_speedup = doc
            .get("idle_fast_forward")
            .and_then(|i| i.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        // Headline the gated loaded entries (>= 32 stations at load 0.5
        // and 0.8) and the isolated contention tier.
        let loaded_speedup_at = |lo: f64, hi: f64| {
            doc.get("loaded_fast_forward")
                .and_then(Json::as_array)
                .and_then(|entries| {
                    entries
                        .iter()
                        .find(|e| {
                            e.get("stations").and_then(Json::as_f64).unwrap_or(0.0) >= 32.0
                                && (lo..=hi).contains(
                                    &e.get("load").and_then(Json::as_f64).unwrap_or(0.0),
                                )
                        })
                        .and_then(|e| e.get("speedup"))
                        .and_then(Json::as_f64)
                })
                .unwrap_or(f64::NAN)
        };
        let loaded_speedup = loaded_speedup_at(0.45, 0.55);
        let high_load_speedup = loaded_speedup_at(0.75, 0.85);
        let contention_speedup = doc
            .get("contention_fast_forward")
            .and_then(|c| c.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        // Headline the largest station-scale grid point.
        let (scale_stations, scale_speedup) = doc
            .get("station_scale")
            .and_then(Json::as_array)
            .and_then(|entries| entries.last())
            .map_or((f64::NAN, f64::NAN), |e| {
                (
                    e.get("stations").and_then(Json::as_f64).unwrap_or(f64::NAN),
                    e.get("speedup").and_then(Json::as_f64).unwrap_or(f64::NAN),
                )
            });
        let multichannel = doc.get("multichannel");
        let multichannel_speedup = multichannel
            .and_then(|m| m.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let host = multichannel
            .and_then(|m| m.get("host_parallelism"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let federation = doc.get("federation");
        let federation_speedup = federation
            .and_then(|m| m.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let handoffs = federation
            .and_then(|m| m.get("handoffs"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        println!(
            "bench_check: PASS ({path}; idle fast-forward {idle_speedup:.1}x, \
             loaded fast-forward {loaded_speedup:.1}x @0.5 / {high_load_speedup:.1}x @0.8, \
             contention tier {contention_speedup:.1}x, \
             active set {scale_speedup:.1}x at {scale_stations:.0} stations, \
             multichannel {multichannel_speedup:.1}x on {host:.0} cores, \
             federation {federation_speedup:.1}x with {handoffs:.0} handoffs)"
        );
    } else {
        for violation in &violations {
            eprintln!("bench_check: FAIL: {violation}");
        }
        std::process::exit(1);
    }
}
