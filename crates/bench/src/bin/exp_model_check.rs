//! **Experiment E15 — bounded exhaustive verification** (the "correctness
//! proofs" of the paper's title, made executable).
//!
//! Enumerates *every* scenario in two finite universes and checks the
//! protocol's claimed properties on each: liveness (drains), exactly-once
//! delivery, causality, replica consistency at every slot, and strict
//! NP-EDF delivery order whenever the scenario qualifies. A clean run is
//! an exhaustive proof over the scope (no sampling). Writes
//! `results/exp_model_check.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_check::{check_scope, Scope};
use std::time::Instant;

fn main() {
    let mut csv = Csv::create(
        &results_dir().join("exp_model_check.csv"),
        &["scope", "stations", "messages", "scenarios", "edf_checked", "violations", "seconds"],
    )
    .expect("create csv");

    println!("E15 — bounded exhaustive model check of CSMA/DDCR");
    println!(
        "{:<8} {:>8} {:>9} {:>10} {:>12} {:>11} {:>8}",
        "scope", "stations", "messages", "scenarios", "edf checked", "violations", "seconds"
    );
    for (name, scope) in [("small", Scope::small()), ("medium", Scope::medium())] {
        let start = Instant::now();
        let report = check_scope(&scope, 5_000);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>8} {:>9} {:>10} {:>12} {:>11} {:>8.2}",
            name,
            scope.stations,
            scope.messages,
            report.scenarios,
            report.edf_checked,
            report.findings.len(),
            secs
        );
        csv.row(&[
            name.to_owned(),
            scope.stations.to_string(),
            scope.messages.to_string(),
            report.scenarios.to_string(),
            report.edf_checked.to_string(),
            report.findings.len().to_string(),
            format!("{secs:.3}"),
        ])
        .expect("row");
        for f in report.findings.iter().take(5) {
            println!("  VIOLATION scenario {}: {:?}", f.scenario_index, f.violation);
        }
        assert!(report.clean(), "{name} scope found violations");
    }
    csv.finish().expect("flush");
    println!();
    println!("every enumerated scenario satisfies all five properties: VERIFIED");
    println!("wrote results/exp_model_check.csv");
}
