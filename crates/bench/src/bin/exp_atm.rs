//! **Experiment E10 — §3.2/§5 ATM variant**: CSMA/DDCR over a bus internal
//! to an ATM node — tiny slot time (a few bit times) and **non-destructive
//! collisions** (bit-level arbitration, exclusive-OR logic at the bus
//! level) — versus the Ethernet-like destructive medium.
//!
//! The paper claims the ATM analysis follows from the Ethernet one with
//! cheaper collisions; here both media run the *same* protocol code, so
//! the experiment isolates the medium: search overhead (slots × slot time)
//! collapses and every collision slot doubles as a useful transmission.
//! Writes `results/exp_atm.csv`.

use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() {
    // ATM cells: 48-byte payloads, 5-byte header (the medium's overhead).
    let z = 8u32;
    let deadline = Ticks(200_000); // 200 µs
    let set = scenario::uniform(z, 48 * 8, deadline, 0.5).expect("scenario");
    let horizon = Ticks(set.classes()[0].density.w.as_u64() * 16);
    let schedule = ScheduleBuilder::peak_load(&set).build(horizon).expect("schedule");

    let media = [
        ("ethernet-destructive", MediumConfig::ethernet()),
        ("atm-arbitrating", MediumConfig::atm_internal_bus()),
        (
            "atm-destructive",
            MediumConfig {
                collision_mode: ddcr_sim::CollisionMode::Destructive,
                ..MediumConfig::atm_internal_bus()
            },
        ),
    ];

    let mut csv = Csv::create(
        &results_dir().join("exp_atm.csv"),
        &[
            "medium",
            "slot_ticks",
            "misses",
            "mean_latency",
            "max_latency",
            "collisions",
            "utilization",
            "makespan",
        ],
    )
    .expect("create csv");

    println!("E10 — CSMA/DDCR on Ethernet vs ATM internal bus ({z} sources, 48-byte cells)");
    println!(
        "{:<22} {:>6} {:>7} {:>12} {:>12} {:>11} {:>7} {:>12}",
        "medium", "slot", "misses", "mean_lat", "max_lat", "collisions", "util", "makespan"
    );

    let mut results = Vec::new();
    for (name, medium) in media {
        let config = default_ddcr_config(&set, &medium);
        let summary = run_protocol(
            &ProtocolKind::Ddcr(config),
            &set,
            &schedule,
            medium,
            Ticks(60_000_000_000),
        )
        .expect("run");
        assert!(summary.completed, "{name} did not drain");
        println!(
            "{:<22} {:>6} {:>7} {:>12.0} {:>12} {:>11} {:>7.3} {:>12}",
            name,
            medium.slot_ticks,
            summary.misses,
            summary.mean_latency,
            summary.max_latency,
            summary.collisions,
            summary.utilization,
            summary.total_ticks
        );
        csv.row(&[
            name.to_owned(),
            medium.slot_ticks.to_string(),
            summary.misses.to_string(),
            format!("{:.1}", summary.mean_latency),
            summary.max_latency.to_string(),
            summary.collisions.to_string(),
            format!("{:.4}", summary.utilization),
            summary.total_ticks.to_string(),
        ])
        .expect("row");
        results.push((name, summary));
    }
    csv.finish().expect("flush");

    let ethernet = &results[0].1;
    let atm_arb = &results[1].1;
    let atm_destr = &results[2].1;
    println!();
    println!(
        "mean latency: ethernet {:.0} -> atm-destructive {:.0} -> atm-arbitrating {:.0} ticks",
        ethernet.mean_latency, atm_destr.mean_latency, atm_arb.mean_latency
    );
    // Expected shape: the small-slot ATM bus slashes search overhead; the
    // arbitrating mode is at least as good as destructive on the same bus.
    assert!(
        atm_destr.mean_latency < ethernet.mean_latency,
        "small slot time should cut mean latency"
    );
    assert!(
        atm_arb.mean_latency <= atm_destr.mean_latency + 1.0,
        "arbitration should not hurt"
    );
    println!("expected shape (slot time dominates search overhead; arbitration helps): REPRODUCED");
    println!("wrote results/exp_atm.csv");
}
