//! Runs the engine hot-path benchmark suite and writes the perf-gate
//! report `BENCH_engine.json` at the workspace root.
//!
//! ```text
//! bench_engine [smoke|full] [output-path]
//! ```
//!
//! Defaults: `smoke` profile, `BENCH_engine.json`. Pair with `bench_check`
//! (or `scripts/bench_check`) to enforce the thresholds. Run from the
//! workspace root so the report lands next to `Cargo.toml`, where CI and
//! the documentation expect it.

use ddcr_bench::enginebench::{run_suite, Profile, REPORT_PATH};

fn main() {
    let mut args = std::env::args().skip(1);
    let profile = match args.next() {
        None => Profile::Smoke,
        Some(arg) => Profile::from_arg(&arg).unwrap_or_else(|e| {
            eprintln!("bench_engine: {e}");
            std::process::exit(2);
        }),
    };
    let path = args.next().unwrap_or_else(|| REPORT_PATH.to_owned());

    eprintln!("bench_engine: running {profile:?} profile ...");
    let report = run_suite(profile);
    let idle = &report.idle;
    eprintln!(
        "bench_engine: idle fast-forward {}x ({} slots: fast {:.1} ms, reference {:.1} ms, equivalent={})",
        format_args!("{:.1}", idle.speedup()),
        idle.slots,
        idle.fast_wall_ns as f64 / 1e6,
        idle.reference_wall_ns as f64 / 1e6,
        idle.equivalent,
    );
    for loaded in &report.loaded {
        eprintln!(
            "bench_engine: loaded fast-forward z={} load={:.1}: {}x ({} slots, {} msgs: fast {:.1} ms, reference {:.1} ms, equivalent={}, completed={})",
            loaded.stations,
            loaded.load,
            format_args!("{:.1}", loaded.speedup()),
            loaded.slots,
            loaded.messages,
            loaded.fast_wall_ns as f64 / 1e6,
            loaded.reference_wall_ns as f64 / 1e6,
            loaded.equivalent,
            loaded.completed,
        );
    }
    for drain in &report.drains {
        eprintln!(
            "bench_engine: drain {} z={} load={:.1}: {:.0} Mtick/s, delivered {} (completed={})",
            drain.protocol,
            drain.stations,
            drain.load,
            drain.sim_ticks as f64 * 1e3 / drain.wall_ns.max(1) as f64,
            drain.delivered,
            drain.completed,
        );
    }
    let federation = &report.federation;
    eprintln!(
        "bench_engine: federation {} segments x {} workers: {}x ({} handoffs over {} rounds, equivalent={}, n1_identical={}, completed={})",
        federation.segments,
        federation.workers,
        format_args!("{:.1}", federation.speedup()),
        federation.handoffs,
        federation.rounds,
        federation.equivalent,
        federation.n1_identical,
        federation.completed,
    );
    eprintln!(
        "bench_engine: edf queue {:.1} Mops/s",
        report.queue.operations as f64 * 1e3 / report.queue.wall_ns.max(1) as f64
    );

    let json = report.to_json().to_pretty();
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("bench_engine: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench_engine: wrote {path}");
}
