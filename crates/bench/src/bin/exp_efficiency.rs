//! **Experiment E13 — §3.1 channel efficiency**: "theoretical work …
//! established that tree protocols achieve channel utilization ratios that
//! are very close to theoretical upper bounds".
//!
//! Two complementary measurements:
//!
//! 1. **Analytic saturation efficiency** via the exact average-case table
//!    ([`ddcr_tree::average`]): with `k` always-backlogged stations and
//!    frames of `L` slot times, useful/total = `k·L / (k·L + A_t(k))`.
//! 2. **Simulated saturation throughput** of the full CSMA/DDCR protocol:
//!    all stations permanently backlogged, measured channel utilization.
//!
//! Expected shape: efficiency grows with frame size and stays within a
//! few percent of 1 for Ethernet-scale frames — far above the classical
//! slotted-ALOHA 1/e. The analytic figure is per search round (k uniformly
//! random leaves); the protocol under sustained backlog amortizes searches
//! over ν_i messages per source and can exceed it.
//! Writes `results/exp_efficiency.csv`.

use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_bench::report::{ascii_chart, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};
use ddcr_tree::{average::ExpectedSearchTable, SearchTimeTable, TreeShape};

fn main() {
    let shape = TreeShape::new(4, 3).expect("64-leaf quaternary");
    let avg = ExpectedSearchTable::compute(shape).expect("average table");
    let worst = SearchTimeTable::compute(shape).expect("worst table");
    let mut csv = Csv::create(
        &results_dir().join("exp_efficiency.csv"),
        &[
            "k",
            "frame_slots",
            "analytic_avg_efficiency",
            "analytic_worst_efficiency",
            "simulated_utilization",
        ],
    )
    .expect("create csv");

    println!("E13 — channel efficiency of tree-based resolution (64-leaf quaternary tree)");
    println!(
        "{:>3} {:>12} {:>14} {:>15} {:>14}",
        "k", "frame_slots", "avg analytic", "worst analytic", "simulated"
    );

    let medium = MediumConfig::ethernet();
    let mut avg_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for k in [2u64, 4, 8, 16, 32] {
        for frame_slots in [2.0f64, 8.0, 23.0] {
            let eff_avg = avg.efficiency(k, frame_slots).expect("k in range");
            let worst_slots = worst.xi(k).expect("k in range") as f64;
            let eff_worst =
                k as f64 * frame_slots / (k as f64 * frame_slots + worst_slots);

            // Simulation: k stations, saturated with back-to-back bursts of
            // frames of ~frame_slots slot times each, measured utilization.
            let bits = (frame_slots * medium.slot_ticks as f64) as u64
                - medium.overhead_bits.min((frame_slots as u64) * 100);
            let sim_util = if frame_slots == 23.0 {
                let set = scenario::uniform(k as u32, bits, Ticks(1_000_000_000), 0.999)
                    .expect("scenario");
                let schedule = ScheduleBuilder::peak_load(&set)
                    .build(Ticks(40_000_000))
                    .expect("schedule");
                let summary = run_protocol(
                    &ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
                    &set,
                    &schedule,
                    medium,
                    Ticks(400_000_000_000),
                )
                .expect("run");
                Some(summary.utilization)
            } else {
                None
            };

            println!(
                "{:>3} {:>12} {:>14.4} {:>15.4} {:>14}",
                k,
                frame_slots,
                eff_avg,
                eff_worst,
                sim_util.map_or("-".into(), |u| format!("{u:.4}"))
            );
            csv.row(&[
                k.to_string(),
                frame_slots.to_string(),
                format!("{eff_avg:.6}"),
                format!("{eff_worst:.6}"),
                sim_util.map_or("-".into(), |u| format!("{u:.6}")),
            ])
            .expect("row");
            if frame_slots == 23.0 {
                avg_pts.push((k as f64, eff_avg));
                if let Some(u) = sim_util {
                    sim_pts.push((k as f64, u));
                }
            }
        }
    }
    csv.finish().expect("flush");

    println!();
    println!(
        "{}",
        ascii_chart(
            "saturation efficiency vs k (frames of 23 slots = 1500B on Ethernet)",
            &[Series::new("a analytic", avg_pts.clone()), Series::new("s simulated", sim_pts.clone())],
            56,
            12,
        )
    );
    // Shape: efficiency far above slotted-ALOHA's 1/e at Ethernet frame
    // sizes. The analytic number is for ONE search round isolating k
    // uniformly random leaves; the full protocol amortizes better under
    // sustained backlogs (a static tree search drains up to ν_i messages
    // per source), so the simulated utilization may exceed the per-round
    // average — both must sit well above 0.85 and below 1.
    for &(k, eff) in &avg_pts {
        assert!(eff > 0.8, "analytic efficiency at k={k} unexpectedly low: {eff}");
    }
    for &(k, sim) in &sim_pts {
        assert!(
            sim > 0.85 && sim < 1.0,
            "simulated utilization at k={k} out of expected band: {sim}"
        );
    }
    println!("§3.1 shape (tree resolution keeps the channel nearly always useful): REPRODUCED");
    println!("wrote results/exp_efficiency.csv");
}
