//! **Experiment E13 — §3.1 channel efficiency**: "theoretical work …
//! established that tree protocols achieve channel utilization ratios that
//! are very close to theoretical upper bounds".
//!
//! Two complementary measurements:
//!
//! 1. **Analytic saturation efficiency** via the exact average-case table
//!    ([`ddcr_tree::average`]): with `k` always-backlogged stations and
//!    frames of `L` slot times, useful/total = `k·L / (k·L + A_t(k))`.
//! 2. **Simulated saturation throughput** of the full CSMA/DDCR protocol:
//!    all stations permanently backlogged, measured channel utilization.
//!
//! Expected shape: efficiency grows with frame size and stays within a
//! few percent of 1 for Ethernet-scale frames — far above the classical
//! slotted-ALOHA 1/e. The analytic figure is per search round (k uniformly
//! random leaves); the protocol under sustained backlog amortizes searches
//! over ν_i messages per source and can exceed it.
//!
//! Runs the `(k, frame)` grid as a deterministic parallel sweep
//! (`--jobs N` / `DDCR_JOBS`); every cell reads the shared ξ / A tables
//! through [`ddcr_tree::cache`], so the worst-case and average tables for
//! the 64-leaf quaternary shape are computed exactly once per process
//! regardless of the worker count. Writes `results/exp_efficiency.csv`
//! plus `results/exp_efficiency_sweep_stats.csv`.

use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_bench::report::{ascii_chart, write_indexed_stats, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{jobs_flag_from_args, run_indexed, SweepConfig};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};
use ddcr_tree::{cache, TreeShape};

struct Cell {
    k: u64,
    frame_slots: f64,
    eff_avg: f64,
    eff_worst: f64,
    sim_util: Option<f64>,
}

fn main() {
    let shape = TreeShape::new(4, 3).expect("64-leaf quaternary");
    let mut csv = Csv::create(
        &results_dir().join("exp_efficiency.csv"),
        &[
            "k",
            "frame_slots",
            "analytic_avg_efficiency",
            "analytic_worst_efficiency",
            "simulated_utilization",
        ],
    )
    .expect("create csv");

    println!("E13 — channel efficiency of tree-based resolution (64-leaf quaternary tree)");
    println!(
        "{:>3} {:>12} {:>14} {:>15} {:>14}",
        "k", "frame_slots", "avg analytic", "worst analytic", "simulated"
    );

    let medium = MediumConfig::ethernet();
    let grid: Vec<(u64, f64)> = [2u64, 4, 8, 16, 32]
        .into_iter()
        .flat_map(|k| [2.0f64, 8.0, 23.0].into_iter().map(move |f| (k, f)))
        .collect();
    let labels: Vec<String> = grid
        .iter()
        .map(|(k, f)| format!("k={k}/frame={f}"))
        .collect();

    // Every job pulls both tables from the process-wide cache: the first
    // toucher computes them, the other 14 cells hit.
    let report = run_indexed(
        SweepConfig::resolve(jobs_flag_from_args(), 13),
        grid.len(),
        |ctx| {
            let (k, frame_slots) = grid[ctx.index];
            let avg = cache::global().expected(shape).expect("average table");
            let worst = cache::global().worst_case(shape).expect("worst table");
            let eff_avg = avg.efficiency(k, frame_slots).expect("k in range");
            let worst_slots = worst.xi(k).expect("k in range") as f64;
            let eff_worst = k as f64 * frame_slots / (k as f64 * frame_slots + worst_slots);

            // Simulation: k stations, saturated with back-to-back bursts of
            // frames of ~frame_slots slot times each, measured utilization.
            let bits = (frame_slots * medium.slot_ticks as f64) as u64
                - medium.overhead_bits.min((frame_slots as u64) * 100);
            let sim_util = if frame_slots == 23.0 {
                let set = scenario::uniform(k as u32, bits, Ticks(1_000_000_000), 0.999)
                    .expect("scenario");
                let schedule = ScheduleBuilder::peak_load(&set)
                    .build(Ticks(40_000_000))
                    .expect("schedule");
                let summary = run_protocol(
                    &ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
                    &set,
                    &schedule,
                    medium,
                    Ticks(400_000_000_000),
                )
                .expect("run");
                Some(summary.utilization)
            } else {
                None
            };
            Cell {
                k,
                frame_slots,
                eff_avg,
                eff_worst,
                sim_util,
            }
        },
    );

    let mut avg_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for outcome in &report.outcomes {
        let cell = &outcome.value;
        println!(
            "{:>3} {:>12} {:>14.4} {:>15.4} {:>14}",
            cell.k,
            cell.frame_slots,
            cell.eff_avg,
            cell.eff_worst,
            cell.sim_util.map_or("-".into(), |u| format!("{u:.4}"))
        );
        csv.row(&[
            cell.k.to_string(),
            cell.frame_slots.to_string(),
            format!("{:.6}", cell.eff_avg),
            format!("{:.6}", cell.eff_worst),
            cell.sim_util.map_or("-".into(), |u| format!("{u:.6}")),
        ])
        .expect("row");
        if cell.frame_slots == 23.0 {
            avg_pts.push((cell.k as f64, cell.eff_avg));
            if let Some(u) = cell.sim_util {
                sim_pts.push((cell.k as f64, u));
            }
        }
    }
    csv.finish().expect("flush");
    write_indexed_stats(
        &results_dir().join("exp_efficiency_sweep_stats.csv"),
        &labels,
        &report,
    )
    .expect("sweep stats");
    println!("{}", report.perf_line());

    println!();
    println!(
        "{}",
        ascii_chart(
            "saturation efficiency vs k (frames of 23 slots = 1500B on Ethernet)",
            &[Series::new("a analytic", avg_pts.clone()), Series::new("s simulated", sim_pts.clone())],
            56,
            12,
        )
    );
    // Shape: efficiency far above slotted-ALOHA's 1/e at Ethernet frame
    // sizes. The analytic number is for ONE search round isolating k
    // uniformly random leaves; the full protocol amortizes better under
    // sustained backlogs (a static tree search drains up to ν_i messages
    // per source), so the simulated utilization may exceed the per-round
    // average — both must sit well above 0.85 and below 1.
    for &(k, eff) in &avg_pts {
        assert!(eff > 0.8, "analytic efficiency at k={k} unexpectedly low: {eff}");
    }
    for &(k, sim) in &sim_pts {
        assert!(
            sim > 0.85 && sim < 1.0,
            "simulated utilization at k={k} out of expected band: {sim}"
        );
    }
    let totals = report.cache_totals();
    assert!(
        totals.hits > 0,
        "expected repeated cells to hit the shared table cache"
    );
    println!("§3.1 shape (tree resolution keeps the channel nearly always useful): REPRODUCED");
    println!("wrote results/exp_efficiency.csv");
}
