//! **Experiment E2 — Fig. 2 of the paper**: worst-case search times for
//! 64-leaf balanced **binary vs quaternary** trees.
//!
//! Regenerates both exact curves for `k ∈ [2, 64]` and verifies the
//! figure's claim: `ξ_k^64 (m = 4) ≤ ξ_k^64 (m = 2)` for every `k`, i.e.
//! the quaternary tree is uniformly at least as efficient. Writes
//! `results/fig2.csv`.

use ddcr_bench::report::{ascii_chart, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_tree::{exact, TreeShape};

fn main() {
    let binary = TreeShape::new(2, 6).expect("64-leaf binary tree");
    let quaternary = TreeShape::new(4, 3).expect("64-leaf quaternary tree");
    let bin_table = exact::SearchTimeTable::compute(binary).expect("binary table");
    let quad_table = exact::SearchTimeTable::compute(quaternary).expect("quaternary table");

    let mut bin_pts = Vec::new();
    let mut quad_pts = Vec::new();
    let mut csv = Csv::create(
        &results_dir().join("fig2.csv"),
        &["k", "xi_binary", "xi_quaternary"],
    )
    .expect("create fig2.csv");

    println!("Fig. 2 — worst-case search times, 64-leaf balanced binary vs quaternary trees");
    println!("{:>4} {:>12} {:>14}", "k", "binary m=2", "quaternary m=4");
    let mut quaternary_always_leq = true;
    for k in 2..=64u64 {
        let b = bin_table.xi(k).expect("k in range");
        let q = quad_table.xi(k).expect("k in range");
        if q > b {
            quaternary_always_leq = false;
        }
        bin_pts.push((k as f64, b as f64));
        quad_pts.push((k as f64, q as f64));
        println!("{k:>4} {b:>12} {q:>14}");
        csv.row(&[k, b, q]).expect("write row");
    }
    csv.finish().expect("flush fig2.csv");

    println!();
    println!(
        "{}",
        ascii_chart(
            "binary (b) vs quaternary (q), k = 2..64",
            &[
                Series::new("b binary", bin_pts),
                Series::new("q quaternary", quad_pts),
            ],
            64,
            20,
        )
    );
    println!(
        "paper's claim `quaternary <= binary for all k in [2, 64]`: {}",
        if quaternary_always_leq { "HOLDS" } else { "VIOLATED" }
    );
    assert!(quaternary_always_leq, "Fig. 2 claim failed to reproduce");
    println!("wrote results/fig2.csv");
}
