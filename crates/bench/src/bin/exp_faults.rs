//! **Experiment E16 — fault sweep**: CSMA/DDCR under seeded fault
//! injection.
//!
//! The paper's guarantees are proved for conforming, fault-free networks;
//! this experiment measures how the implementation degrades when the
//! medium misbehaves. A deterministic grid over per-slot fault rates
//! (slot corruption, frame erasure, station crashes) × seeds drives a
//! DDCR network at peak load; every cell is a pure function of its seed,
//! so the whole sweep is bitwise replayable. Writes
//! `results/exp_faults.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_core::{network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ChannelStats, FaultPlan, FaultRates, MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

const SOURCES: u32 = 8;
const HORIZON: Ticks = Ticks(8_000_000);
const DOWN_SLOTS: u64 = 64;

fn run_cell(rates: &FaultRates, seed: u64) -> (usize, usize, ChannelStats) {
    let set = scenario::uniform(SOURCES, 8_000, Ticks(5_000_000), 0.3).expect("scenario");
    let medium = MediumConfig::ethernet();
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(SOURCES, c).expect("config");
    let allocation =
        StaticAllocation::round_robin(config.static_tree, SOURCES).expect("allocation");
    let schedule = ScheduleBuilder::peak_load(&set).build(HORIZON).expect("schedule");
    let scheduled = schedule.len();
    // Decision slots are at least one slot time wide, so this over-covers
    // the arrival horizon; doubled for the drain tail.
    let horizon_slots = 2 * HORIZON.as_u64() / medium.slot_ticks;
    let plan = FaultPlan::generate(seed, SOURCES, horizon_slots, rates);
    let injected = plan.len();
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine");
    engine.set_fault_plan(plan);
    engine.add_arrivals(schedule).expect("arrivals");
    let _ = engine.run_to_completion(Ticks(1_000_000_000_000));
    (scheduled, injected, engine.into_stats())
}

fn main() {
    let mut csv = Csv::create(
        &results_dir().join("exp_faults.csv"),
        &[
            "corrupt", "erase", "crash", "seed", "injected", "scheduled", "delivered",
            "lost", "corrupted_slots", "erased_frames", "crashes", "restarts", "misses",
            "max_latency", "utilization",
        ],
    )
    .expect("create csv");

    println!("E16 — CSMA/DDCR under seeded fault injection ({SOURCES} sources, peak load)");
    println!(
        "{:>8} {:>7} {:>7} {:>5} {:>8} {:>9} {:>5} {:>8} {:>8} {:>8} {:>7}",
        "corrupt", "erase", "crash", "seed", "injected", "delivered", "lost", "corrupt#",
        "erased#", "restarts", "misses"
    );
    let grid = [
        FaultRates { corrupt: 0.0, erase: 0.0, crash: 0.0, down_slots: DOWN_SLOTS },
        FaultRates { corrupt: 0.005, erase: 0.0, crash: 0.0, down_slots: DOWN_SLOTS },
        FaultRates { corrupt: 0.0, erase: 0.01, crash: 0.0, down_slots: DOWN_SLOTS },
        FaultRates { corrupt: 0.0, erase: 0.0, crash: 0.001, down_slots: DOWN_SLOTS },
        FaultRates { corrupt: 0.005, erase: 0.01, crash: 0.001, down_slots: DOWN_SLOTS },
        FaultRates { corrupt: 0.02, erase: 0.02, crash: 0.002, down_slots: DOWN_SLOTS },
    ];
    for rates in &grid {
        for seed in [1u64, 2, 3] {
            let (scheduled, injected, stats) = run_cell(rates, seed);
            println!(
                "{:>8.3} {:>7.3} {:>7.4} {:>5} {:>8} {:>9} {:>5} {:>8} {:>8} {:>8} {:>7}",
                rates.corrupt,
                rates.erase,
                rates.crash,
                seed,
                injected,
                stats.deliveries.len(),
                stats.lost.len(),
                stats.corrupted_slots,
                stats.erased_frames,
                stats.restarts,
                stats.deadline_misses(),
            );
            csv.row(&[
                rates.corrupt.to_string(),
                rates.erase.to_string(),
                rates.crash.to_string(),
                seed.to_string(),
                injected.to_string(),
                scheduled.to_string(),
                stats.deliveries.len().to_string(),
                stats.lost.len().to_string(),
                stats.corrupted_slots.to_string(),
                stats.erased_frames.to_string(),
                stats.crashes.to_string(),
                stats.restarts.to_string(),
                stats.deadline_misses().to_string(),
                stats.max_latency().as_u64().to_string(),
                format!("{:.4}", stats.utilization()),
            ])
            .expect("row");
            // Safety under every cell: nothing delivered twice, and every
            // scheduled message is either delivered or lost in a crash.
            let delivered: std::collections::HashSet<u64> =
                stats.deliveries.iter().map(|d| d.message.id.0).collect();
            assert_eq!(
                delivered.len(),
                stats.deliveries.len(),
                "duplicate delivery under faults"
            );
            assert_eq!(
                delivered.len() + stats.lost.len(),
                scheduled,
                "message neither delivered nor accounted lost"
            );
        }
    }
    // Replayability spot check: the adversarial cell is a pure function
    // of its seed.
    let a = run_cell(&grid[4], 7);
    let b = run_cell(&grid[4], 7);
    assert_eq!(a.2.deliveries, b.2.deliveries, "fault sweep not replayable");
    csv.finish().expect("flush");
    println!();
    println!("every cell is exactly-once and loss-accounted: VERIFIED");
    println!("wrote results/exp_faults.csv");
}
