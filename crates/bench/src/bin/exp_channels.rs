//! **Experiment E15 — multichannel wall-clock scaling and capacity.**
//!
//! Fixes a saturated workload (32-participant videoconference on gigabit
//! Ethernet — provable only from 3 channels up, per E14) and sweeps the
//! channel count 1–4, reporting for each fabric width:
//!
//! * the per-channel ξ budgets and whether the fabric is provably
//!   feasible (the §3.1 capacity gain: infeasible at C=1, provable at
//!   C≥3);
//! * a peak-load simulation across all channels (delivered / misses /
//!   drained) — deterministic, identical for every `--jobs`;
//! * wall-clock for serial (1 worker) vs parallel (`--jobs`, default all
//!   cores) execution of the same channels — the speedup the worker pool
//!   buys on this host.
//!
//! Writes `results/exp_channels.csv` (deterministic columns only; timing
//! goes to stdout).

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{self, SweepConfig};
use ddcr_core::{multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

const PARTICIPANTS: u32 = 32;
const HORIZON: Ticks = Ticks(8_000_000);
const BUDGET: Ticks = Ticks(400_000_000_000);

fn main() {
    let medium = MediumConfig::gigabit_ethernet();
    let jobs = SweepConfig::resolve(sweep::jobs_flag_from_args(), 42).workers;
    let set = scenario::videoconference(PARTICIPANTS).expect("scenario");
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(PARTICIPANTS, c).expect("config");
    let allocation =
        StaticAllocation::round_robin(config.static_tree, PARTICIPANTS).expect("allocation");

    let mut csv = Csv::create(
        &results_dir().join("exp_channels.csv"),
        &[
            "channels",
            "fabric_feasible",
            "max_channel_load",
            "max_p2_slots",
            "scheduled",
            "delivered",
            "misses",
            "drained",
        ],
    )
    .expect("create csv");

    println!(
        "E15 — multichannel scaling, videoconference z={PARTICIPANTS} on gigabit \
         (load {:.3})",
        set.offered_load()
    );
    println!(
        "{:>8} {:>9} {:>9} {:>10} {:>9} {:>9} {:>7} {:>8} {:>9} {:>9} {:>8}",
        "channels", "feasible", "max_load", "p2_slots", "scheduled", "delivered", "misses",
        "drained", "serial_s", "par_s", "speedup"
    );

    let mut single_feasible = true;
    let mut widest_feasible = false;
    for channels in 1..=4usize {
        let assignment = multibus::balance_by_load(&set, channels);
        let budgets =
            multibus::channel_budgets(&set, &assignment, &config, &allocation, &medium)
                .expect("budgets");
        let feasible = budgets.iter().all(|b| b.feasible);
        let max_load = budgets.iter().map(|b| b.offered_load).fold(0.0, f64::max);
        let max_p2 = budgets.iter().map(|b| b.p2_slots).fold(0.0, f64::max);
        if channels == 1 {
            single_feasible = feasible;
        }
        if channels == 4 {
            widest_feasible = feasible;
        }

        let schedule = ScheduleBuilder::peak_load(&set).build(HORIZON).expect("schedule");
        let n = schedule.len();
        let mut options = multibus::RunOptions::new(BUDGET);
        options.workers = 1;
        let serial = multibus::run_channels(
            &set,
            schedule.clone(),
            &assignment,
            &config,
            &allocation,
            medium,
            &options,
        )
        .expect("serial run");
        options.workers = jobs;
        let parallel = multibus::run_channels(
            &set,
            schedule,
            &assignment,
            &config,
            &allocation,
            medium,
            &options,
        )
        .expect("parallel run");

        // Worker-count invariance, checked on every row.
        assert_eq!(serial.channels.len(), parallel.channels.len());
        for (a, b) in serial.channels.iter().zip(&parallel.channels) {
            assert_eq!(a.stats, b.stats, "channel results must not depend on --jobs");
        }

        let delivered = parallel.delivered();
        let misses = parallel.deadline_misses();
        let drained = parallel.completed();
        if drained {
            assert_eq!(delivered, n, "a drained fabric delivers everything");
        }
        let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
        println!(
            "{channels:>8} {feasible:>9} {max_load:>9.3} {max_p2:>10.1} {n:>9} \
             {delivered:>9} {misses:>7} {drained:>8} {:>9.3} {:>9.3} {speedup:>7.2}x",
            serial.wall.as_secs_f64(),
            parallel.wall.as_secs_f64(),
        );
        csv.row(&[
            channels.to_string(),
            feasible.to_string(),
            format!("{max_load:.6}"),
            format!("{max_p2:.3}"),
            n.to_string(),
            delivered.to_string(),
            misses.to_string(),
            drained.to_string(),
        ])
        .expect("row");
    }
    csv.finish().expect("flush");

    assert!(
        !single_feasible,
        "z={PARTICIPANTS} must be infeasible on one channel (else the capacity claim is vacuous)"
    );
    assert!(
        widest_feasible,
        "z={PARTICIPANTS} must be provable on four channels"
    );
    println!();
    println!(
        "capacity: z={PARTICIPANTS} INFEASIBLE at C=1, provably FEASIBLE at C=4 \
         (§3.1 parallel media)"
    );
    println!("wrote results/exp_channels.csv");
}
