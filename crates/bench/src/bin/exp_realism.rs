//! **Experiment E16 — §2.2 arrival-model realism**: "Many researchers
//! simply assume periodic arrival models … or Poisson arrival models …
//! However, this does not reflect reality and, most often, leads to
//! incorrect (i.e., arbitrarily optimistic) feasibility conditions",
//! citing the self-similar Ethernet measurements of Leland et al. (ref 11)
//! and Paxson & Floyd (ref 12).
//!
//! We make that argument quantitative: the same mean offered load is
//! generated three ways — Poisson, self-similar (Pareto ON/OFF, α = 1.2),
//! and the density-*bounded* random process — and pushed through CSMA-CD
//! with deadlines dimensioned so Poisson traffic sails through. Expected
//! shape: Poisson looks fine (the optimistic feasibility verdict);
//! self-similar traffic with the *same mean* produces deep burst backlogs
//! and deadline misses; bounded traffic is safe by construction — which is
//! why the paper's unimodal arbitrary model (and its peak-load FCs) is the
//! right contract. Writes `results/exp_realism.csv`.

use ddcr_baseline::QueueDiscipline;
use ddcr_bench::harness::{run_protocol, ProtocolKind};
use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::arrival::{BoundedRandom, Poisson, SelfSimilar};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet};

fn main() {
    let medium = MediumConfig::ethernet();
    let z = 8u32;
    // Each source behaves like a file-transfer host: when ON it nearly
    // saturates the wire by itself (8 kbit frame per 10 µs window = 0.8 of
    // channel capacity), and is ON 6 % of the time — ~38 % mean load in
    // aggregate. All three models run at the same mean; only the burst
    // structure differs. 300 µs deadlines are roomy for smooth traffic.
    let classes: Vec<MessageClass> = (0..z)
        .map(|s| MessageClass {
            id: ClassId(s),
            name: format!("host{s}"),
            source: SourceId(s),
            bits: 8_000,
            deadline: Ticks(300_000),
            density: DensityBound::new(1, Ticks(10_000)).expect("bound"),
        })
        .collect();
    let set = MessageSet::new(z, classes).expect("set");
    let intensity = 0.06f64;
    let horizon = Ticks(80_000_000);

    let mut csv = Csv::create(
        &results_dir().join("exp_realism.csv"),
        &[
            "arrival_model",
            "messages",
            "misses",
            "miss_ratio",
            "mean_latency",
            "p99_latency",
            "max_latency",
        ],
    )
    .expect("create csv");

    println!("E16 — arrival-model realism: same mean load, different burst structure");
    println!(
        "{:<14} {:>9} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "model", "messages", "misses", "miss%", "mean_lat", "p99_lat", "max_lat"
    );

    let builders: Vec<(&str, ddcr_traffic::ScheduleBuilder)> = vec![
        (
            "poisson",
            ddcr_traffic::ScheduleBuilder::new(&set, Box::new(Poisson { intensity, seed: 5 })),
        ),
        (
            "self-similar",
            ddcr_traffic::ScheduleBuilder::new(
                &set,
                Box::new(SelfSimilar::new(1.2, intensity, 5).expect("params")),
            ),
        ),
        (
            "bounded",
            ddcr_traffic::ScheduleBuilder::new(
                &set,
                Box::new(BoundedRandom::new(intensity, 5).expect("params")),
            ),
        ),
    ];

    let mut results = Vec::new();
    for (name, builder) in builders {
        let schedule = builder.build(horizon).expect("schedule");
        let summary = run_protocol(
            &ProtocolKind::CsmaCd(QueueDiscipline::Edf, 31),
            &set,
            &schedule,
            medium,
            Ticks(400_000_000_000),
        )
        .expect("run");
        println!(
            "{:<14} {:>9} {:>7} {:>9.4} {:>12.0} {:>12} {:>12}",
            name,
            summary.scheduled,
            summary.misses,
            summary.miss_ratio,
            summary.mean_latency,
            summary.p99_latency,
            summary.max_latency
        );
        csv.row(&[
            name.to_owned(),
            summary.scheduled.to_string(),
            summary.misses.to_string(),
            format!("{:.6}", summary.miss_ratio),
            format!("{:.1}", summary.mean_latency),
            summary.p99_latency.to_string(),
            summary.max_latency.to_string(),
        ])
        .expect("row");
        results.push((name, summary));
    }
    csv.finish().expect("flush");

    let get = |n: &str| &results.iter().find(|(name, _)| *name == n).expect("present").1;
    let poisson = get("poisson");
    let lrd = get("self-similar");
    let bounded = get("bounded");
    println!();
    println!(
        "p99 latency: poisson {} vs self-similar {} ({}x)",
        poisson.p99_latency,
        lrd.p99_latency,
        lrd.p99_latency / poisson.p99_latency.max(1)
    );
    assert!(
        lrd.p99_latency > 2 * poisson.p99_latency,
        "self-similar tails should dwarf Poisson tails at equal mean load"
    );
    assert!(
        lrd.misses > poisson.misses,
        "self-similar bursts should cause more misses than Poisson"
    );
    assert!(
        bounded.p99_latency <= lrd.p99_latency,
        "density-respecting traffic cannot have worse tails than unbounded LRD"
    );
    println!(
        "paper's §2.2 argument (Poisson dimensioning is arbitrarily optimistic \
         against real LRD traffic; density bounds are the verifiable contract): REPRODUCED"
    );
    println!("wrote results/exp_realism.csv");
}
