//! **Experiment E9 — §3.2 compressed-time mode**: the `θ(c)` tradeoff.
//!
//! The paper: *"θ(c) determines a tradeoff between reducing potential
//! channel idleness and potentially increasing the number of deadline
//! inversions."* We reproduce both sides with one workload:
//!
//! * four sources each hold a **far-deadline** message (40 ms, far beyond
//!   the 6.4 ms scheduling horizon `c·F`), which sits time tree searches
//!   out until `reft` advances;
//! * source 0 additionally emits a periodic **urgent** stream (200 µs
//!   deadline).
//!
//! With `θ = 0` the far messages thrash in attempt-slot collisions until
//! physical time catches up (long completion, heavy overhead); raising `θ`
//! compresses time so they enter the tree early (fast completion) at the
//! price of deadline inversions against the urgent stream.
//!
//! The five θ points run as a deterministic parallel sweep (`--jobs N` /
//! `DDCR_JOBS`; DDCR is deterministic, so results are independent of the
//! worker count). Writes `results/exp_theta.csv` plus
//! `results/exp_theta_sweep_stats.csv`.

use ddcr_bench::report::{write_indexed_stats, Csv};
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{jobs_flag_from_args, run_indexed, SweepConfig};
use ddcr_core::{inversions, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ClassId, Delivery, MediumConfig, Message, MessageId, SourceId, Ticks};

fn schedule() -> Vec<Message> {
    let mut messages = Vec::new();
    // Far-deadline messages, one per source, same class width apart.
    for s in 0..4u32 {
        messages.push(Message {
            id: MessageId(u64::from(s)),
            source: SourceId(s),
            class: ClassId(0),
            bits: 12_000,
            arrival: Ticks(0),
            deadline: Ticks(40_000_000), // 40 ms >> horizon 6.4 ms
        });
    }
    // Urgent stream from source 0: every 1 ms, 200 µs deadline.
    for k in 0..20u64 {
        messages.push(Message {
            id: MessageId(100 + k),
            source: SourceId(0),
            class: ClassId(1),
            bits: 2_000,
            arrival: Ticks(k * 1_000_000),
            deadline: Ticks(200_000),
        });
    }
    messages
}

struct ThetaPoint {
    theta: u64,
    far_done: Ticks,
    urgent_max: Ticks,
    urgent_misses: usize,
    inversions: u64,
    silence_slots: u64,
    collisions: u64,
}

fn run_theta(theta: u64, medium: MediumConfig) -> ThetaPoint {
    let config = DdcrConfig::for_sources(4, Ticks(100_000))
        .expect("config") // c = 100 µs, horizon = 6.4 ms
        .with_compressed_time(theta);
    let allocation =
        StaticAllocation::one_per_source(config.static_tree, 4).expect("allocation");
    let set = ddcr_traffic::scenario::uniform(4, 12_000, Ticks(40_000_000), 0.01)
        .expect("shell set"); // engine assembly only; arrivals are explicit
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine");
    engine.add_arrivals(schedule()).expect("arrivals");
    engine
        .run_to_completion(Ticks(10_000_000_000))
        .expect("completion");
    let stats = engine.into_stats();

    let far_done = stats
        .deliveries
        .iter()
        .filter(|d| d.message.class == ClassId(0))
        .map(|d| d.completed_at)
        .max()
        .expect("far messages delivered");
    let urgent: Vec<&Delivery> = stats
        .deliveries
        .iter()
        .filter(|d| d.message.class == ClassId(1))
        .collect();
    let urgent_max = urgent.iter().map(|d| d.latency()).max().expect("urgent");
    let urgent_misses = urgent.iter().filter(|d| !d.deadline_met()).count();
    let inversions = inversions::count(&stats.deliveries).pairs;
    ThetaPoint {
        theta,
        far_done,
        urgent_max,
        urgent_misses,
        inversions,
        silence_slots: stats.silence_slots,
        collisions: stats.collisions,
    }
}

fn main() {
    let medium = MediumConfig::ethernet();
    let mut csv = Csv::create(
        &results_dir().join("exp_theta.csv"),
        &[
            "theta",
            "far_completion_ms",
            "urgent_max_latency_us",
            "urgent_misses",
            "inversions",
            "silence_slots",
            "collisions",
        ],
    )
    .expect("create csv");

    println!("E9 — compressed-time tradeoff (theta multiplier sweep)");
    println!(
        "{:>6} {:>16} {:>18} {:>14} {:>11} {:>14} {:>11}",
        "theta", "far done (ms)", "urgent max (us)", "urgent miss", "inversions", "silence", "collisions"
    );

    let thetas = [0u64, 1, 4, 16, 64];
    let labels: Vec<String> = thetas.iter().map(|t| format!("theta={t}")).collect();
    let report = run_indexed(
        SweepConfig::resolve(jobs_flag_from_args(), 9),
        thetas.len(),
        |ctx| run_theta(thetas[ctx.index], medium),
    );

    let mut far_completions = Vec::new();
    let mut inversion_counts = Vec::new();
    for outcome in &report.outcomes {
        let p = &outcome.value;
        println!(
            "{:>6} {:>16.2} {:>18.1} {:>14} {:>11} {:>14} {:>11}",
            p.theta,
            p.far_done.as_u64() as f64 / 1e6,
            p.urgent_max.as_u64() as f64 / 1e3,
            p.urgent_misses,
            p.inversions,
            p.silence_slots,
            p.collisions
        );
        csv.row(&[
            p.theta.to_string(),
            format!("{:.3}", p.far_done.as_u64() as f64 / 1e6),
            format!("{:.1}", p.urgent_max.as_u64() as f64 / 1e3),
            p.urgent_misses.to_string(),
            p.inversions.to_string(),
            p.silence_slots.to_string(),
            p.collisions.to_string(),
        ])
        .expect("row");
        far_completions.push((p.theta, p.far_done));
        inversion_counts.push((p.theta, p.inversions));
    }
    csv.finish().expect("flush");
    write_indexed_stats(
        &results_dir().join("exp_theta_sweep_stats.csv"),
        &labels,
        &report,
    )
    .expect("sweep stats");
    println!("{}", report.perf_line());

    // The tradeoff's two monotone ends:
    let first = far_completions.first().expect("runs");
    let last = far_completions.last().expect("runs");
    println!();
    println!(
        "far-message completion: theta=0 -> {:.2} ms, theta=64 -> {:.2} ms",
        first.1.as_u64() as f64 / 1e6,
        last.1.as_u64() as f64 / 1e6
    );
    assert!(
        last.1 < first.1,
        "compressed time should accelerate far-deadline messages"
    );
    assert!(
        inversion_counts.last().expect("runs").1 >= inversion_counts.first().expect("runs").1,
        "larger theta should not reduce inversions"
    );
    println!("paper's theta tradeoff (idleness vs inversions): REPRODUCED");
    println!("wrote results/exp_theta.csv");
}
