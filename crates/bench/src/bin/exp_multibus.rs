//! **Experiment E14 — §3.1 parallel media**: "a broadcast medium (many
//! such media can be used in parallel)".
//!
//! Measures how provable capacity scales with the number of parallel
//! busses: for the videoconference scenario, the largest participant count
//! whose projected per-bus message sets all pass the feasibility
//! conditions, for 1–4 busses, plus a peak-load simulation at each
//! frontier. Writes `results/exp_multibus.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_core::{multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ChannelStats, MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn provable(z: u32, buses: usize, medium: &MediumConfig) -> bool {
    let Ok(set) = scenario::videoconference(z) else {
        return false;
    };
    let c = network::recommended_class_width(&set, 64, medium);
    let Ok(config) = DdcrConfig::for_sources(z, c) else {
        return false;
    };
    let Ok(allocation) = StaticAllocation::round_robin(config.static_tree, z) else {
        return false;
    };
    let assignment = multibus::balance_by_load(&set, buses);
    match multibus::evaluate(&set, &assignment, &config, &allocation, medium) {
        Ok(reports) => reports.iter().all(|r| r.feasible()),
        Err(_) => false,
    }
}

fn main() {
    let medium = MediumConfig::gigabit_ethernet();
    let mut csv = Csv::create(
        &results_dir().join("exp_multibus.csv"),
        &["buses", "max_provable_participants", "validated_misses", "validated_delivered"],
    )
    .expect("create csv");

    println!("E14 — provable videoconference capacity vs parallel busses");
    println!(
        "{:>6} {:>26} {:>12} {:>11}",
        "buses", "max provable participants", "sim misses", "delivered"
    );

    let mut frontier = Vec::new();
    for buses in 1..=4usize {
        // Walk z upward until the FCs reject.
        let mut best = 0u32;
        for z in (2..=96u32).step_by(2) {
            if provable(z, buses, &medium) {
                best = z;
            } else if best > 0 {
                break;
            }
        }
        assert!(best > 0, "no provable size on {buses} busses");

        // Validate the frontier point in simulation.
        let set = scenario::videoconference(best).expect("scenario");
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(best, c).expect("config");
        let allocation =
            StaticAllocation::round_robin(config.static_tree, best).expect("allocation");
        let assignment = multibus::balance_by_load(&set, buses);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(8_000_000))
            .expect("schedule");
        let n = schedule.len();
        let stats = multibus::run(
            &set,
            schedule,
            &assignment,
            &config,
            &allocation,
            medium,
            Ticks(400_000_000_000),
        )
        .expect("run");
        let delivered: usize = stats.iter().map(|s| s.deliveries.len()).sum();
        let misses: usize = stats.iter().map(ChannelStats::deadline_misses).sum();
        assert_eq!(delivered, n);
        assert_eq!(misses, 0, "frontier point missed on {buses} busses");

        println!("{buses:>6} {best:>26} {misses:>12} {delivered:>11}");
        csv.row(&[
            buses.to_string(),
            best.to_string(),
            misses.to_string(),
            delivered.to_string(),
        ])
        .expect("row");
        frontier.push((buses, best));
    }
    csv.finish().expect("flush");

    println!();
    for pair in frontier.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "capacity must not shrink with more busses"
        );
    }
    let (_, single) = frontier[0];
    let (_, quad) = frontier[3];
    println!(
        "capacity scaling: 1 bus -> {single} participants, 4 busses -> {quad} \
         ({}x)",
        quad as f64 / single as f64
    );
    assert!(quad > single, "parallel media must add provable capacity");
    println!("§3.1 parallel-media claim (capacity composes across busses): REPRODUCED");
    println!("wrote results/exp_multibus.csv");
}
