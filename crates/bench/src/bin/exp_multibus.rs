//! **Experiment E14 — §3.1 parallel media**: "a broadcast medium (many
//! such media can be used in parallel)".
//!
//! Measures how provable capacity scales with the number of parallel
//! busses: for the videoconference scenario, the largest participant count
//! whose projected per-bus message sets all pass the feasibility
//! conditions, for 1–4 busses, plus a peak-load simulation at each
//! frontier. The provability grid (busses × participant counts) fans out
//! over the deterministic sweep runner and each frontier validation runs
//! its channels on the multichannel engine pool, so `--jobs N` changes
//! only wall-clock, never the CSV. Writes `results/exp_multibus.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{self, SweepConfig};
use ddcr_core::{multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

const BUS_COUNTS: usize = 4;
const Z_STEPS: &[u32] = &{
    let mut steps = [0u32; 48];
    let mut i = 0;
    while i < 48 {
        steps[i] = 2 + 2 * i as u32;
        i += 1;
    }
    steps
};

fn provable(z: u32, buses: usize, medium: &MediumConfig) -> bool {
    let Ok(set) = scenario::videoconference(z) else {
        return false;
    };
    let c = network::recommended_class_width(&set, 64, medium);
    let Ok(config) = DdcrConfig::for_sources(z, c) else {
        return false;
    };
    let Ok(allocation) = StaticAllocation::round_robin(config.static_tree, z) else {
        return false;
    };
    let assignment = multibus::balance_by_load(&set, buses);
    match multibus::evaluate(&set, &assignment, &config, &allocation, medium) {
        Ok(reports) => reports.iter().all(|r| r.feasible()),
        Err(_) => false,
    }
}

fn main() {
    let medium = MediumConfig::gigabit_ethernet();
    let config = SweepConfig::resolve(sweep::jobs_flag_from_args(), 42);
    let mut csv = Csv::create(
        &results_dir().join("exp_multibus.csv"),
        &["buses", "max_provable_participants", "validated_misses", "validated_delivered"],
    )
    .expect("create csv");

    println!("E14 — provable videoconference capacity vs parallel busses");
    println!(
        "{:>6} {:>26} {:>12} {:>11}",
        "buses", "max provable participants", "sim misses", "delivered"
    );

    // Phase 1: the whole (busses × z) provability grid in parallel. Each
    // cell is a pure function of its coordinates, so the grid is trivially
    // worker-count invariant.
    let grid = sweep::run_indexed(config, BUS_COUNTS * Z_STEPS.len(), |ctx| {
        let buses = ctx.index / Z_STEPS.len() + 1;
        let z = Z_STEPS[ctx.index % Z_STEPS.len()];
        provable(z, buses, &medium)
    });

    let mut frontier = Vec::new();
    for buses in 1..=BUS_COUNTS {
        // Walk z upward until the FCs reject (same contiguous-prefix rule
        // as the original serial walk).
        let mut best = 0u32;
        for (step, z) in Z_STEPS.iter().enumerate() {
            let index = (buses - 1) * Z_STEPS.len() + step;
            if grid.outcomes[index].value {
                best = *z;
            } else if best > 0 {
                break;
            }
        }
        assert!(best > 0, "no provable size on {buses} busses");

        // Phase 2: validate the frontier point in simulation, channels
        // fanned over the engine pool.
        let set = scenario::videoconference(best).expect("scenario");
        let c = network::recommended_class_width(&set, 64, &medium);
        let ddcr_config = DdcrConfig::for_sources(best, c).expect("config");
        let allocation =
            StaticAllocation::round_robin(ddcr_config.static_tree, best).expect("allocation");
        let assignment = multibus::balance_by_load(&set, buses);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(8_000_000))
            .expect("schedule");
        let n = schedule.len();
        let mut options = multibus::RunOptions::new(Ticks(400_000_000_000));
        options.workers = config.workers;
        let report = multibus::run_channels(
            &set,
            schedule,
            &assignment,
            &ddcr_config,
            &allocation,
            medium,
            &options,
        )
        .expect("run");
        assert!(report.completed(), "frontier point timed out on {buses} busses");
        let delivered = report.delivered();
        let misses = report.deadline_misses();
        assert_eq!(delivered, n);
        assert_eq!(misses, 0, "frontier point missed on {buses} busses");

        println!("{buses:>6} {best:>26} {misses:>12} {delivered:>11}");
        csv.row(&[
            buses.to_string(),
            best.to_string(),
            misses.to_string(),
            delivered.to_string(),
        ])
        .expect("row");
        frontier.push((buses, best));
    }
    csv.finish().expect("flush");

    println!();
    for pair in frontier.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "capacity must not shrink with more busses"
        );
    }
    let (_, single) = frontier[0];
    let (_, quad) = frontier[3];
    println!(
        "capacity scaling: 1 bus -> {single} participants, 4 busses -> {quad} \
         ({}x)",
        quad as f64 / single as f64
    );
    assert!(quad > single, "parallel media must add provable capacity");
    println!("{}", grid.perf_line());
    println!("§3.1 parallel-media claim (capacity composes across busses): REPRODUCED");
    println!("wrote results/exp_multibus.csv");
}
