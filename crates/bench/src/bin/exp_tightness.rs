//! **Experiment E4 — Eq. (12)–(14)**: tightness of the asymptotic bound.
//!
//! For a sweep of branching degrees and tree sizes, measures
//! `max_k (ξ̃_k^t − ξ_k^t)`, verifies Eq. (12) (the argmax lies in
//! `[2t/m², 2t/m]`), Eq. (13) (the per-`m` envelope coefficient) and
//! Eq. (14) (the universal 9.54 % constant, attained at `m = 9`). Writes
//! `results/exp_tightness.csv`.

use ddcr_bench::report::{ascii_chart, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_tree::{asymptotic, TreeShape};

fn main() {
    let mut csv = Csv::create(
        &results_dir().join("exp_tightness.csv"),
        &[
            "m",
            "t",
            "max_gap_even",
            "max_gap_all",
            "argmax_k",
            "gap_even_pct_t",
            "c_m_pct",
            "eq12_holds",
            "eq13_holds",
        ],
    )
    .expect("create csv");

    println!("E4 — tightness of the asymptotic bound (Eq. 12-14)");
    println!(
        "{:>3} {:>6} {:>12} {:>12} {:>9} {:>12} {:>10} {:>6} {:>6}",
        "m", "t", "gap(even k)", "gap(all k)", "argmax", "even %t", "c(m) %", "eq12", "eq13"
    );
    let mut coeff_pts = Vec::new();
    let mut measured_pts = Vec::new();
    let mut all_hold = true;

    let shapes = [
        (2u64, 8u32),
        (2, 10),
        (3, 5),
        (3, 7),
        (4, 4),
        (4, 6),
        (5, 3),
        (5, 4),
        (6, 3),
        (7, 3),
        (8, 3),
        (9, 3),
        (16, 2),
    ];
    for &(m, n) in &shapes {
        let shape = TreeShape::new(m, n).expect("valid shape");
        let t = shape.leaves();
        let report = asymptotic::max_gap(shape).expect("gap");
        let c = asymptotic::tightness_coefficient(m);
        let lo = 2 * t / (m * m);
        let hi = 2 * t / m;
        let eq12 = (lo..=hi).contains(&report.argmax_k);
        let eq13 = report.max_gap_even <= c * t as f64 + 1e-9;
        all_hold &= eq12 && eq13;
        println!(
            "{:>3} {:>6} {:>12.2} {:>12.2} {:>9} {:>12.3} {:>10.3} {:>6} {:>6}",
            m,
            t,
            report.max_gap_even,
            report.max_gap,
            report.argmax_k,
            100.0 * report.max_gap_even / t as f64,
            100.0 * c,
            eq12,
            eq13
        );
        csv.row(&[
            m.to_string(),
            t.to_string(),
            format!("{:.4}", report.max_gap_even),
            format!("{:.4}", report.max_gap),
            report.argmax_k.to_string(),
            format!("{:.4}", 100.0 * report.max_gap_even / t as f64),
            format!("{:.4}", 100.0 * c),
            eq12.to_string(),
            eq13.to_string(),
        ])
        .expect("row");
        // For the chart: use the largest t per m only.
        measured_pts.push((m as f64, 100.0 * report.max_gap_even / t as f64));
    }
    for m in 2..=20u64 {
        coeff_pts.push((m as f64, 100.0 * asymptotic::tightness_coefficient(m)));
    }
    csv.finish().expect("flush");

    println!();
    println!(
        "{}",
        ascii_chart(
            "envelope coefficient c(m)% (c) vs measured even-k gap % (g)",
            &[
                Series::new("c(m)", coeff_pts.clone()),
                Series::new("gap", measured_pts),
            ],
            60,
            16,
        )
    );
    let (max_m, max_c) = coeff_pts
        .iter()
        .cloned()
        .fold((0.0, f64::NEG_INFINITY), |acc, p| if p.1 > acc.1 { p } else { acc });
    println!(
        "coefficient maximal at m = {max_m}: {max_c:.3}% (paper Eq. 14: 9.54% via 3^(1/4)/(2e·ln3) − 1/8 = {:.3}%)",
        100.0 * asymptotic::universal_tightness_constant()
    );
    assert!((max_m - 9.0).abs() < 1e-9, "Eq. 14 maximiser is m = 9");
    assert!(all_hold, "Eq. 12/13 failed somewhere");
    println!("Eq. 12, 13, 14: REPRODUCED");
    println!("wrote results/exp_tightness.csv");
}
