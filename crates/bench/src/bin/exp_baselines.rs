//! **Experiment E8 — §3.1 motivation**: CSMA/DDCR vs CSMA-CD/BEB vs
//! CSMA/DCR vs the centralized NP-EDF oracle, across an offered-load sweep
//! under adversarial peak-load bursts with hard deadlines.
//!
//! The workload mixes, per source, an **urgent** class (4 kbit, 300 µs
//! deadline) and a **bulk** class (24 kbit, 4 ms deadline), both arriving
//! in phase-aligned bursts — so the MAC must order cross-source traffic by
//! deadline to meet the urgent class.
//!
//! Expected shape (the paper's argument; it reports no measurements): the
//! stochastic BEB baseline misses urgent deadlines as load rises — its
//! tail latency is unbounded — while deadline-aware deterministic DDCR
//! holds zero misses far longer; the oracle lower-bounds everyone; DCR is
//! deterministic but deadline-blind, landing in between.
//!
//! Runs as a deterministic parallel sweep (`--jobs N` or `DDCR_JOBS`;
//! the CSV is byte-identical for every worker count). Writes
//! `results/exp_baselines.csv` plus per-job timing/cache metadata to
//! `results/exp_baselines_sweep_stats.csv`.

use ddcr_baseline::QueueDiscipline;
use ddcr_bench::harness::{default_ddcr_config, ProtocolKind};
use ddcr_bench::report::{ascii_chart, write_sweep_stats, Csv, Series};
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{jobs_flag_from_args, SweepConfig, SweepGrid};
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet, ScheduleBuilder};
use std::collections::BTreeMap;

/// Two classes per source — bulk and urgent — with a fixed 2 ms burst
/// window; the burst size `a` scales the offered load. Bulk classes get
/// the lower ids so a FIFO queue (arrival order, id tie-break) services
/// bulk before urgent — the inversion local EDF exists to fix.
fn workload(z: u32, a: u64) -> MessageSet {
    let w = Ticks(2_000_000);
    let mut classes = Vec::new();
    for s in 0..z {
        classes.push(MessageClass {
            id: ClassId(2 * s),
            name: format!("bulk/s{s}"),
            source: SourceId(s),
            bits: 24_000,
            deadline: Ticks(4_000_000),
            density: DensityBound::new(a, w).expect("bound"),
        });
        classes.push(MessageClass {
            id: ClassId(2 * s + 1),
            name: format!("urgent/s{s}"),
            source: SourceId(s),
            bits: 4_000,
            deadline: Ticks(300_000),
            density: DensityBound::new(a, w).expect("bound"),
        });
    }
    MessageSet::new(z, classes).expect("set")
}

fn main() {
    let medium = MediumConfig::ethernet();
    let z = 8u32;
    let mut csv = Csv::create(
        &results_dir().join("exp_baselines.csv"),
        &[
            "load",
            "protocol",
            "scheduled",
            "delivered",
            "misses",
            "miss_ratio",
            "mean_latency",
            "max_latency",
            "p50_latency",
            "p95_latency",
            "p99_latency",
            "xi_observed",
            "utilization",
            "collisions",
        ],
    )
    .expect("create csv");

    println!("E8 — protocol comparison, {z} sources, urgent (300 us) + bulk (4 ms) classes, burst size sweep");
    println!(
        "{:>5} {:<14} {:>6} {:>7} {:>9} {:>12} {:>12} {:>7} {:>10}",
        "load", "protocol", "sched", "misses", "miss%", "mean_lat", "max_lat", "util", "collisions"
    );

    // Build the full (load × protocol) grid, then fan it out over the
    // worker pool. Per-job seeds derive from (master_seed=42, job index),
    // so the stochastic BEB rows are reproducible for any --jobs value.
    let loads = [1u64, 2, 3, 4];
    let mut grid = SweepGrid::new();
    let mut offered_loads = Vec::new();
    for a in loads {
        let set = workload(z, a);
        let load = set.offered_load();
        offered_loads.push(load);
        let horizon = Ticks(set.classes()[0].density.w.as_u64() * 6);
        let schedule = ScheduleBuilder::peak_load(&set).build(horizon).expect("schedule");
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 42),
            ProtocolKind::CsmaCd(QueueDiscipline::Edf, 42),
            ProtocolKind::Dcr(QueueDiscipline::Edf),
            ProtocolKind::NpEdf,
        ];
        grid.push_comparison(
            &format!("{load:.2}"),
            &kinds,
            &set,
            &schedule,
            medium,
            Ticks(60_000_000_000),
        );
    }
    let kinds_per_load = grid.len() / loads.len();
    let report = grid.run(SweepConfig::resolve(jobs_flag_from_args(), 42));
    let all = report.summaries().expect("runs");

    let mut miss_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut summaries_by_load = Vec::new();
    for (i, &load) in offered_loads.iter().enumerate() {
        let summaries = all[i * kinds_per_load..(i + 1) * kinds_per_load].to_vec();
        for s in &summaries {
            println!(
                "{:>5.2} {:<14} {:>6} {:>7} {:>9.4} {:>12.0} {:>12} {:>7.3} {:>10}",
                load,
                s.protocol,
                s.scheduled,
                s.misses,
                s.miss_ratio,
                s.mean_latency,
                s.max_latency,
                s.utilization,
                s.collisions
            );
            csv.row(&[
                load.to_string(),
                s.protocol.clone(),
                s.scheduled.to_string(),
                s.delivered.to_string(),
                s.misses.to_string(),
                format!("{:.6}", s.miss_ratio),
                format!("{:.1}", s.mean_latency),
                s.max_latency.to_string(),
                s.p50_latency.to_string(),
                s.p95_latency.to_string(),
                s.p99_latency.to_string(),
                s.xi_observed.to_string(),
                format!("{:.4}", s.utilization),
                s.collisions.to_string(),
            ])
            .expect("row");
            miss_series
                .entry(s.protocol.clone())
                .or_default()
                .push((load, 100.0 * s.miss_ratio));
        }
        summaries_by_load.push((load, summaries));
        println!();
    }
    csv.finish().expect("flush");
    write_sweep_stats(&results_dir().join("exp_baselines_sweep_stats.csv"), &report)
        .expect("sweep stats");
    println!("{}", report.perf_line());

    let series: Vec<Series> = miss_series
        .iter()
        .map(|(name, pts)| Series::new(name, pts.clone()))
        .collect();
    println!(
        "{}",
        ascii_chart("deadline miss % vs offered load", &series, 60, 14)
    );

    // Shape assertions (who wins, roughly where):
    for (load, summaries) in &summaries_by_load {
        let get = |name: &str| {
            summaries
                .iter()
                .find(|s| s.protocol == name)
                .expect("protocol present")
        };
        let ddcr = get("ddcr");
        let oracle = get("np-edf");
        assert!(
            oracle.max_latency <= ddcr.max_latency,
            "oracle beaten at load {load}"
        );
        assert_eq!(oracle.misses, 0, "oracle missed at load {load}");
    }
    let (last_load, last) = summaries_by_load.last().expect("runs");
    let beb = last.iter().find(|s| s.protocol == "csma-cd/fifo").expect("beb");
    let ddcr = last.iter().find(|s| s.protocol == "ddcr").expect("ddcr");
    println!(
        "at load {last_load:.2}: csma-cd/fifo misses = {}, ddcr misses = {}",
        beb.misses, ddcr.misses
    );
    assert!(
        beb.misses >= ddcr.misses,
        "expected BEB to miss at least as often as DDCR at high load"
    );
    assert!(
        beb.misses > 0,
        "expected the stochastic baseline to miss urgent deadlines at the top of the sweep"
    );
    println!("expected shape (deadline-aware deterministic beats stochastic): REPRODUCED");
    println!("wrote results/exp_baselines.csv");
}
