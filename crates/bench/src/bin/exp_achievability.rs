//! **Experiment E12 — achievability of the Eq. (1) worst case**: exhaustive
//! verification that `ξ_k^t` is *tight* — some placement of `k` active
//! leaves actually costs that many slots — on every small tree where full
//! enumeration of `binomial(t, k)` subsets is affordable.
//!
//! This closes the loop between the closed forms (E1–E3) and the live
//! search: the bound is not merely an upper bound, it is attained, and the
//! witness subsets are printed. Writes `results/exp_achievability.csv`.

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_tree::{closed_form, search, TreeShape};

fn main() {
    let shapes = [
        (2u64, 2u32),
        (2, 3),
        (2, 4),
        (3, 2),
        (3, 3),
        (4, 2),
        (5, 2),
    ];
    let mut csv = Csv::create(
        &results_dir().join("exp_achievability.csv"),
        &["m", "t", "k", "xi", "worst_measured", "achieved", "witness"],
    )
    .expect("create csv");

    println!("E12 — exhaustive tightness of xi_k^t on small trees");
    println!("{:>3} {:>5} {:>4} {:>6} {:>9} {:>9}  witness", "m", "t", "k", "xi", "measured", "achieved");
    let mut all_achieved = true;
    for &(m, n) in &shapes {
        let shape = TreeShape::new(m, n).expect("shape");
        let t = shape.leaves();
        for k in 0..=t {
            let xi = closed_form::xi_closed(shape, k).expect("xi");
            let (worst, witness) = search::worst_case_exhaustive(shape, k).expect("exhaustive");
            let achieved = worst == xi;
            all_achieved &= achieved;
            if k <= 6 || k == t || !achieved {
                println!(
                    "{m:>3} {t:>5} {k:>4} {xi:>6} {worst:>9} {achieved:>9}  {witness:?}"
                );
            }
            csv.row(&[
                m.to_string(),
                t.to_string(),
                k.to_string(),
                xi.to_string(),
                worst.to_string(),
                achieved.to_string(),
                format!("{witness:?}").replace(',', ";"),
            ])
            .expect("row");
        }
    }
    csv.finish().expect("flush");
    println!();
    println!(
        "xi_k^t achieved by an explicit subset for every (m, t, k) tested: {}",
        if all_achieved { "REPRODUCED" } else { "FAILED" }
    );
    assert!(all_achieved);
    println!("wrote results/exp_achievability.csv");
}
