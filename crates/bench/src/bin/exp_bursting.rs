//! **Experiment E11 — §5 packet bursting**: half-duplex Gigabit Ethernet
//! allows a source to transmit its first k EDF-ranked messages without
//! relinquishing the channel, up to 512 bytes. The paper argues *"this
//! will entail much less deadline inversions than those resulting from
//! using deadline equivalence classes"*.
//!
//! A workload of small same-source message trains shows both effects:
//! bursting collapses per-message resolution overhead (fewer search slots,
//! lower mean latency) and reduces deadline inversions because a source's
//! EDF-consecutive messages leave back to back instead of re-entering the
//! class-quantised tree. Writes `results/exp_bursting.csv`.

use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_core::BurstConfig;
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn main() {
    let z = 8u32;
    // Small frames (100 bytes) in bursts of 4 per source — the regime
    // packet bursting targets.
    let deadline = Ticks(500_000);
    let base = scenario::uniform(z, 800, deadline, 0.3).expect("scenario");
    // Re-declare with a = 4 bursts by scaling the window up 4x.
    let set = {
        let mut classes = base.classes().to_vec();
        for class in &mut classes {
            class.density = ddcr_traffic::DensityBound::new(
                4,
                Ticks(class.density.w.as_u64() * 4),
            )
            .expect("bound");
        }
        ddcr_traffic::MessageSet::new(z, classes).expect("set")
    };
    let horizon = Ticks(set.classes()[0].density.w.as_u64() * 8);
    let schedule = ScheduleBuilder::peak_load(&set).build(horizon).expect("schedule");

    let medium = MediumConfig::gigabit_ethernet();
    let plain = default_ddcr_config(&set, &medium);
    let bursting = plain.with_bursting(BurstConfig::default());

    let mut csv = Csv::create(
        &results_dir().join("exp_bursting.csv"),
        &[
            "variant",
            "misses",
            "mean_latency",
            "max_latency",
            "collisions",
            "makespan",
            "utilization",
        ],
    )
    .expect("create csv");

    println!("E11 — packet bursting on half-duplex Gigabit Ethernet ({z} sources, 100-byte trains)");
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>11} {:>12} {:>7}",
        "variant", "misses", "mean_lat", "max_lat", "collisions", "makespan", "util"
    );
    let mut summaries = Vec::new();
    for (name, config) in [("plain", plain), ("bursting", bursting)] {
        let summary = run_protocol(
            &ProtocolKind::Ddcr(config),
            &set,
            &schedule,
            medium,
            Ticks(60_000_000_000),
        )
        .expect("run");
        assert!(summary.completed, "{name} did not drain");
        println!(
            "{:<12} {:>7} {:>12.0} {:>12} {:>11} {:>12} {:>7.3}",
            name,
            summary.misses,
            summary.mean_latency,
            summary.max_latency,
            summary.collisions,
            summary.total_ticks,
            summary.utilization
        );
        csv.row(&[
            name.to_owned(),
            summary.misses.to_string(),
            format!("{:.1}", summary.mean_latency),
            summary.max_latency.to_string(),
            summary.collisions.to_string(),
            summary.total_ticks.to_string(),
            format!("{:.4}", summary.utilization),
        ])
        .expect("row");
        summaries.push(summary);
    }
    csv.finish().expect("flush");

    let plain_run = &summaries[0];
    let burst_run = &summaries[1];
    println!();
    println!(
        "mean latency: plain {:.0} -> bursting {:.0} ticks ({:.1}% lower)",
        plain_run.mean_latency,
        burst_run.mean_latency,
        100.0 * (1.0 - burst_run.mean_latency / plain_run.mean_latency)
    );
    assert!(
        burst_run.mean_latency <= plain_run.mean_latency,
        "bursting should not increase mean latency on small-frame trains"
    );
    assert!(
        burst_run.misses <= plain_run.misses,
        "bursting should not increase misses"
    );
    println!("paper's §5 claim (bursting reduces per-message resolution cost): REPRODUCED");
    println!("wrote results/exp_bursting.csv");
}
