//! **Experiment E16 — federation scaling over bridged segments.**
//!
//! Fixes the saturated E15 workload (32-participant videoconference on
//! gigabit Ethernet) and sweeps the segment count 1–4 with every fourth
//! class bridged to the next segment, reporting for each fabric width:
//!
//! * the deterministic outcome (scheduled / delivered / misses /
//!   handoffs / rounds / drained) — identical for every `--jobs`,
//!   asserted on each row;
//! * wall-clock for serial (1 worker) vs parallel (`--jobs`, default all
//!   cores) execution of the same federation — the speedup the
//!   work-stealing pool buys on this host;
//! * for N=1, a bitwise cross-check against the single-bus engine (the
//!   epoch-round chunking must be invisible).
//!
//! Writes `results/exp_federation.csv` (deterministic columns only;
//! timing goes to stdout).

use ddcr_bench::report::Csv;
use ddcr_bench::results_dir;
use ddcr_bench::sweep::{self, SweepConfig};
use ddcr_core::{federate, multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::federation::FederationOptions;
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

const PARTICIPANTS: u32 = 32;
const TRANSIT_EVERY: u32 = 4;
const HORIZON: Ticks = Ticks(8_000_000);
const EPOCH: Ticks = Ticks(1_000_000);
const BUDGET: Ticks = Ticks(400_000_000_000);

fn main() {
    let medium = MediumConfig::gigabit_ethernet();
    let jobs = SweepConfig::resolve(sweep::jobs_flag_from_args(), 42).workers;
    let set = scenario::videoconference(PARTICIPANTS).expect("scenario");
    let c = network::recommended_class_width(&set, 64, &medium);
    let config = DdcrConfig::for_sources(PARTICIPANTS, c).expect("config");
    let allocation =
        StaticAllocation::round_robin(config.static_tree, PARTICIPANTS).expect("allocation");

    let mut csv = Csv::create(
        &results_dir().join("exp_federation.csv"),
        &[
            "segments",
            "bridged_classes",
            "scheduled",
            "delivered",
            "misses",
            "handoffs",
            "rounds",
            "drained",
        ],
    )
    .expect("create csv");

    println!(
        "E16 — federation scaling, videoconference z={PARTICIPANTS} on gigabit \
         (load {:.3}, epoch {} ticks, transit every {TRANSIT_EVERY}th class)",
        set.offered_load(),
        EPOCH.as_u64(),
    );
    println!(
        "{:>8} {:>8} {:>9} {:>9} {:>7} {:>8} {:>7} {:>8} {:>9} {:>9} {:>8}",
        "segments", "bridged", "scheduled", "delivered", "misses", "handoffs", "rounds",
        "drained", "serial_s", "par_s", "speedup"
    );

    for segments in 1..=4usize {
        let assignment = multibus::balance_by_load(&set, segments);
        let routes = federate::transit_routes(&set, &assignment, TRANSIT_EVERY);
        let schedule = ScheduleBuilder::peak_load(&set).build(HORIZON).expect("schedule");
        let n = schedule.len();
        let run = |workers: usize| {
            let mut options = FederationOptions::new(EPOCH, BUDGET);
            options.workers = workers;
            federate::run_segments(
                &set,
                schedule.clone(),
                &assignment,
                &routes,
                &config,
                &allocation,
                medium,
                &options,
            )
            .expect("federated run")
        };
        let serial = run(1);
        let parallel = run(jobs);

        // Worker-count invariance, checked on every row.
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.handoffs, parallel.handoffs);
        assert_eq!(serial.segments.len(), parallel.segments.len());
        for (a, b) in serial.segments.iter().zip(&parallel.segments) {
            assert_eq!(a.stats, b.stats, "segment results must not depend on --jobs");
        }

        if segments == 1 {
            // The epoch-round chunking must be invisible: one segment is
            // the single-bus engine, bit for bit.
            let reference = network::run(
                &set,
                schedule.clone(),
                &config,
                &allocation,
                medium,
                network::RunLimit::Completion(BUDGET),
            )
            .expect("single-bus reference");
            assert_eq!(
                parallel.segments[0].stats, reference,
                "N=1 must match the single-bus engine"
            );
        }

        let delivered = parallel.delivered();
        let misses = parallel.deadline_misses();
        let handoffs = parallel.handoffs;
        let rounds = parallel.rounds;
        let drained = parallel.completed();
        let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
        println!(
            "{segments:>8} {:>8} {n:>9} {delivered:>9} {misses:>7} {handoffs:>8} \
             {rounds:>7} {drained:>8} {:>9.3} {:>9.3} {speedup:>7.2}x",
            routes.len(),
            serial.wall.as_secs_f64(),
            parallel.wall.as_secs_f64(),
        );
        csv.row(&[
            segments.to_string(),
            routes.len().to_string(),
            n.to_string(),
            delivered.to_string(),
            misses.to_string(),
            handoffs.to_string(),
            rounds.to_string(),
            drained.to_string(),
        ])
        .expect("row");
    }
    csv.finish().expect("flush");

    println!();
    println!(
        "federation: results bitwise invariant under --jobs, N=1 identical to the \
         single-bus engine"
    );
    println!("wrote results/exp_federation.csv");
}
