//! CSV output and terminal plotting for experiment binaries.

use std::fmt::Display;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Quotes a cell per RFC 4180 when (and only when) it contains a comma,
/// a double quote, or a CR/LF; internal quotes are doubled. Plain cells
/// pass through untouched, so numeric output stays byte-stable.
fn escape_cell(cell: &str) -> String {
    if cell.contains(['"', ',', '\r', '\n']) {
        let mut quoted = String::with_capacity(cell.len() + 2);
        quoted.push('"');
        for ch in cell.chars() {
            if ch == '"' {
                quoted.push('"');
            }
            quoted.push(ch);
        }
        quoted.push('"');
        quoted
    } else {
        cell.to_owned()
    }
}

/// A simple CSV writer: header once, then rows of `Display`able cells.
/// Cells that contain a delimiter, quote, or line break are quoted per
/// RFC 4180; everything else is written verbatim.
#[derive(Debug)]
pub struct Csv {
    out: BufWriter<File>,
}

impl Csv {
    /// Creates (truncates) the file and writes the header row.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn create(path: &Path, header: &[&str]) -> std::io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        let rendered: Vec<String> = header.iter().map(|h| escape_cell(h)).collect();
        writeln!(out, "{}", rendered.join(","))?;
        Ok(Csv { out })
    }

    /// Writes one row.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn row<D: Display>(&mut self, cells: &[D]) -> std::io::Result<()> {
        let rendered: Vec<String> = cells
            .iter()
            .map(|c| escape_cell(&c.to_string()))
            .collect();
        writeln!(self.out, "{}", rendered.join(","))
    }

    /// Flushes buffered rows.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Writes per-job sweep performance metadata (wall-clock, table-cache
/// traffic) to its own CSV, **separate** from the experiment's result CSV:
/// timings and cache attribution vary with worker interleaving, while the
/// result CSV must stay byte-identical across `--jobs` settings. A final
/// `TOTAL` row carries the aggregate wall-clock, cpu time, and cache
/// counters.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_sweep_stats(path: &Path, report: &crate::sweep::SweepReport) -> std::io::Result<()> {
    let mut csv = Csv::create(
        path,
        &["job", "label", "protocol", "seed", "wall_ms", "cache_hits", "cache_misses"],
    )?;
    for o in &report.outcomes {
        csv.row(&[
            o.index.to_string(),
            o.label.clone(),
            o.protocol.clone(),
            o.seed.to_string(),
            format!("{:.3}", o.wall.as_secs_f64() * 1e3),
            o.cache.hits.to_string(),
            o.cache.misses.to_string(),
        ])?;
    }
    let totals = report.cache_totals();
    csv.row(&[
        "TOTAL".to_owned(),
        format!("workers={}", report.workers),
        format!("cpu_ms={:.3}", report.cpu_time().as_secs_f64() * 1e3),
        String::new(),
        format!("{:.3}", report.wall_clock.as_secs_f64() * 1e3),
        totals.hits.to_string(),
        totals.misses.to_string(),
    ])?;
    csv.finish()
}

/// Like [`write_sweep_stats`] but for a generic [`crate::sweep::IndexedReport`]
/// (experiments whose jobs return something other than a `RunSummary`);
/// `labels[i]` names job `i`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_indexed_stats<T>(
    path: &Path,
    labels: &[String],
    report: &crate::sweep::IndexedReport<T>,
) -> std::io::Result<()> {
    let mut csv = Csv::create(
        path,
        &["job", "label", "seed", "wall_ms", "cache_hits", "cache_misses"],
    )?;
    for o in &report.outcomes {
        csv.row(&[
            o.index.to_string(),
            labels.get(o.index).cloned().unwrap_or_default(),
            o.seed.to_string(),
            format!("{:.3}", o.wall.as_secs_f64() * 1e3),
            o.cache.hits.to_string(),
            o.cache.misses.to_string(),
        ])?;
    }
    let totals = report.cache_totals();
    csv.row(&[
        "TOTAL".to_owned(),
        format!("workers={}", report.workers),
        format!("cpu_ms={:.3}", report.cpu_time().as_secs_f64() * 1e3),
        format!("{:.3}", report.wall_clock.as_secs_f64() * 1e3),
        totals.hits.to_string(),
        totals.misses.to_string(),
    ])?;
    csv.finish()
}

/// One named series for [`ascii_chart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; its first character is the plot glyph.
    pub label: String,
    /// `(x, y)` points, assumed sorted by `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from anything convertible to `f64` pairs.
    pub fn new(label: &str, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Series {
            label: label.to_owned(),
            points: points.into_iter().collect(),
        }
    }
}

/// Renders series as a fixed-size ASCII chart — enough to eyeball the
/// *shape* of a figure (concavity, crossovers, who dominates) in a
/// terminal; exact values go to CSV.
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    if all.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (x_min, x_max) = min_max(all.iter().map(|p| p.0));
    let (y_min, y_max) = min_max(all.iter().map(|p| p.1));
    let x_span = (x_max - x_min).max(f64::EPSILON);
    let y_span = (y_max - y_min).max(f64::EPSILON);
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            if grid[row][col] == ' ' || grid[row][col] == glyph {
                grid[row][col] = glyph;
            } else {
                grid[row][col] = '#'; // overlap
            }
        }
    }
    for (i, line) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_max:>10.1} ")
        } else if i == height - 1 {
            format!("{y_min:>10.1} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&y_label);
        out.push('|');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}x: {:.1} … {:.1}    legend: {}\n",
        " ".repeat(11),
        x_min,
        x_max,
        series
            .iter()
            .map(|s| format!("{}={}", s.label.chars().next().unwrap_or('*'), s.label))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_header_and_rows() {
        let dir = std::env::temp_dir().join("ddcr_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut csv = Csv::create(&path, &["k", "xi"]).unwrap();
        csv.row(&[2, 11]).unwrap();
        csv.row(&[4, 19]).unwrap();
        csv.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,xi\n2,11\n4,19\n");
    }

    /// Minimal RFC-4180 reader used only to check `Csv` round-trips:
    /// splits records honouring quoted cells (doubled quotes, embedded
    /// commas and newlines).
    fn parse_csv(input: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut quoted = false;
        let mut chars = input.chars().peekable();
        while let Some(ch) = chars.next() {
            if quoted {
                match ch {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    '"' => quoted = false,
                    other => cell.push(other),
                }
            } else {
                match ch {
                    '"' => quoted = true,
                    ',' => row.push(std::mem::take(&mut cell)),
                    '\n' => {
                        row.push(std::mem::take(&mut cell));
                        rows.push(std::mem::take(&mut row));
                    }
                    '\r' => {}
                    other => cell.push(other),
                }
            }
        }
        if !cell.is_empty() || !row.is_empty() {
            row.push(cell);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn hostile_cells_round_trip_through_rfc_4180_quoting() {
        let dir = std::env::temp_dir().join("ddcr_csv_hostile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hostile.csv");
        let hostile = [
            "plain".to_owned(),
            "comma, inside".to_owned(),
            "quote \" inside".to_owned(),
            "both \",\" kinds".to_owned(),
            "line\nbreak".to_owned(),
            "crlf\r\nbreak".to_owned(),
            "\"leading and trailing\"".to_owned(),
            String::new(),
        ];
        let mut csv = Csv::create(&path, &["label,with,commas", "plain"]).unwrap();
        csv.row(&hostile[..2]).unwrap();
        csv.row(&hostile[2..4]).unwrap();
        csv.row(&hostile[4..6]).unwrap();
        csv.row(&hostile[6..8]).unwrap();
        csv.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let rows = parse_csv(&content);
        assert_eq!(rows[0], vec!["label,with,commas", "plain"]);
        assert_eq!(rows[1], &hostile[..2]);
        assert_eq!(rows[2], &hostile[2..4]);
        assert_eq!(rows[3], &hostile[4..6]);
        assert_eq!(rows[4], &hostile[6..8]);
        // Plain cells stay unquoted: downstream byte-equality checks on
        // numeric sweep CSVs must not change.
        assert!(content.contains(",plain\n"));
        assert!(!content.contains("\"plain\""));
    }

    #[test]
    fn chart_renders_all_series() {
        let chart = ascii_chart(
            "test",
            &[
                Series::new("exact", [(0.0, 0.0), (1.0, 1.0)]),
                Series::new("bound", [(0.0, 1.0), (1.0, 2.0)]),
            ],
            20,
            8,
        );
        assert!(chart.contains('e'));
        assert!(chart.contains('b'));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn chart_handles_empty_input() {
        let chart = ascii_chart("empty", &[], 10, 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let chart = ascii_chart("flat", &[Series::new("f", [(0.0, 5.0), (1.0, 5.0)])], 10, 4);
        assert!(chart.contains('f'));
    }
}
