//! Engine hot-path benchmark suite and the `BENCH_engine.json` perf gate.
//!
//! Three families of measurements, mirroring the Criterion bench
//! `benches/engine.rs` but runnable standalone (CLI `bench-engine`, the
//! `bench_engine` binary, CI):
//!
//! 1. **Idle fast-forward** — an idle-heavy scenario (low load, ≥ 32
//!    stations) run through the optimized engine and through the retained
//!    reference stepper (fast-forward and the active-set scheduler both
//!    off, the pre-overhaul poll-everyone slot loop). Reports slot
//!    throughput for both and their ratio; the gate requires the speedup
//!    to be ≥ 2× and the two runs to produce identical [`ChannelStats`].
//! 2. **Loaded fast-forward** — a busy-heavy scenario (clustered
//!    small-message arrivals draining through bursting DDCR) run with all
//!    three fast-forward switches plus the active-set scheduler on versus
//!    the full reference stepper (all four disabled), across a
//!    stations × load grid. The gate requires ≥ 5× at load 0.5 **and** at
//!    load 0.8 on the ≥ 32-station scenario and identical statistics
//!    everywhere.
//! 3. **Contention fast-forward** — a contention-heavy scenario
//!    (simultaneous arrival waves forcing whole tree searches, no
//!    bursting) run with the contention tier on versus off while the idle
//!    and busy tiers stay on in both runs, isolating the third tier's
//!    contribution. The gate requires identical statistics and proof via
//!    telemetry that the tier actually engaged (`search_skip_runs > 0`).
//! 4. **Protocol drain** — DDCR, CSMA-CD and NP-EDF draining the same
//!    workload at several station counts and loads; reports simulated
//!    ticks per wall-clock second.
//! 5. **Station scale** — a sparse DDCR workload (one backlogged station
//!    at a time) swept across station counts 64→4096, run with the
//!    active-set scheduler on versus off while all three fast-forward
//!    tiers stay on in both runs, isolating the fourth tier's
//!    contribution. The gate requires ≥ 5× wall-clock at n ≥ 2048 and
//!    identical statistics at every grid point; the report also carries
//!    the poll-count telemetry (`polls` / `station_slots`) showing the
//!    tier visits only contenders.
//! 6. **EDF queue ops** — `EdfQueue` push/pop throughput at benchmark
//!    scale (exercises the `O(log n)` binary-heap path).
//!
//! All wall-clock numbers are single-machine and profile-dependent; the
//! deterministic fields (`slots`, `delivered`, `equivalent`) are exact.
//! See `docs/PERF.md` for the report schema and gating rules.

use crate::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use crate::json::Json;
use ddcr_baseline::QueueDiscipline;
use ddcr_core::{network, BurstConfig, EdfQueue, StaticAllocation};
use ddcr_sim::{ChannelStats, ClassId, MediumConfig, Message, MessageId, SourceId, Ticks};
use ddcr_traffic::{scenario, MessageSet, ScheduleBuilder};
use std::time::Instant;

/// Current `BENCH_engine.json` schema version.
///
/// Version 3 added the `contention_fast_forward` section and promoted the
/// loaded `(≥ 32, 0.8)` grid point from informational to gated.
/// Version 4 added the `multichannel` section: parallel-channel wall-clock
/// scaling (gated on hosts with ≥ 4 cores), worker-count equivalence, and
/// the pinned §3.1 capacity win (z=32 infeasible at C=1, provable and
/// deadline-miss-free at C=4).
/// Version 5 added the `federation` section: epoch-round bridged-segment
/// scaling on the work-stealing pool — worker-count equivalence and N=1 ≡
/// single-bus enforced everywhere, wall-clock speedup gated on hosts with
/// ≥ [`MIN_GATED_PARALLELISM`] cores.
/// Version 6 added the `station_scale` section: the active-set scheduler
/// swept across station counts on a sparse workload, gated ≥
/// [`MIN_STATION_SCALE_SPEEDUP`]× at n ≥ [`STATION_SCALE_GATED_AT`] with
/// equivalence and completion enforced at every grid point.
pub const SCHEMA_VERSION: u64 = 6;

/// Default report location (relative to the workspace root, like
/// `results/`).
pub const REPORT_PATH: &str = "BENCH_engine.json";

/// Gate threshold: the optimized engine must clear at least this slot
/// throughput multiple over the reference stepper on the idle-heavy
/// scenario.
pub const MIN_IDLE_SPEEDUP: f64 = 2.0;

/// Gate threshold: with all three fast-forward switches on, the engine
/// must clear at least this wall-clock multiple over the full reference
/// stepper on the loaded (≥ 32 stations) bursting scenario, at load 0.5
/// and at load 0.8.
pub const MIN_LOADED_SPEEDUP: f64 = 5.0;

/// Gate threshold: running a saturated 4-channel workload on the
/// multichannel worker pool must clear at least this wall-clock multiple
/// over serial channel execution. Only enforced when the measuring host
/// reports at least [`MIN_GATED_PARALLELISM`] cores — a 4-way speedup
/// cannot exist on a 1-core box, and the report records the host width so
/// the checker can tell the cases apart. Equivalence, completion, and the
/// capacity booleans are enforced on every host.
pub const MIN_MULTICHANNEL_SPEEDUP: f64 = 2.0;

/// Host parallelism below which the multichannel wall-clock gate is
/// informational instead of enforced.
pub const MIN_GATED_PARALLELISM: u64 = 4;

/// Gate threshold: running the bridged-segment federation on the
/// work-stealing pool must clear at least this wall-clock multiple over
/// serial segment execution. Enforced only when the measuring host
/// reports at least [`MIN_GATED_PARALLELISM`] cores, exactly like the
/// multichannel gate; equivalence, completion, bridge traffic, and the
/// N=1 ≡ single-bus identity are enforced on every host.
pub const MIN_FEDERATION_SPEEDUP: f64 = 2.0;

/// Gate threshold: with the active-set scheduler on, the engine must
/// clear at least this wall-clock multiple over the active-set-off engine
/// (all three fast-forward tiers held on in both runs) on the sparse
/// station-scale sweep, at every grid point with at least
/// [`STATION_SCALE_GATED_AT`] stations.
pub const MIN_STATION_SCALE_SPEEDUP: f64 = 5.0;

/// Station count at and above which the station-scale wall-clock gate
/// binds. Below it the speedup is informational: the O(n) cost the tier
/// removes is too small to dominate wall clock at modest populations.
pub const STATION_SCALE_GATED_AT: u64 = 2048;

/// How much work the suite does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: seconds of wall clock, small horizons.
    Smoke,
    /// Local-sized: larger horizons and an extra station count.
    Full,
}

impl Profile {
    /// Parses `"smoke"` / `"full"`.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized argument.
    pub fn from_arg(arg: &str) -> Result<Profile, String> {
        match arg {
            "smoke" => Ok(Profile::Smoke),
            "full" => Ok(Profile::Full),
            other => Err(format!("unknown profile '{other}' (expected smoke|full)")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }

    /// Timing repeats per measurement (minimum taken, to shed scheduler
    /// noise).
    fn repeats(self) -> usize {
        match self {
            Profile::Smoke => 2,
            Profile::Full => 3,
        }
    }

    fn idle_slots(self) -> u64 {
        match self {
            Profile::Smoke => 400_000,
            Profile::Full => 4_000_000,
        }
    }

    /// `(stations, load)` grid for the loaded fast-forward measurement.
    /// Always includes the gated `(32, 0.5)` and `(32, 0.8)` points.
    fn loaded_grid(self) -> Vec<(u32, f64)> {
        match self {
            Profile::Smoke => vec![(8, 0.5), (32, 0.3), (32, 0.5), (32, 0.8)],
            Profile::Full => vec![
                (8, 0.3),
                (8, 0.5),
                (8, 0.8),
                (32, 0.3),
                (32, 0.5),
                (32, 0.8),
                (64, 0.5),
            ],
        }
    }

    /// Arrival clusters per station in the loaded scenario.
    fn loaded_clusters(self) -> u64 {
        match self {
            Profile::Smoke => 16,
            Profile::Full => 48,
        }
    }

    /// Simultaneous-arrival waves in the contention scenario.
    fn contention_waves(self) -> u64 {
        match self {
            Profile::Smoke => 24,
            Profile::Full => 96,
        }
    }

    fn drain_grid(self) -> Vec<(u32, f64)> {
        match self {
            Profile::Smoke => vec![(8, 0.1), (8, 0.6), (32, 0.1), (32, 0.6)],
            Profile::Full => vec![
                (8, 0.1),
                (8, 0.6),
                (32, 0.1),
                (32, 0.6),
                (64, 0.1),
                (64, 0.6),
            ],
        }
    }

    fn queue_messages(self) -> usize {
        match self {
            Profile::Smoke => 20_000,
            Profile::Full => 200_000,
        }
    }

    /// Station counts for the active-set station-scale sweep. Always
    /// includes the gated [`STATION_SCALE_GATED_AT`] point.
    fn station_scale_grid(self) -> Vec<u32> {
        match self {
            Profile::Smoke => vec![64, 512, 2048],
            Profile::Full => vec![64, 256, 1024, 2048, 4096],
        }
    }

    /// Messages per station in the station-scale sweep (the per-station
    /// load is fixed; the population is what sweeps).
    fn station_scale_rounds(self) -> u64 {
        match self {
            Profile::Smoke => 2,
            Profile::Full => 4,
        }
    }

    /// Arrival horizon for the multichannel scaling workload, in ticks.
    /// Long enough that per-channel simulation dominates worker-pool
    /// setup, so the serial/parallel ratio measures real scaling.
    fn multichannel_horizon(self) -> Ticks {
        match self {
            Profile::Smoke => Ticks(24_000_000),
            Profile::Full => Ticks(96_000_000),
        }
    }

    /// Arrival horizon for the federation scaling workload, in ticks.
    fn federation_horizon(self) -> Ticks {
        match self {
            Profile::Smoke => Ticks(24_000_000),
            Profile::Full => Ticks(96_000_000),
        }
    }
}

/// Result of the idle fast-forward measurement.
#[derive(Debug, Clone)]
pub struct IdleResult {
    /// Stations on the channel.
    pub stations: u32,
    /// Offered load of the scenario.
    pub load: f64,
    /// Horizon in ticks (`slots * slot_ticks`).
    pub horizon_ticks: u64,
    /// Slots the reference stepper walks.
    pub slots: u64,
    /// Optimized wall time (min over repeats), nanoseconds.
    pub fast_wall_ns: u64,
    /// Reference wall time (min over repeats), nanoseconds.
    pub reference_wall_ns: u64,
    /// Whether fast and reference runs produced identical statistics.
    pub equivalent: bool,
}

impl IdleResult {
    /// Reference-over-fast wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_wall_ns as f64 / self.fast_wall_ns.max(1) as f64
    }

    /// Slots per second for a wall time.
    fn slots_per_sec(&self, wall_ns: u64) -> f64 {
        self.slots as f64 * 1e9 / wall_ns.max(1) as f64
    }
}

/// Result of one loaded fast-forward measurement (bursting DDCR draining
/// clustered small-message arrivals, fully optimized engine vs the full
/// reference stepper).
#[derive(Debug, Clone)]
pub struct LoadedResult {
    /// Stations on the channel.
    pub stations: u32,
    /// Offered load of the scenario.
    pub load: f64,
    /// Messages scheduled (all delivered when `completed`).
    pub messages: u64,
    /// Decision slots the reference stepper resolves
    /// (silence + collisions + successful transmissions).
    pub slots: u64,
    /// Optimized wall time (min over repeats), nanoseconds.
    pub fast_wall_ns: u64,
    /// Reference wall time (min over repeats), nanoseconds.
    pub reference_wall_ns: u64,
    /// Whether fast and reference runs produced identical statistics.
    pub equivalent: bool,
    /// Whether both runs drained the workload inside the budget.
    pub completed: bool,
}

impl LoadedResult {
    /// Reference-over-fast wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_wall_ns as f64 / self.fast_wall_ns.max(1) as f64
    }

    /// Slots per second for a wall time.
    fn slots_per_sec(&self, wall_ns: u64) -> f64 {
        self.slots as f64 * 1e9 / wall_ns.max(1) as f64
    }
}

/// Result of the contention fast-forward measurement (simultaneous
/// arrival waves forcing whole tree searches, contention tier on vs off
/// with the idle and busy tiers held on in both runs).
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// Stations on the channel.
    pub stations: u32,
    /// Simultaneous-arrival waves in the workload.
    pub waves: u64,
    /// Messages scheduled (all delivered when `completed`).
    pub messages: u64,
    /// Decision slots the contention-off run resolves
    /// (silence + collisions + successful transmissions).
    pub slots: u64,
    /// Contention-tier-on wall time (min over repeats), nanoseconds.
    pub fast_wall_ns: u64,
    /// Contention-tier-off wall time (min over repeats), nanoseconds.
    pub reference_wall_ns: u64,
    /// Whether the two runs produced identical statistics.
    pub equivalent: bool,
    /// Whether both runs drained the workload inside the budget.
    pub completed: bool,
    /// Contention fast-forward runs the tier resolved (telemetry proof
    /// the tier engaged on this workload).
    pub search_skip_runs: u64,
    /// Slots resolved inside those runs.
    pub search_skipped_slots: u64,
}

impl ContentionResult {
    /// Tier-off-over-tier-on wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_wall_ns as f64 / self.fast_wall_ns.max(1) as f64
    }

    /// Slots per second for a wall time.
    fn slots_per_sec(&self, wall_ns: u64) -> f64 {
        self.slots as f64 * 1e9 / wall_ns.max(1) as f64
    }
}

/// Result of one protocol drain measurement.
#[derive(Debug, Clone)]
pub struct DrainResult {
    /// Protocol name (harness naming).
    pub protocol: String,
    /// Stations on the channel.
    pub stations: u32,
    /// Offered load.
    pub load: f64,
    /// Wall time (min over repeats), nanoseconds.
    pub wall_ns: u64,
    /// Simulated ticks covered by the run.
    pub sim_ticks: u64,
    /// Messages delivered.
    pub delivered: usize,
    /// Whether the workload drained inside the budget.
    pub completed: bool,
}

/// Result of one station-scale measurement (sparse DDCR workload with one
/// backlogged station at a time, active-set scheduler on vs off with all
/// three fast-forward tiers held on in both runs — the speedup isolates
/// the fourth tier's contribution).
#[derive(Debug, Clone)]
pub struct StationScaleResult {
    /// Stations on the channel.
    pub stations: u32,
    /// Messages scheduled (all delivered when `completed`).
    pub messages: u64,
    /// Decision slots the run resolves (identical in both runs).
    pub slots: u64,
    /// Active-set-on wall time (min over repeats), nanoseconds.
    pub active_wall_ns: u64,
    /// Active-set-off wall time (min over repeats), nanoseconds.
    pub baseline_wall_ns: u64,
    /// Whether the two runs produced identical statistics.
    pub equivalent: bool,
    /// Whether both runs drained the workload inside the budget.
    pub completed: bool,
    /// `poll()` calls the active-set run issued (telemetry proof the
    /// tier visits only contenders).
    pub polls: u64,
    /// Decision slots × population — what a naive stepper would poll.
    pub station_slots: u64,
}

impl StationScaleResult {
    /// Active-set-off-over-on wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_wall_ns as f64 / self.active_wall_ns.max(1) as f64
    }

    /// Fraction of station-slots the active-set run actually polled.
    pub fn poll_fraction(&self) -> f64 {
        self.polls as f64 / self.station_slots.max(1) as f64
    }
}

/// Result of the multichannel scaling measurement: a saturated
/// 4-channel videoconference fabric run serially (1 worker) and on the
/// full worker pool, plus the §3.1 capacity facts the gate pins.
#[derive(Debug, Clone)]
pub struct MultichannelResult {
    /// Parallel channels in the fabric.
    pub channels: usize,
    /// Videoconference participants (message sources).
    pub participants: u32,
    /// Messages scheduled across all channels.
    pub messages: u64,
    /// Workers used for the parallel run.
    pub workers: usize,
    /// `available_parallelism()` of the measuring host — the checker
    /// enforces the speedup gate only when this is ≥
    /// [`MIN_GATED_PARALLELISM`].
    pub host_parallelism: usize,
    /// Serial (1-worker) wall time (min over repeats), nanoseconds.
    pub serial_wall_ns: u64,
    /// Pooled wall time (min over repeats), nanoseconds.
    pub parallel_wall_ns: u64,
    /// Whether serial and pooled runs produced identical per-channel
    /// statistics.
    pub equivalent: bool,
    /// Whether every channel drained inside the budget (both runs).
    pub completed: bool,
    /// Deadline misses across all channels (must be 0: the fabric is
    /// provably feasible).
    pub misses: u64,
    /// Whether the same workload passes the feasibility conditions on a
    /// single channel (must be `false` — the capacity win is vacuous
    /// otherwise).
    pub single_channel_feasible: bool,
    /// Whether every channel of the split fabric passes the feasibility
    /// conditions (must be `true`).
    pub multi_channel_feasible: bool,
}

impl MultichannelResult {
    /// Serial-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_wall_ns as f64 / self.parallel_wall_ns.max(1) as f64
    }
}

/// Result of the federation scaling measurement: the multichannel
/// workload re-cast as bridged segments advancing in epoch-aligned
/// rounds, run serially (1 worker) and on the work-stealing pool, plus
/// the two identities the gate pins — worker-count equivalence and
/// N=1 ≡ single-bus.
#[derive(Debug, Clone)]
pub struct FederationResult {
    /// Bridged segments in the federation.
    pub segments: usize,
    /// Videoconference participants (message sources).
    pub participants: u32,
    /// Messages scheduled across all segments.
    pub messages: u64,
    /// Workers used for the parallel run.
    pub workers: usize,
    /// `available_parallelism()` of the measuring host — the checker
    /// enforces the speedup gate only when this is ≥
    /// [`MIN_GATED_PARALLELISM`].
    pub host_parallelism: usize,
    /// Serial (1-worker) wall time (min over repeats), nanoseconds.
    pub serial_wall_ns: u64,
    /// Pooled wall time (min over repeats), nanoseconds.
    pub parallel_wall_ns: u64,
    /// Whether serial and pooled runs produced identical per-segment
    /// statistics, round counts, and handoff counts.
    pub equivalent: bool,
    /// Whether every segment drained inside the budget (both runs).
    pub completed: bool,
    /// Bridge handoffs exchanged at epoch boundaries (must be > 0: a
    /// federation without transit traffic demonstrates nothing).
    pub handoffs: u64,
    /// Epoch rounds the parallel run executed.
    pub rounds: u64,
    /// Whether a one-segment federation of the same workload reproduced
    /// the single-bus engine's statistics bit for bit.
    pub n1_identical: bool,
    /// Deadline misses across all segments for *local* traffic-only
    /// accounting (bridged hops use split deadlines, so this counts the
    /// report total).
    pub misses: u64,
}

impl FederationResult {
    /// Serial-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_wall_ns as f64 / self.parallel_wall_ns.max(1) as f64
    }
}

/// Result of the EDF queue measurement.
#[derive(Debug, Clone)]
pub struct QueueResult {
    /// push + pop operations performed.
    pub operations: u64,
    /// Wall time (min over repeats), nanoseconds.
    pub wall_ns: u64,
}

/// The full suite outcome.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Which profile ran.
    pub profile: Profile,
    /// Idle fast-forward measurement.
    pub idle: IdleResult,
    /// Loaded (busy-period) fast-forward grid.
    pub loaded: Vec<LoadedResult>,
    /// Contention (tree-search) fast-forward measurement.
    pub contention: ContentionResult,
    /// Protocol drain grid.
    pub drains: Vec<DrainResult>,
    /// Active-set station-scale sweep.
    pub station_scale: Vec<StationScaleResult>,
    /// Multichannel scaling and capacity measurement.
    pub multichannel: MultichannelResult,
    /// Federated-segment scaling measurement.
    pub federation: FederationResult,
    /// EDF queue throughput.
    pub queue: QueueResult,
}

fn time<R>(mut body: impl FnMut() -> R) -> (R, u64) {
    let start = Instant::now();
    let out = body();
    (out, start.elapsed().as_nanos().try_into().unwrap_or(u64::MAX))
}

fn min_wall<R>(repeats: usize, mut body: impl FnMut() -> R) -> (R, u64) {
    let (mut out, mut best) = time(&mut body);
    for _ in 1..repeats {
        let (next, wall) = time(&mut body);
        if wall < best {
            best = wall;
        }
        out = next;
    }
    (out, best)
}

fn idle_workload(stations: u32, load: f64, horizon: Ticks) -> (MessageSet, Vec<Message>) {
    let set = scenario::uniform(stations, 8_000, Ticks(5_000_000), load)
        .expect("idle scenario is valid");
    // Sparse arrivals: the channel sits silent between them, which is the
    // regime the fast-forward path exists for.
    let schedule = ScheduleBuilder::bounded_random(&set, 0.05, 11)
        .expect("intensity in (0, 1]")
        .build(horizon)
        .expect("schedule generation");
    (set, schedule)
}

fn run_idle(
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    horizon: Ticks,
    fast_forward: bool,
) -> ChannelStats {
    let config = default_ddcr_config(set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .expect("round robin allocation");
    let mut engine =
        network::build_engine(set, &config, &allocation, medium).expect("engine assembly");
    engine.set_fast_forward(fast_forward);
    engine.set_active_set(fast_forward);
    engine.add_arrivals(schedule.to_vec()).expect("arrivals route");
    engine.run_until(horizon);
    engine.into_stats()
}

/// Measures the idle-heavy scenario with the optimized engine and the
/// reference stepper. This is the perf-gate headline number.
pub fn measure_idle(profile: Profile) -> IdleResult {
    let stations = 32;
    let load = 0.05;
    let medium = MediumConfig::ethernet();
    let horizon = Ticks(medium.slot_ticks * profile.idle_slots());
    let (set, schedule) = idle_workload(stations, load, horizon);
    let (fast_stats, fast_wall_ns) = min_wall(profile.repeats(), || {
        run_idle(&set, &schedule, medium, horizon, true)
    });
    let (reference_stats, reference_wall_ns) = min_wall(profile.repeats(), || {
        run_idle(&set, &schedule, medium, horizon, false)
    });
    IdleResult {
        stations,
        load,
        horizon_ticks: horizon.as_u64(),
        slots: reference_stats.silence_slots + reference_stats.collisions,
        fast_wall_ns,
        reference_wall_ns,
        equivalent: fast_stats == reference_stats,
    }
}

/// Clustered small-message workload for the loaded measurement: each
/// station receives bursts of `CLUSTER_MESSAGES` 1000-bit messages, cluster
/// start times staggered across stations so the channel mostly carries
/// committed bursts rather than contention. The cluster period is sized so
/// the total offered load is `load`.
pub fn loaded_workload(
    stations: u32,
    load: f64,
    clusters: u64,
) -> (MessageSet, Vec<Message>, Ticks) {
    const BITS: u64 = 1_000;
    const CLUSTER_MESSAGES: u64 = 32;
    let set = scenario::uniform(stations, BITS, Ticks(5_000_000), load)
        .expect("loaded scenario is valid");
    let period =
        ((f64::from(stations) * CLUSTER_MESSAGES as f64 * BITS as f64) / load).round() as u64;
    let stagger = period / u64::from(stations);
    let mut schedule = Vec::new();
    for c in 0..clusters {
        for s in 0..stations {
            let at = c * period + u64::from(s) * stagger;
            for _ in 0..CLUSTER_MESSAGES {
                schedule.push(Message {
                    id: MessageId(schedule.len() as u64),
                    source: SourceId(s),
                    class: ClassId(0),
                    bits: BITS,
                    arrival: Ticks(at),
                    deadline: Ticks(100_000_000),
                });
            }
        }
    }
    (set, schedule, Ticks(clusters * period))
}

/// One loaded run: bursting DDCR over `schedule`, either fully optimized
/// (all three fast-forward switches on) or on the full reference stepper.
/// Returns the final statistics and whether the drain completed.
pub fn run_loaded(
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    optimized: bool,
) -> (ChannelStats, bool) {
    // Bursting is what turns a cluster drain into committed multi-slot
    // holds — the regime the busy fast-forward path exists for. The budget
    // widened beyond the 512-byte 802.3z default keeps a whole cluster in
    // one burst.
    let config = default_ddcr_config(set, &medium).with_bursting(BurstConfig {
        max_extra_bits: 32_768,
    });
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .expect("round robin allocation");
    let mut engine =
        network::build_engine(set, &config, &allocation, medium).expect("engine assembly");
    engine.set_fast_forward(optimized);
    engine.set_busy_fast_forward(optimized);
    engine.set_contention_fast_forward(optimized);
    engine.set_active_set(optimized);
    engine.set_retention(Some(0), Some(0));
    engine.add_arrivals(schedule.to_vec()).expect("arrivals route");
    let completed = engine.run_to_completion(Ticks(40_000_000_000)).is_ok();
    (engine.into_stats(), completed)
}

/// Measures the loaded (busy-heavy) scenario grid with the fully optimized
/// engine and the full reference stepper. The `(≥ 32 stations, load 0.5)`
/// entry is the busy-period perf-gate headline number.
pub fn measure_loaded(profile: Profile) -> Vec<LoadedResult> {
    let medium = MediumConfig::ethernet();
    let mut out = Vec::new();
    for (stations, load) in profile.loaded_grid() {
        let (set, schedule, _horizon) =
            loaded_workload(stations, load, profile.loaded_clusters());
        let ((fast_stats, fast_completed), fast_wall_ns) =
            min_wall(profile.repeats(), || {
                run_loaded(&set, &schedule, medium, true)
            });
        let ((reference_stats, reference_completed), reference_wall_ns) =
            min_wall(profile.repeats(), || {
                run_loaded(&set, &schedule, medium, false)
            });
        out.push(LoadedResult {
            stations,
            load,
            messages: schedule.len() as u64,
            slots: reference_stats.silence_slots
                + reference_stats.collisions
                + reference_stats.delivered,
            fast_wall_ns,
            reference_wall_ns,
            equivalent: fast_stats == reference_stats,
            completed: fast_completed && reference_completed,
        });
    }
    out
}

/// Contention-heavy workload for the contention fast-forward measurement:
/// `waves` rounds in which **every** station receives one message at the
/// same instant, so each round opens with a `stations`-way collision the
/// tree search must resolve leaf by leaf. No bursting, so the drain is
/// pure search — the regime the contention fast-forward path exists for.
pub fn contention_workload(stations: u32, waves: u64) -> (MessageSet, Vec<Message>) {
    const BITS: u64 = 2_000;
    // Far enough apart that one wave fully drains (searches included)
    // before the next arrives, keeping every wave a clean tree search.
    const WAVE_PERIOD: u64 = 400_000;
    let set = scenario::uniform(stations, BITS, Ticks(5_000_000), 0.8)
        .expect("contention scenario is valid");
    let mut schedule = Vec::new();
    for w in 0..waves {
        for s in 0..stations {
            schedule.push(Message {
                id: MessageId(schedule.len() as u64),
                source: SourceId(s),
                class: ClassId(0),
                bits: BITS,
                arrival: Ticks(w * WAVE_PERIOD),
                deadline: Ticks(100_000_000),
            });
        }
    }
    (set, schedule)
}

/// One contention run: non-bursting DDCR over `schedule` with the idle and
/// busy tiers on in **both** configurations, toggling only the contention
/// tier — the speedup isolates the third tier's contribution. Returns the
/// final statistics and whether the drain completed.
pub fn run_contention(
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    contention: bool,
) -> (ChannelStats, bool) {
    let config = default_ddcr_config(set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .expect("round robin allocation");
    let mut engine =
        network::build_engine(set, &config, &allocation, medium).expect("engine assembly");
    engine.set_fast_forward(true);
    engine.set_busy_fast_forward(true);
    engine.set_contention_fast_forward(contention);
    engine.set_retention(Some(0), Some(0));
    engine.add_arrivals(schedule.to_vec()).expect("arrivals route");
    let completed = engine.run_to_completion(Ticks(40_000_000_000)).is_ok();
    (engine.into_stats(), completed)
}

/// Measures the contention-heavy scenario with the contention tier on and
/// off, plus one metrics-enabled pass proving the tier engaged.
pub fn measure_contention(profile: Profile) -> ContentionResult {
    let stations = 32;
    let waves = profile.contention_waves();
    let medium = MediumConfig::ethernet();
    let (set, schedule) = contention_workload(stations, waves);
    let ((fast_stats, fast_completed), fast_wall_ns) = min_wall(profile.repeats(), || {
        run_contention(&set, &schedule, medium, true)
    });
    let ((reference_stats, reference_completed), reference_wall_ns) =
        min_wall(profile.repeats(), || {
            run_contention(&set, &schedule, medium, false)
        });

    // Telemetry pass (untimed): the tier must actually fire, otherwise the
    // comparison above measures nothing.
    let config = default_ddcr_config(&set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .expect("round robin allocation");
    let mut engine =
        network::build_engine(&set, &config, &allocation, medium).expect("engine assembly");
    engine.enable_metrics();
    engine.add_arrivals(schedule.clone()).expect("arrivals route");
    let _ = engine.run_to_completion(Ticks(40_000_000_000));
    let metrics = engine.take_metrics().expect("metrics enabled");

    ContentionResult {
        stations,
        waves,
        messages: schedule.len() as u64,
        slots: reference_stats.silence_slots
            + reference_stats.collisions
            + reference_stats.delivered,
        fast_wall_ns,
        reference_wall_ns,
        equivalent: fast_stats == reference_stats,
        completed: fast_completed && reference_completed,
        search_skip_runs: metrics.search_skip_runs,
        search_skipped_slots: metrics.search_skipped_slots,
    }
}

/// Measures DDCR / CSMA-CD / NP-EDF draining the same workload across the
/// profile's `(stations, load)` grid.
pub fn measure_drains(profile: Profile) -> Vec<DrainResult> {
    let medium = MediumConfig::ethernet();
    let mut out = Vec::new();
    for (stations, load) in profile.drain_grid() {
        let set = scenario::uniform(stations, 8_000, Ticks(5_000_000), load)
            .expect("drain scenario is valid");
        let schedule = ScheduleBuilder::bounded_random(&set, load.min(1.0), 23)
            .expect("intensity in (0, 1]")
            .build(Ticks(4_000_000))
            .expect("schedule generation");
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 7),
            ProtocolKind::NpEdf,
        ];
        for kind in &kinds {
            let (summary, wall_ns) = min_wall(profile.repeats(), || {
                run_protocol(kind, &set, &schedule, medium, Ticks(40_000_000_000))
                    .expect("protocol run")
            });
            out.push(DrainResult {
                protocol: summary.protocol.clone(),
                stations,
                load,
                wall_ns,
                sim_ticks: summary.total_ticks,
                delivered: summary.delivered,
                completed: summary.completed,
            });
        }
    }
    out
}

/// Sparse workload for the station-scale sweep: `rounds` messages per
/// station, arrivals staggered `GAP` ticks apart so at most one or two
/// stations are ever backlogged — the regime where the active-set
/// scheduler parks nearly the whole population between a station's own
/// arrivals. Every station still wakes for each of its deliveries, so the
/// sweep exercises park/wake churn, not just a static active subset.
pub fn station_scale_workload(stations: u32, rounds: u64) -> (MessageSet, Vec<Message>) {
    const BITS: u64 = 4_000;
    const GAP: u64 = 20_000;
    let set = scenario::uniform(stations, BITS, Ticks(5_000_000), 0.1)
        .expect("station-scale scenario is valid");
    let mut schedule = Vec::new();
    for r in 0..rounds {
        for s in 0..stations {
            schedule.push(Message {
                id: MessageId(schedule.len() as u64),
                source: SourceId(s),
                class: ClassId(0),
                bits: BITS,
                arrival: Ticks((r * u64::from(stations) + u64::from(s)) * GAP),
                deadline: Ticks(100_000_000),
            });
        }
    }
    (set, schedule)
}

/// One station-scale run: non-bursting DDCR over `schedule` with all
/// three fast-forward tiers on and the active-set scheduler toggled.
/// Returns the final statistics, completion, `poll()` count, and decision
/// slots resolved.
pub fn run_station_scale(
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    active_set: bool,
) -> (ChannelStats, bool, u64, u64) {
    let config = default_ddcr_config(set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
        .expect("round robin allocation");
    let mut engine =
        network::build_engine(set, &config, &allocation, medium).expect("engine assembly");
    engine.set_fast_forward(true);
    engine.set_busy_fast_forward(true);
    engine.set_contention_fast_forward(true);
    engine.set_active_set(active_set);
    engine.add_arrivals(schedule.to_vec()).expect("arrivals route");
    let completed = engine.run_to_completion(Ticks(40_000_000_000)).is_ok();
    let polls = engine.poll_count();
    let slots = engine.slot_ordinal();
    (engine.into_stats(), completed, polls, slots)
}

/// Measures the active-set station-scale sweep: the sparse workload at
/// each grid population, active-set on vs off.
pub fn measure_station_scale(profile: Profile) -> Vec<StationScaleResult> {
    let medium = MediumConfig::ethernet();
    let rounds = profile.station_scale_rounds();
    let mut out = Vec::new();
    for stations in profile.station_scale_grid() {
        let (set, schedule) = station_scale_workload(stations, rounds);
        let ((active_stats, active_completed, polls, slots), active_wall_ns) =
            min_wall(profile.repeats(), || {
                run_station_scale(&set, &schedule, medium, true)
            });
        let ((baseline_stats, baseline_completed, _, _), baseline_wall_ns) =
            min_wall(profile.repeats(), || {
                run_station_scale(&set, &schedule, medium, false)
            });
        out.push(StationScaleResult {
            stations,
            messages: schedule.len() as u64,
            slots,
            active_wall_ns,
            baseline_wall_ns,
            equivalent: active_stats == baseline_stats,
            completed: active_completed && baseline_completed,
            polls,
            station_slots: slots * u64::from(stations),
        });
    }
    out
}

/// Measures multichannel scaling on the saturated 4-channel workload from
/// experiment E15: a 32-participant videoconference on gigabit Ethernet —
/// infeasible on one channel, provably feasible split over four. The same
/// channels run serially (1 worker) and on the full pool; the report
/// carries both wall times, the worker-count-equivalence verdict, and the
/// capacity booleans the gate pins.
pub fn measure_multichannel(profile: Profile) -> MultichannelResult {
    use ddcr_core::multibus;

    const CHANNELS: usize = 4;
    const PARTICIPANTS: u32 = 32;
    let medium = MediumConfig::gigabit_ethernet();
    let set = scenario::videoconference(PARTICIPANTS).expect("scenario is valid");
    let config = default_ddcr_config(&set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, PARTICIPANTS)
        .expect("allocation covers all sources");

    let single = multibus::balance_by_load(&set, 1);
    let split = multibus::balance_by_load(&set, CHANNELS);
    let feasible = |assignment: &multibus::ChannelAssignment| {
        multibus::evaluate(&set, assignment, &config, &allocation, &medium)
            .expect("feasibility evaluates")
            .iter()
            .all(|r| r.feasible())
    };
    let single_channel_feasible = feasible(&single);
    let multi_channel_feasible = feasible(&split);

    let schedule = ScheduleBuilder::peak_load(&set)
        .build(profile.multichannel_horizon())
        .expect("schedule generation");
    let messages = schedule.len() as u64;
    let budget = Ticks(4_000_000_000_000);
    let run = |workers: usize| {
        let mut options = multibus::RunOptions::new(budget);
        options.workers = workers;
        min_wall(profile.repeats(), || {
            multibus::run_channels(
                &set,
                schedule.clone(),
                &split,
                &config,
                &allocation,
                medium,
                &options,
            )
            .expect("multichannel run assembles")
        })
    };
    let (serial, serial_wall_ns) = run(1);
    let (parallel, parallel_wall_ns) = run(CHANNELS);

    let equivalent = serial.channels.len() == parallel.channels.len()
        && serial
            .channels
            .iter()
            .zip(&parallel.channels)
            .all(|(a, b)| a.stats == b.stats);
    MultichannelResult {
        channels: CHANNELS,
        participants: PARTICIPANTS,
        messages,
        workers: CHANNELS,
        host_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        serial_wall_ns,
        parallel_wall_ns,
        equivalent,
        completed: serial.completed() && parallel.completed(),
        misses: parallel.deadline_misses() as u64,
        single_channel_feasible,
        multi_channel_feasible,
    }
}

/// Measures federation scaling: the E15 workload re-cast as four bridged
/// segments advancing in epoch-aligned rounds on the work-stealing pool,
/// with every fourth class crossing a bridge. The same federation runs
/// serially (1 worker) and on the pool; the report carries both wall
/// times, the worker-count-equivalence verdict, and the N=1 ≡ single-bus
/// identity that pins the chunked virtual-clock composition.
pub fn measure_federation(profile: Profile) -> FederationResult {
    use ddcr_core::{federate, multibus};

    const SEGMENTS: usize = 4;
    const PARTICIPANTS: u32 = 32;
    const TRANSIT_EVERY: u32 = 4;
    let medium = MediumConfig::gigabit_ethernet();
    let set = scenario::videoconference(PARTICIPANTS).expect("scenario is valid");
    let config = default_ddcr_config(&set, &medium);
    let allocation = StaticAllocation::round_robin(config.static_tree, PARTICIPANTS)
        .expect("allocation covers all sources");

    let split = multibus::balance_by_load(&set, SEGMENTS);
    let routes = federate::transit_routes(&set, &split, TRANSIT_EVERY);
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(profile.federation_horizon())
        .expect("schedule generation");
    let messages = schedule.len() as u64;
    let budget = Ticks(4_000_000_000_000);
    let epoch = Ticks(1_000_000);
    let run = |workers: usize| {
        let mut options = ddcr_sim::federation::FederationOptions::new(epoch, budget);
        options.workers = workers;
        min_wall(profile.repeats(), || {
            federate::run_segments(
                &set,
                schedule.clone(),
                &split,
                &routes,
                &config,
                &allocation,
                medium,
                &options,
            )
            .expect("federated run assembles")
        })
    };
    let (serial, serial_wall_ns) = run(1);
    let (parallel, parallel_wall_ns) = run(SEGMENTS);

    let equivalent = serial.rounds == parallel.rounds
        && serial.handoffs == parallel.handoffs
        && serial.segments.len() == parallel.segments.len()
        && serial
            .segments
            .iter()
            .zip(&parallel.segments)
            .all(|(a, b)| a.stats == b.stats);

    // N=1 identity (untimed): a one-segment federation of the same
    // schedule must reproduce the single-bus engine's statistics.
    let single = multibus::balance_by_load(&set, 1);
    let reference = network::run(
        &set,
        schedule.clone(),
        &config,
        &allocation,
        medium,
        network::RunLimit::Completion(budget),
    )
    .expect("single-bus reference runs");
    let one_options = ddcr_sim::federation::FederationOptions::new(epoch, budget);
    let one = federate::run_segments(
        &set,
        schedule,
        &single,
        &[],
        &config,
        &allocation,
        medium,
        &one_options,
    )
    .expect("one-segment federation runs");
    let n1_identical =
        one.completed() && one.segments.len() == 1 && one.segments[0].stats == reference;

    FederationResult {
        segments: SEGMENTS,
        participants: PARTICIPANTS,
        messages,
        workers: SEGMENTS,
        host_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        serial_wall_ns,
        parallel_wall_ns,
        equivalent,
        completed: serial.completed() && parallel.completed(),
        handoffs: parallel.handoffs,
        rounds: parallel.rounds,
        n1_identical,
        misses: parallel.deadline_misses(),
    }
}

/// Measures `EdfQueue` push/pop throughput: interleaved inserts (worst-case
/// mid-queue positions) followed by a full drain.
pub fn measure_queue(profile: Profile) -> QueueResult {
    let n = profile.queue_messages();
    let messages: Vec<Message> = (0..n)
        .map(|i| Message {
            id: MessageId(i as u64),
            source: SourceId(0),
            class: ClassId(0),
            bits: 1_000,
            arrival: Ticks(0),
            // A scrambled deadline pattern so inserts land all over the
            // queue rather than always at one end.
            deadline: Ticks(((i as u64).wrapping_mul(2_654_435_761)) % 1_000_000 + 1),
        })
        .collect();
    let (drained, wall_ns) = min_wall(profile.repeats(), || {
        let mut queue = EdfQueue::new();
        for message in &messages {
            queue.push(*message);
        }
        let mut drained = 0u64;
        while queue.pop().is_some() {
            drained += 1;
        }
        drained
    });
    assert_eq!(drained, n as u64, "queue must drain completely");
    QueueResult {
        operations: 2 * n as u64,
        wall_ns,
    }
}

/// Runs the whole suite.
pub fn run_suite(profile: Profile) -> BenchReport {
    BenchReport {
        profile,
        idle: measure_idle(profile),
        loaded: measure_loaded(profile),
        contention: measure_contention(profile),
        drains: measure_drains(profile),
        station_scale: measure_station_scale(profile),
        multichannel: measure_multichannel(profile),
        federation: measure_federation(profile),
        queue: measure_queue(profile),
    }
}

impl BenchReport {
    /// Renders the `BENCH_engine.json` document (schema in
    /// `docs/PERF.md`).
    pub fn to_json(&self) -> Json {
        let idle = &self.idle;
        Json::object([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("profile", Json::from(self.profile.name())),
            ("generated_by", Json::from("ddcr-bench bench_engine")),
            (
                "idle_fast_forward",
                Json::object([
                    ("stations", Json::from(u64::from(idle.stations))),
                    ("load", Json::from(idle.load)),
                    ("horizon_ticks", Json::from(idle.horizon_ticks)),
                    ("slots", Json::from(idle.slots)),
                    ("fast_wall_ns", Json::from(idle.fast_wall_ns)),
                    ("reference_wall_ns", Json::from(idle.reference_wall_ns)),
                    (
                        "fast_slots_per_sec",
                        Json::from(idle.slots_per_sec(idle.fast_wall_ns)),
                    ),
                    (
                        "reference_slots_per_sec",
                        Json::from(idle.slots_per_sec(idle.reference_wall_ns)),
                    ),
                    ("speedup", Json::from(idle.speedup())),
                    ("equivalent", Json::from(idle.equivalent)),
                ]),
            ),
            (
                "loaded_fast_forward",
                Json::Array(
                    self.loaded
                        .iter()
                        .map(|l| {
                            Json::object([
                                ("stations", Json::from(u64::from(l.stations))),
                                ("load", Json::from(l.load)),
                                ("messages", Json::from(l.messages)),
                                ("slots", Json::from(l.slots)),
                                ("fast_wall_ns", Json::from(l.fast_wall_ns)),
                                ("reference_wall_ns", Json::from(l.reference_wall_ns)),
                                (
                                    "fast_slots_per_sec",
                                    Json::from(l.slots_per_sec(l.fast_wall_ns)),
                                ),
                                (
                                    "reference_slots_per_sec",
                                    Json::from(l.slots_per_sec(l.reference_wall_ns)),
                                ),
                                ("speedup", Json::from(l.speedup())),
                                ("equivalent", Json::from(l.equivalent)),
                                ("completed", Json::from(l.completed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "contention_fast_forward",
                Json::object([
                    (
                        "stations",
                        Json::from(u64::from(self.contention.stations)),
                    ),
                    ("waves", Json::from(self.contention.waves)),
                    ("messages", Json::from(self.contention.messages)),
                    ("slots", Json::from(self.contention.slots)),
                    ("fast_wall_ns", Json::from(self.contention.fast_wall_ns)),
                    (
                        "reference_wall_ns",
                        Json::from(self.contention.reference_wall_ns),
                    ),
                    (
                        "fast_slots_per_sec",
                        Json::from(
                            self.contention.slots_per_sec(self.contention.fast_wall_ns),
                        ),
                    ),
                    (
                        "reference_slots_per_sec",
                        Json::from(
                            self.contention
                                .slots_per_sec(self.contention.reference_wall_ns),
                        ),
                    ),
                    ("speedup", Json::from(self.contention.speedup())),
                    ("equivalent", Json::from(self.contention.equivalent)),
                    ("completed", Json::from(self.contention.completed)),
                    (
                        "search_skip_runs",
                        Json::from(self.contention.search_skip_runs),
                    ),
                    (
                        "search_skipped_slots",
                        Json::from(self.contention.search_skipped_slots),
                    ),
                ]),
            ),
            (
                "protocol_drain",
                Json::Array(
                    self.drains
                        .iter()
                        .map(|d| {
                            Json::object([
                                ("protocol", Json::from(d.protocol.as_str())),
                                ("stations", Json::from(u64::from(d.stations))),
                                ("load", Json::from(d.load)),
                                ("wall_ns", Json::from(d.wall_ns)),
                                ("sim_ticks", Json::from(d.sim_ticks)),
                                (
                                    "sim_ticks_per_sec",
                                    Json::from(
                                        d.sim_ticks as f64 * 1e9 / d.wall_ns.max(1) as f64,
                                    ),
                                ),
                                ("delivered", Json::from(d.delivered as u64)),
                                ("completed", Json::from(d.completed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "station_scale",
                Json::Array(
                    self.station_scale
                        .iter()
                        .map(|s| {
                            Json::object([
                                ("stations", Json::from(u64::from(s.stations))),
                                ("messages", Json::from(s.messages)),
                                ("slots", Json::from(s.slots)),
                                ("active_wall_ns", Json::from(s.active_wall_ns)),
                                ("baseline_wall_ns", Json::from(s.baseline_wall_ns)),
                                ("speedup", Json::from(s.speedup())),
                                ("equivalent", Json::from(s.equivalent)),
                                ("completed", Json::from(s.completed)),
                                ("polls", Json::from(s.polls)),
                                ("station_slots", Json::from(s.station_slots)),
                                ("poll_fraction", Json::from(s.poll_fraction())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "multichannel",
                Json::object([
                    (
                        "channels",
                        Json::from(self.multichannel.channels as u64),
                    ),
                    (
                        "participants",
                        Json::from(u64::from(self.multichannel.participants)),
                    ),
                    ("messages", Json::from(self.multichannel.messages)),
                    ("workers", Json::from(self.multichannel.workers as u64)),
                    (
                        "host_parallelism",
                        Json::from(self.multichannel.host_parallelism as u64),
                    ),
                    (
                        "serial_wall_ns",
                        Json::from(self.multichannel.serial_wall_ns),
                    ),
                    (
                        "parallel_wall_ns",
                        Json::from(self.multichannel.parallel_wall_ns),
                    ),
                    ("speedup", Json::from(self.multichannel.speedup())),
                    ("equivalent", Json::from(self.multichannel.equivalent)),
                    ("completed", Json::from(self.multichannel.completed)),
                    ("misses", Json::from(self.multichannel.misses)),
                    (
                        "single_channel_feasible",
                        Json::from(self.multichannel.single_channel_feasible),
                    ),
                    (
                        "multi_channel_feasible",
                        Json::from(self.multichannel.multi_channel_feasible),
                    ),
                ]),
            ),
            (
                "federation",
                Json::object([
                    ("segments", Json::from(self.federation.segments as u64)),
                    (
                        "participants",
                        Json::from(u64::from(self.federation.participants)),
                    ),
                    ("messages", Json::from(self.federation.messages)),
                    ("workers", Json::from(self.federation.workers as u64)),
                    (
                        "host_parallelism",
                        Json::from(self.federation.host_parallelism as u64),
                    ),
                    (
                        "serial_wall_ns",
                        Json::from(self.federation.serial_wall_ns),
                    ),
                    (
                        "parallel_wall_ns",
                        Json::from(self.federation.parallel_wall_ns),
                    ),
                    ("speedup", Json::from(self.federation.speedup())),
                    ("equivalent", Json::from(self.federation.equivalent)),
                    ("completed", Json::from(self.federation.completed)),
                    ("handoffs", Json::from(self.federation.handoffs)),
                    ("rounds", Json::from(self.federation.rounds)),
                    ("n1_identical", Json::from(self.federation.n1_identical)),
                    ("misses", Json::from(self.federation.misses)),
                ]),
            ),
            (
                "edf_queue",
                Json::object([
                    ("operations", Json::from(self.queue.operations)),
                    ("wall_ns", Json::from(self.queue.wall_ns)),
                    (
                        "ops_per_sec",
                        Json::from(
                            self.queue.operations as f64 * 1e9
                                / self.queue.wall_ns.max(1) as f64,
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// Validates a parsed `BENCH_engine.json` against the schema and the perf
/// gate thresholds. Returns the list of violations (empty = gate passes).
pub fn check_report(doc: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    let mut fail = |msg: String| violations.push(msg);

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => fail(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => fail("missing schema_version".into()),
    }
    if doc.get("profile").and_then(Json::as_str).is_none() {
        fail("missing profile".into());
    }

    match doc.get("idle_fast_forward") {
        None => fail("missing idle_fast_forward".into()),
        Some(idle) => {
            match idle.get("stations").and_then(Json::as_f64) {
                Some(z) if z >= 32.0 => {}
                other => fail(format!(
                    "idle_fast_forward.stations must be >= 32, got {other:?}"
                )),
            }
            match idle.get("load").and_then(Json::as_f64) {
                Some(l) if l <= 0.25 => {}
                other => fail(format!(
                    "idle_fast_forward.load must be <= 0.25 (idle-heavy), got {other:?}"
                )),
            }
            match idle.get("speedup").and_then(Json::as_f64) {
                Some(s) if s >= MIN_IDLE_SPEEDUP => {}
                Some(s) => fail(format!(
                    "idle_fast_forward.speedup {s:.2} below gate {MIN_IDLE_SPEEDUP}"
                )),
                None => fail("missing idle_fast_forward.speedup".into()),
            }
            if idle.get("equivalent").and_then(Json::as_bool) != Some(true) {
                fail("idle_fast_forward.equivalent must be true".into());
            }
            for key in ["slots", "fast_wall_ns", "reference_wall_ns"] {
                match idle.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    other => fail(format!("idle_fast_forward.{key} must be > 0, got {other:?}")),
                }
            }
        }
    }

    match doc.get("loaded_fast_forward").and_then(Json::as_array) {
        None => fail("missing loaded_fast_forward".into()),
        Some([]) => fail("loaded_fast_forward is empty".into()),
        Some(entries) => {
            let mut gated_mid = 0usize;
            let mut gated_high = 0usize;
            for (i, entry) in entries.iter().enumerate() {
                if entry.get("equivalent").and_then(Json::as_bool) != Some(true) {
                    fail(format!("loaded_fast_forward[{i}].equivalent must be true"));
                }
                if entry.get("completed").and_then(Json::as_bool) != Some(true) {
                    fail(format!("loaded_fast_forward[{i}] did not complete"));
                }
                for key in ["slots", "fast_wall_ns", "reference_wall_ns"] {
                    match entry.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        other => fail(format!(
                            "loaded_fast_forward[{i}].{key} must be > 0, got {other:?}"
                        )),
                    }
                }
                let stations = entry.get("stations").and_then(Json::as_f64).unwrap_or(0.0);
                let load = entry.get("load").and_then(Json::as_f64).unwrap_or(0.0);
                let mid = (0.45..=0.55).contains(&load);
                let high = (0.75..=0.85).contains(&load);
                if stations >= 32.0 && (mid || high) {
                    if mid {
                        gated_mid += 1;
                    } else {
                        gated_high += 1;
                    }
                    match entry.get("speedup").and_then(Json::as_f64) {
                        Some(s) if s >= MIN_LOADED_SPEEDUP => {}
                        Some(s) => fail(format!(
                            "loaded_fast_forward[{i}].speedup {s:.2} below gate \
                             {MIN_LOADED_SPEEDUP} (z={stations}, load={load})"
                        )),
                        None => fail(format!("missing loaded_fast_forward[{i}].speedup")),
                    }
                }
            }
            if gated_mid == 0 {
                fail("loaded_fast_forward has no gated entry (>= 32 stations at load 0.5)"
                    .into());
            }
            if gated_high == 0 {
                fail("loaded_fast_forward has no gated entry (>= 32 stations at load 0.8)"
                    .into());
            }
        }
    }

    match doc.get("contention_fast_forward") {
        None => fail("missing contention_fast_forward".into()),
        Some(contention) => {
            match contention.get("stations").and_then(Json::as_f64) {
                Some(z) if z >= 32.0 => {}
                other => fail(format!(
                    "contention_fast_forward.stations must be >= 32, got {other:?}"
                )),
            }
            if contention.get("equivalent").and_then(Json::as_bool) != Some(true) {
                fail("contention_fast_forward.equivalent must be true".into());
            }
            if contention.get("completed").and_then(Json::as_bool) != Some(true) {
                fail("contention_fast_forward did not complete".into());
            }
            for key in ["slots", "fast_wall_ns", "reference_wall_ns", "speedup"] {
                match contention.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    other => fail(format!(
                        "contention_fast_forward.{key} must be > 0, got {other:?}"
                    )),
                }
            }
            // The comparison is meaningless if the tier never fired.
            match contention.get("search_skip_runs").and_then(Json::as_f64) {
                Some(v) if v >= 1.0 => {}
                other => fail(format!(
                    "contention_fast_forward.search_skip_runs must be >= 1 \
                     (tier never engaged), got {other:?}"
                )),
            }
        }
    }

    match doc.get("protocol_drain").and_then(Json::as_array) {
        None => fail("missing protocol_drain".into()),
        Some([]) => fail("protocol_drain is empty".into()),
        Some(entries) => {
            for (i, entry) in entries.iter().enumerate() {
                if entry.get("protocol").and_then(Json::as_str).is_none() {
                    fail(format!("protocol_drain[{i}] missing protocol"));
                }
                if entry.get("completed").and_then(Json::as_bool) != Some(true) {
                    fail(format!("protocol_drain[{i}] did not complete"));
                }
                match entry.get("sim_ticks_per_sec").and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    other => fail(format!(
                        "protocol_drain[{i}].sim_ticks_per_sec must be > 0, got {other:?}"
                    )),
                }
            }
        }
    }

    match doc.get("station_scale").and_then(Json::as_array) {
        None => fail("missing station_scale".into()),
        Some([]) => fail("station_scale is empty".into()),
        Some(entries) => {
            let mut gated = 0usize;
            for (i, entry) in entries.iter().enumerate() {
                if entry.get("equivalent").and_then(Json::as_bool) != Some(true) {
                    fail(format!("station_scale[{i}].equivalent must be true"));
                }
                if entry.get("completed").and_then(Json::as_bool) != Some(true) {
                    fail(format!("station_scale[{i}] did not complete"));
                }
                for key in ["slots", "active_wall_ns", "baseline_wall_ns"] {
                    match entry.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        other => fail(format!(
                            "station_scale[{i}].{key} must be > 0, got {other:?}"
                        )),
                    }
                }
                let stations = entry.get("stations").and_then(Json::as_f64).unwrap_or(0.0);
                if stations >= STATION_SCALE_GATED_AT as f64 {
                    gated += 1;
                    match entry.get("speedup").and_then(Json::as_f64) {
                        Some(s) if s >= MIN_STATION_SCALE_SPEEDUP => {}
                        Some(s) => fail(format!(
                            "station_scale[{i}].speedup {s:.2} below gate \
                             {MIN_STATION_SCALE_SPEEDUP} (z={stations})"
                        )),
                        None => fail(format!("missing station_scale[{i}].speedup")),
                    }
                }
            }
            if gated == 0 {
                fail(format!(
                    "station_scale has no gated entry (>= {STATION_SCALE_GATED_AT} stations)"
                ));
            }
        }
    }

    match doc.get("multichannel") {
        None => fail("missing multichannel".into()),
        Some(section) => {
            match section.get("channels").and_then(Json::as_f64) {
                Some(c) if c >= 4.0 => {}
                other => fail(format!(
                    "multichannel.channels must be >= 4, got {other:?}"
                )),
            }
            if section.get("equivalent").and_then(Json::as_bool) != Some(true) {
                fail("multichannel.equivalent must be true (results depend on worker count)"
                    .into());
            }
            if section.get("completed").and_then(Json::as_bool) != Some(true) {
                fail("multichannel did not complete".into());
            }
            match section.get("misses").and_then(Json::as_f64) {
                Some(0.0) => {}
                other => fail(format!(
                    "multichannel.misses must be 0 (the fabric is provably feasible), \
                     got {other:?}"
                )),
            }
            // The capacity win: the workload must be infeasible on one
            // channel and provable on the split fabric, else the section
            // demonstrates nothing.
            if section.get("single_channel_feasible").and_then(Json::as_bool) != Some(false) {
                fail("multichannel.single_channel_feasible must be false \
                      (capacity win is vacuous otherwise)"
                    .into());
            }
            if section.get("multi_channel_feasible").and_then(Json::as_bool) != Some(true) {
                fail("multichannel.multi_channel_feasible must be true".into());
            }
            for key in ["serial_wall_ns", "parallel_wall_ns", "host_parallelism"] {
                match section.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    other => fail(format!("multichannel.{key} must be > 0, got {other:?}")),
                }
            }
            // Wall-clock scaling is only physically possible on a host
            // with enough cores; below that the speedup is informational.
            let host = section
                .get("host_parallelism")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if host >= MIN_GATED_PARALLELISM as f64 {
                match section.get("speedup").and_then(Json::as_f64) {
                    Some(s) if s >= MIN_MULTICHANNEL_SPEEDUP => {}
                    Some(s) => fail(format!(
                        "multichannel.speedup {s:.2} below gate {MIN_MULTICHANNEL_SPEEDUP} \
                         on a {host}-core host"
                    )),
                    None => fail("missing multichannel.speedup".into()),
                }
            }
        }
    }

    match doc.get("federation") {
        None => fail("missing federation".into()),
        Some(section) => {
            match section.get("segments").and_then(Json::as_f64) {
                Some(s) if s >= 4.0 => {}
                other => fail(format!("federation.segments must be >= 4, got {other:?}")),
            }
            if section.get("equivalent").and_then(Json::as_bool) != Some(true) {
                fail("federation.equivalent must be true (results depend on worker count)"
                    .into());
            }
            if section.get("completed").and_then(Json::as_bool) != Some(true) {
                fail("federation did not complete".into());
            }
            // The chunked virtual-clock composition is only trusted while
            // N=1 reproduces the single-bus engine bit for bit.
            if section.get("n1_identical").and_then(Json::as_bool) != Some(true) {
                fail("federation.n1_identical must be true \
                      (one segment must match the single-bus engine)"
                    .into());
            }
            // Without bridge traffic the section measures four unrelated
            // engines, not a federation.
            match section.get("handoffs").and_then(Json::as_f64) {
                Some(h) if h >= 1.0 => {}
                other => fail(format!(
                    "federation.handoffs must be >= 1 (no transit traffic bridged), \
                     got {other:?}"
                )),
            }
            for key in ["serial_wall_ns", "parallel_wall_ns", "host_parallelism", "rounds"] {
                match section.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    other => fail(format!("federation.{key} must be > 0, got {other:?}")),
                }
            }
            // Same waiver as multichannel: the wall-clock gate only binds
            // on hosts that can physically exhibit the speedup.
            let host = section
                .get("host_parallelism")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if host >= MIN_GATED_PARALLELISM as f64 {
                match section.get("speedup").and_then(Json::as_f64) {
                    Some(s) if s >= MIN_FEDERATION_SPEEDUP => {}
                    Some(s) => fail(format!(
                        "federation.speedup {s:.2} below gate {MIN_FEDERATION_SPEEDUP} \
                         on a {host}-core host"
                    )),
                    None => fail("missing federation.speedup".into()),
                }
            }
        }
    }

    match doc.get("edf_queue").and_then(|q| q.get("ops_per_sec")).and_then(Json::as_f64) {
        Some(v) if v > 0.0 => {}
        other => fail(format!("edf_queue.ops_per_sec must be > 0, got {other:?}")),
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny inline profile would still take seconds; instead validate
    /// the gate logic against synthetic reports.
    fn passing_report() -> Json {
        BenchReport {
            profile: Profile::Smoke,
            idle: IdleResult {
                stations: 32,
                load: 0.05,
                horizon_ticks: 512 * 1000,
                slots: 1000,
                fast_wall_ns: 1_000,
                reference_wall_ns: 50_000,
                equivalent: true,
            },
            loaded: vec![
                LoadedResult {
                    stations: 32,
                    load: 0.5,
                    messages: 6_144,
                    slots: 20_000,
                    fast_wall_ns: 2_000,
                    reference_wall_ns: 20_000,
                    equivalent: true,
                    completed: true,
                },
                LoadedResult {
                    stations: 32,
                    load: 0.8,
                    messages: 6_144,
                    slots: 26_000,
                    fast_wall_ns: 3_000,
                    reference_wall_ns: 30_000,
                    equivalent: true,
                    completed: true,
                },
            ],
            contention: ContentionResult {
                stations: 32,
                waves: 24,
                messages: 768,
                slots: 18_000,
                fast_wall_ns: 2_500,
                reference_wall_ns: 10_000,
                equivalent: true,
                completed: true,
                search_skip_runs: 24,
                search_skipped_slots: 1_200,
            },
            drains: vec![DrainResult {
                protocol: "ddcr".into(),
                stations: 8,
                load: 0.1,
                wall_ns: 5_000,
                sim_ticks: 1_000_000,
                delivered: 10,
                completed: true,
            }],
            station_scale: vec![
                StationScaleResult {
                    stations: 64,
                    messages: 128,
                    slots: 2_000,
                    active_wall_ns: 4_000,
                    baseline_wall_ns: 9_000,
                    equivalent: true,
                    completed: true,
                    polls: 5_000,
                    station_slots: 128_000,
                },
                StationScaleResult {
                    stations: 2_048,
                    messages: 4_096,
                    slots: 60_000,
                    active_wall_ns: 10_000,
                    baseline_wall_ns: 120_000,
                    equivalent: true,
                    completed: true,
                    polls: 150_000,
                    station_slots: 122_880_000,
                },
            ],
            multichannel: MultichannelResult {
                channels: 4,
                participants: 32,
                messages: 2_400,
                workers: 4,
                host_parallelism: 8,
                serial_wall_ns: 40_000,
                parallel_wall_ns: 12_000,
                equivalent: true,
                completed: true,
                misses: 0,
                single_channel_feasible: false,
                multi_channel_feasible: true,
            },
            federation: FederationResult {
                segments: 4,
                participants: 32,
                messages: 2_400,
                workers: 4,
                host_parallelism: 8,
                serial_wall_ns: 40_000,
                parallel_wall_ns: 12_000,
                equivalent: true,
                completed: true,
                handoffs: 12,
                rounds: 96,
                n1_identical: true,
                misses: 0,
            },
            queue: QueueResult {
                operations: 40_000,
                wall_ns: 2_000_000,
            },
        }
        .to_json()
    }

    #[test]
    fn passing_report_round_trips_and_clears_gate() {
        let doc = passing_report();
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(check_report(&parsed), Vec::<String>::new());
    }

    #[test]
    fn slow_fast_path_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Object(idle)) = map.get_mut("idle_fast_forward") {
                idle.insert("speedup".into(), Json::Number(1.2));
            }
        }
        let violations = check_report(&doc);
        assert!(violations.iter().any(|v| v.contains("below gate")), "{violations:?}");
    }

    #[test]
    fn divergent_stats_fail_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Object(idle)) = map.get_mut("idle_fast_forward") {
                idle.insert("equivalent".into(), Json::Bool(false));
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("equivalent")));
    }

    #[test]
    fn missing_sections_are_reported() {
        let doc = Json::parse(r#"{"schema_version": 6}"#).unwrap();
        let violations = check_report(&doc);
        for needle in [
            "profile",
            "idle_fast_forward",
            "loaded_fast_forward",
            "contention_fast_forward",
            "protocol_drain",
            "station_scale",
            "multichannel",
            "federation",
            "edf_queue",
        ] {
            assert!(
                violations.iter().any(|v| v.contains(needle)),
                "no violation mentioning {needle}: {violations:?}"
            );
        }
    }

    #[test]
    fn outdated_schema_version_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            map.insert("schema_version".into(), Json::Number(1.0));
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("schema_version")));
    }

    #[test]
    fn slow_loaded_path_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("loaded_fast_forward") {
                if let Some(Json::Object(entry)) = entries.first_mut() {
                    entry.insert("speedup".into(), Json::Number(3.0));
                }
            }
        }
        let violations = check_report(&doc);
        assert!(
            violations.iter().any(|v| v.contains("below gate")),
            "{violations:?}"
        );
    }

    #[test]
    fn divergent_loaded_stats_fail_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("loaded_fast_forward") {
                if let Some(Json::Object(entry)) = entries.first_mut() {
                    entry.insert("equivalent".into(), Json::Bool(false));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("loaded_fast_forward[0].equivalent")));
    }

    #[test]
    fn loaded_grid_without_gated_point_fails() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("loaded_fast_forward") {
                if let Some(Json::Object(entry)) = entries.first_mut() {
                    entry.insert("stations".into(), Json::Number(8.0));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("no gated entry (>= 32 stations at load 0.5)")));
    }

    #[test]
    fn loaded_grid_without_high_load_gated_point_fails() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("loaded_fast_forward") {
                if let Some(Json::Object(entry)) = entries.last_mut() {
                    entry.insert("load".into(), Json::Number(0.3));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("no gated entry (>= 32 stations at load 0.8)")));
    }

    #[test]
    fn slow_high_load_point_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("loaded_fast_forward") {
                if let Some(Json::Object(entry)) = entries.last_mut() {
                    entry.insert("speedup".into(), Json::Number(4.0));
                }
            }
        }
        let violations = check_report(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("below gate") && v.contains("load=0.8")),
            "{violations:?}"
        );
    }

    #[test]
    fn slow_station_scale_point_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("station_scale") {
                if let Some(Json::Object(entry)) = entries.last_mut() {
                    entry.insert("speedup".into(), Json::Number(3.0));
                }
            }
        }
        let violations = check_report(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("station_scale") && v.contains("below gate")),
            "{violations:?}"
        );
    }

    #[test]
    fn ungated_station_scale_point_is_informational() {
        // Below the gated population, a modest speedup is recorded but
        // not enforced — the first grid point (64 stations) may sit
        // anywhere.
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("station_scale") {
                if let Some(Json::Object(entry)) = entries.first_mut() {
                    entry.insert("speedup".into(), Json::Number(1.1));
                }
            }
        }
        assert_eq!(check_report(&doc), Vec::<String>::new());
    }

    #[test]
    fn divergent_station_scale_stats_fail_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("station_scale") {
                if let Some(Json::Object(entry)) = entries.last_mut() {
                    entry.insert("equivalent".into(), Json::Bool(false));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("station_scale[1].equivalent")));
    }

    #[test]
    fn station_scale_without_gated_point_fails() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("station_scale") {
                if let Some(Json::Object(entry)) = entries.last_mut() {
                    entry.insert("stations".into(), Json::Number(512.0));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("station_scale has no gated entry")));
    }

    #[test]
    fn divergent_contention_stats_fail_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Object(contention)) = map.get_mut("contention_fast_forward") {
                contention.insert("equivalent".into(), Json::Bool(false));
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("contention_fast_forward.equivalent")));
    }

    #[test]
    fn disengaged_contention_tier_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Object(contention)) = map.get_mut("contention_fast_forward") {
                contention.insert("search_skip_runs".into(), Json::Number(0.0));
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("tier never engaged")));
    }

    #[test]
    fn incomplete_drain_fails_gate() {
        let mut doc = passing_report();
        if let Json::Object(map) = &mut doc {
            if let Some(Json::Array(entries)) = map.get_mut("protocol_drain") {
                if let Some(Json::Object(entry)) = entries.first_mut() {
                    entry.insert("completed".into(), Json::Bool(false));
                }
            }
        }
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("did not complete")));
    }

    fn edit_multichannel(doc: &mut Json, key: &str, value: Json) {
        if let Json::Object(map) = doc {
            if let Some(Json::Object(section)) = map.get_mut("multichannel") {
                section.insert(key.into(), value);
            }
        }
    }

    #[test]
    fn slow_multichannel_scaling_fails_gate_on_wide_hosts() {
        let mut doc = passing_report();
        edit_multichannel(&mut doc, "speedup", Json::Number(1.3));
        let violations = check_report(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("multichannel.speedup") && v.contains("below gate")),
            "{violations:?}"
        );
    }

    #[test]
    fn narrow_host_skips_speedup_gate_but_not_correctness() {
        // A 1-core box cannot show a 4-way speedup; the wall-clock gate is
        // waived there — but equivalence and the capacity facts never are.
        let mut doc = passing_report();
        edit_multichannel(&mut doc, "host_parallelism", Json::Number(1.0));
        edit_multichannel(&mut doc, "speedup", Json::Number(0.9));
        assert_eq!(check_report(&doc), Vec::<String>::new());
        edit_multichannel(&mut doc, "equivalent", Json::Bool(false));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("multichannel.equivalent")));
    }

    #[test]
    fn vacuous_capacity_claim_fails_gate() {
        // If the workload were already provable on one channel, the
        // section would prove nothing — the gate pins the frontier.
        let mut doc = passing_report();
        edit_multichannel(&mut doc, "single_channel_feasible", Json::Bool(true));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("single_channel_feasible")));
        let mut doc = passing_report();
        edit_multichannel(&mut doc, "multi_channel_feasible", Json::Bool(false));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("multi_channel_feasible")));
    }

    #[test]
    fn multichannel_misses_fail_gate() {
        let mut doc = passing_report();
        edit_multichannel(&mut doc, "misses", Json::Number(3.0));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("multichannel.misses")));
    }

    fn edit_federation(doc: &mut Json, key: &str, value: Json) {
        if let Json::Object(map) = doc {
            if let Some(Json::Object(section)) = map.get_mut("federation") {
                section.insert(key.into(), value);
            }
        }
    }

    #[test]
    fn slow_federation_scaling_fails_gate_on_wide_hosts() {
        let mut doc = passing_report();
        edit_federation(&mut doc, "speedup", Json::Number(1.3));
        let violations = check_report(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("federation.speedup") && v.contains("below gate")),
            "{violations:?}"
        );
    }

    #[test]
    fn narrow_host_waives_federation_speedup_but_not_identities() {
        // The speedup waiver never extends to the determinism identities:
        // worker-count equivalence and N=1 ≡ single-bus hold on any host.
        let mut doc = passing_report();
        edit_federation(&mut doc, "host_parallelism", Json::Number(1.0));
        edit_federation(&mut doc, "speedup", Json::Number(0.9));
        assert_eq!(check_report(&doc), Vec::<String>::new());
        edit_federation(&mut doc, "equivalent", Json::Bool(false));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("federation.equivalent")));
    }

    #[test]
    fn broken_n1_identity_fails_gate() {
        let mut doc = passing_report();
        edit_federation(&mut doc, "n1_identical", Json::Bool(false));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("federation.n1_identical")));
    }

    #[test]
    fn bridgeless_federation_fails_gate() {
        // Zero handoffs would mean the "federation" is four unrelated
        // engines — no bridge semantics were exercised at all.
        let mut doc = passing_report();
        edit_federation(&mut doc, "handoffs", Json::Number(0.0));
        assert!(check_report(&doc)
            .iter()
            .any(|v| v.contains("federation.handoffs")));
    }

    #[test]
    fn queue_measurement_counts_every_operation() {
        let result = measure_queue(Profile::Smoke);
        assert_eq!(result.operations, 40_000);
    }
}

