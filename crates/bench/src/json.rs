//! Minimal JSON tree: writer and parser for the perf-gate report
//! (`BENCH_engine.json`).
//!
//! The workspace's offline `serde` stand-in provides derive plumbing but no
//! serialization backend, so the benchmark report is built and read through
//! this small self-contained value type instead. It covers exactly the JSON
//! subset the report uses — objects, arrays, strings, finite numbers,
//! booleans, null — which is also the full JSON data model, so round-trips
//! are lossless for any report we emit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via `f64`; integers round-trip exactly
    /// up to 2^53, far beyond anything the report stores).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`) so output is
    /// deterministic and diffs of `BENCH_engine.json` are stable.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Looks up a key on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline,
    /// matching what tooling expects of a checked-in JSON artifact.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) if items.is_empty() => out.push_str("[]"),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) if map.is_empty() => out.push_str("{}"),
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing characters at byte {}", parser.pos));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            map.insert(key, self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shaped_document_round_trips() {
        let doc = Json::object([
            ("schema_version", Json::from(1u64)),
            ("profile", Json::from("smoke")),
            (
                "idle_fast_forward",
                Json::object([
                    ("speedup", Json::from(17.25)),
                    ("stations", Json::from(32u64)),
                    ("gate_passed", Json::from(true)),
                ]),
            ),
            (
                "protocol_drain",
                Json::Array(vec![
                    Json::object([
                        ("protocol", Json::from("ddcr")),
                        ("sim_ticks_per_sec", Json::from(1.5e9)),
                    ]),
                    Json::Null,
                ]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Deterministic output: keys sorted, stable formatting.
        assert_eq!(Json::parse(&text).unwrap().to_pretty(), text);
    }

    #[test]
    fn accessors_navigate_nested_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let items = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_bool(), Some(true));
        assert_eq!(items[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::String("tab\tquote\"slash\\newline\nunit\u{1}".into());
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn integers_print_without_exponent() {
        let mut out = String::new();
        write_number(&mut out, 250_000_000.0);
        assert_eq!(out, "250000000");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
