//! Protocol-comparison harness: run one workload through any of the MAC
//! protocols under identical channel conditions and summarise the outcome.

use ddcr_baseline::{CsmaCdStation, DcrStation, NpEdfOracle, QueueDiscipline};
use ddcr_core::{network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ChannelStats, Engine, MediumConfig, Message, SourceId, Ticks};
use ddcr_traffic::MessageSet;

/// Which MAC protocol to run.
#[derive(Debug, Clone)]
pub enum ProtocolKind {
    /// CSMA/DDCR with an explicit configuration (round-robin static index
    /// allocation over the whole static tree).
    Ddcr(DdcrConfig),
    /// IEEE 802.3 CSMA-CD with binary exponential backoff.
    CsmaCd(QueueDiscipline, u64),
    /// CSMA/DCR (802.3D), deterministic static-tree resolution.
    Dcr(QueueDiscipline),
    /// Centralized NP-EDF oracle (zero-contention lower bound).
    NpEdf,
}

impl ProtocolKind {
    /// Returns this protocol reseeded for one sweep job. Only CSMA-CD is
    /// stochastic; the deterministic protocols come back unchanged. The
    /// sweep runner calls this with a seed derived from
    /// `(master_seed, job_index)` so a grid's results are a pure function
    /// of the grid and the master seed, whatever the worker count.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> ProtocolKind {
        match self {
            ProtocolKind::CsmaCd(discipline, _) => ProtocolKind::CsmaCd(*discipline, seed),
            other => other.clone(),
        }
    }

    /// Short name for tables and CSV.
    pub fn name(&self) -> String {
        match self {
            ProtocolKind::Ddcr(cfg) if cfg.bursting.is_some() => "ddcr+burst".into(),
            ProtocolKind::Ddcr(cfg) if cfg.theta_numerator > 0 => {
                format!("ddcr(theta={})", cfg.theta_numerator)
            }
            ProtocolKind::Ddcr(_) => "ddcr".into(),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, _) => "csma-cd/fifo".into(),
            ProtocolKind::CsmaCd(QueueDiscipline::Edf, _) => "csma-cd/edf".into(),
            ProtocolKind::Dcr(_) => "csma-dcr".into(),
            ProtocolKind::NpEdf => "np-edf".into(),
        }
    }
}

/// Outcome summary of one protocol run.
///
/// `PartialEq` is field-for-field (including the `f64` fields, compared
/// exactly): the determinism regression tests assert that sweeps produce
/// *bitwise* identical summaries for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Protocol name.
    pub protocol: String,
    /// Messages scheduled.
    pub scheduled: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Deadline misses among deliveries **plus** undelivered messages
    /// (dropped by the protocol or still queued at cutoff).
    pub misses: usize,
    /// `misses / scheduled` (0 when nothing scheduled).
    pub miss_ratio: f64,
    /// Mean delivery latency in ticks.
    pub mean_latency: f64,
    /// Worst delivery latency in ticks.
    pub max_latency: u64,
    /// Median delivery latency in ticks (histogram bucket upper bound).
    pub p50_latency: u64,
    /// 95th-percentile delivery latency in ticks (histogram bucket upper
    /// bound).
    pub p95_latency: u64,
    /// 99th-percentile delivery latency in ticks (histogram bucket upper
    /// bound).
    pub p99_latency: u64,
    /// Worst observed per-epoch time-tree search overhead (empty + collision
    /// slots). Zero for protocols without live ξ metrics.
    pub xi_observed: u64,
    /// Channel utilization (busy fraction).
    pub utilization: f64,
    /// Collision events on the channel.
    pub collisions: u64,
    /// Total simulated ticks.
    pub total_ticks: u64,
    /// Whether the workload fully drained within the budget.
    pub completed: bool,
}

impl RunSummary {
    /// Builds a summary from streaming counters and the latency histogram
    /// only — it never touches `stats.deliveries`, so it is exact even for
    /// runs with delivery retention disabled.
    fn from_stats(
        protocol: String,
        scheduled: usize,
        stats: &ChannelStats,
        completed: bool,
        xi_observed: u64,
    ) -> Self {
        let delivered = usize::try_from(stats.delivered).unwrap_or(usize::MAX);
        let undelivered = scheduled.saturating_sub(delivered);
        let misses = stats.deadline_misses() + undelivered;
        let (p50, p95, p99) = stats.histogram_percentiles();
        RunSummary {
            protocol,
            scheduled,
            delivered,
            misses,
            miss_ratio: if scheduled == 0 {
                0.0
            } else {
                misses as f64 / scheduled as f64
            },
            mean_latency: stats.mean_latency(),
            max_latency: stats.max_latency().as_u64(),
            p50_latency: p50.as_u64(),
            p95_latency: p95.as_u64(),
            p99_latency: p99.as_u64(),
            xi_observed,
            utilization: stats.utilization(),
            collisions: stats.collisions,
            total_ticks: stats.total_ticks.as_u64(),
            completed,
        }
    }
}

/// A reasonable CSMA/DDCR configuration for a message set: class width
/// sized so the horizon covers the largest deadline, round-robin static
/// allocation, no compressed time, no bursting.
///
/// # Panics
///
/// Panics if the set has zero sources (nothing to configure).
pub fn default_ddcr_config(set: &MessageSet, medium: &MediumConfig) -> DdcrConfig {
    let c = network::recommended_class_width(set, 64, medium);
    DdcrConfig::for_sources(set.sources(), c).expect("message set must have sources")
}

/// Runs `schedule` through the chosen protocol on `medium`, giving up (and
/// reporting `completed = false`) after `budget` ticks.
///
/// # Errors
///
/// Returns a descriptive string on assembly failures (bad configuration,
/// schedule referencing unknown sources).
pub fn run_protocol(
    kind: &ProtocolKind,
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    budget: Ticks,
) -> Result<RunSummary, String> {
    let scheduled = schedule.len();
    let name = kind.name();
    match kind {
        ProtocolKind::Ddcr(config) => {
            let allocation = StaticAllocation::round_robin(config.static_tree, set.sources())
                .map_err(|e| e.to_string())?;
            let mut engine = network::build_engine(set, config, &allocation, medium)
                .map_err(|e| e.to_string())?;
            let (time, static_) =
                network::xi_bound_tables(config).map_err(|e| e.to_string())?;
            engine.set_xi_bounds(time, static_);
            run_engine(&mut engine, schedule, budget, name, scheduled)
        }
        ProtocolKind::CsmaCd(discipline, seed) => {
            let mut engine = Engine::new(medium).map_err(|e| e.to_string())?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(CsmaCdStation::new(
                    SourceId(i),
                    medium,
                    *discipline,
                    *seed,
                )));
            }
            run_engine(&mut engine, schedule, budget, name, scheduled)
        }
        ProtocolKind::Dcr(discipline) => {
            let mut engine = Engine::new(medium).map_err(|e| e.to_string())?;
            for i in 0..set.sources() {
                engine.add_station(Box::new(
                    DcrStation::new(SourceId(i), set.sources(), medium, *discipline)
                        .map_err(|e| e.to_string())?,
                ));
            }
            run_engine(&mut engine, schedule, budget, name, scheduled)
        }
        ProtocolKind::NpEdf => {
            let stats = NpEdfOracle::run_schedule(medium, schedule.to_vec(), budget)
                .map_err(|e| e.to_string())?;
            Ok(RunSummary::from_stats(name, scheduled, &stats, true, 0))
        }
    }
}

/// Runs several protocols over the same workload.
///
/// # Errors
///
/// Propagates the first protocol assembly failure.
pub fn compare(
    kinds: &[ProtocolKind],
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    budget: Ticks,
) -> Result<Vec<RunSummary>, String> {
    kinds
        .iter()
        .map(|k| run_protocol(k, set, schedule, medium, budget))
        .collect()
}

/// Runs several protocols over the same workload **concurrently** (one OS
/// thread per protocol via `crossbeam::scope`). Simulations are
/// independent and deterministic, so results are identical to [`compare`]
/// — only wall-clock changes. Useful for the larger experiment sweeps.
///
/// # Errors
///
/// Propagates the first protocol assembly failure (in `kinds` order).
pub fn compare_parallel(
    kinds: &[ProtocolKind],
    set: &MessageSet,
    schedule: &[Message],
    medium: MediumConfig,
    budget: Ticks,
) -> Result<Vec<RunSummary>, String> {
    let slots: parking_lot::Mutex<Vec<Option<Result<RunSummary, String>>>> =
        parking_lot::Mutex::new(vec![None; kinds.len()]);
    crossbeam::thread::scope(|scope| {
        for (index, kind) in kinds.iter().enumerate() {
            let slots = &slots;
            scope.spawn(move |_| {
                let result = run_protocol(kind, set, schedule, medium, budget);
                slots.lock()[index] = Some(result);
            });
        }
    })
    .map_err(|_| "a simulation thread panicked".to_owned())?;
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

fn run_engine(
    engine: &mut Engine,
    schedule: &[Message],
    budget: Ticks,
    name: String,
    scheduled: usize,
) -> Result<RunSummary, String> {
    // Sweep jobs only read streaming counters and the latency histogram,
    // so drop per-delivery records entirely: memory stays constant however
    // long the run is.
    engine.set_retention(Some(0), Some(0));
    engine
        .add_arrivals(schedule.to_vec())
        .map_err(|e| e.to_string())?;
    let completed = engine.run_to_completion(budget).is_ok();
    let xi_observed = engine
        .take_metrics()
        .map(|m| m.max_tts_overhead)
        .unwrap_or(0);
    Ok(RunSummary::from_stats(
        name,
        scheduled,
        engine.stats(),
        completed,
        xi_observed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_traffic::{scenario, ScheduleBuilder};

    fn workload() -> (MessageSet, Vec<Message>) {
        let set = scenario::uniform(4, 8_000, Ticks(5_000_000), 0.2).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(2_000_000)).unwrap();
        (set, schedule)
    }

    #[test]
    fn all_protocols_drain_a_light_workload() {
        let (set, schedule) = workload();
        let medium = MediumConfig::ethernet();
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 1),
            ProtocolKind::Dcr(QueueDiscipline::Fifo),
            ProtocolKind::NpEdf,
        ];
        for summary in compare(&kinds, &set, &schedule, medium, Ticks(1_000_000_000)).unwrap()
        {
            assert!(summary.completed, "{} did not complete", summary.protocol);
            assert_eq!(summary.delivered, summary.scheduled, "{}", summary.protocol);
        }
    }

    #[test]
    fn oracle_has_no_collisions_and_lowest_latency() {
        let (set, schedule) = workload();
        let medium = MediumConfig::ethernet();
        let oracle =
            run_protocol(&ProtocolKind::NpEdf, &set, &schedule, medium, Ticks(1_000_000_000))
                .unwrap();
        let ddcr = run_protocol(
            &ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            &set,
            &schedule,
            medium,
            Ticks(1_000_000_000),
        )
        .unwrap();
        assert_eq!(oracle.collisions, 0);
        assert!(oracle.max_latency <= ddcr.max_latency);
    }

    #[test]
    fn parallel_compare_matches_sequential() {
        let (set, schedule) = workload();
        let medium = MediumConfig::ethernet();
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 1),
            ProtocolKind::Dcr(QueueDiscipline::Fifo),
            ProtocolKind::NpEdf,
        ];
        let sequential =
            compare(&kinds, &set, &schedule, medium, Ticks(1_000_000_000)).unwrap();
        let parallel =
            compare_parallel(&kinds, &set, &schedule, medium, Ticks(1_000_000_000)).unwrap();
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.max_latency, b.max_latency);
            assert_eq!(a.total_ticks, b.total_ticks);
        }
    }

    #[test]
    fn names_are_distinct() {
        let medium = MediumConfig::ethernet();
        let set = scenario::uniform(2, 1_000, Ticks(1_000_000), 0.1).unwrap();
        let cfg = default_ddcr_config(&set, &medium);
        let names: Vec<String> = [
            ProtocolKind::Ddcr(cfg),
            ProtocolKind::Ddcr(cfg.with_compressed_time(2)),
            ProtocolKind::Ddcr(cfg.with_bursting(ddcr_core::BurstConfig::default())),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 0),
            ProtocolKind::CsmaCd(QueueDiscipline::Edf, 0),
            ProtocolKind::Dcr(QueueDiscipline::Fifo),
            ProtocolKind::NpEdf,
        ]
        .iter()
        .map(ProtocolKind::name)
        .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }
}
