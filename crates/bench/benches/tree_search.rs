//! Criterion benches for the P1/P2 analysis (experiments E1–E5 cost side):
//! how fast each route to `ξ_k^t` is, and the cost of the multi-tree DP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcr_tree::{
    asymptotic, average, closed_form, divide, multi, search, witness, SearchTimeTable,
    TreeShape,
};

fn bench_xi_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("xi_routes");
    for (m, n) in [(2u64, 6u32), (4, 3), (4, 5)] {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        group.bench_with_input(
            BenchmarkId::new("dp_full_table", format!("m{m}_t{t}")),
            &shape,
            |b, &shape| b.iter(|| SearchTimeTable::compute(black_box(shape)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("closed_form_all_k", format!("m{m}_t{t}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for k in 0..=shape.leaves() {
                        acc += closed_form::xi_closed(black_box(shape), k).unwrap();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("divide_all_k", format!("m{m}_t{t}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for k in 0..=shape.leaves() {
                        acc += divide::xi_divide(black_box(shape), k).unwrap();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("asymptotic_all_k", format!("m{m}_t{t}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for k in 2..=shape.leaves() {
                        acc += asymptotic::xi_tilde(black_box(shape), k as f64);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_ground_truth_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ground_truth_search");
    let shape = TreeShape::new(4, 3).unwrap();
    for k in [2u64, 8, 32, 64] {
        let active: Vec<u64> = (0..k).map(|i| i * (64 / k)).collect();
        group.bench_with_input(BenchmarkId::new("replay_64q", k), &active, |b, active| {
            b.iter(|| search::search_active_leaves(black_box(shape), black_box(active)).unwrap())
        });
    }
    group.finish();
}

fn bench_multi_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_tree_p2");
    let shape = TreeShape::new(4, 3).unwrap();
    for (u, v) in [(16u64, 4u64), (64, 8), (128, 8)] {
        let p = multi::MultiTreeProblem::new(shape, u, v).unwrap();
        group.bench_with_input(
            BenchmarkId::new("exact_dp", format!("u{u}_v{v}")),
            &p,
            |b, p| b.iter(|| p.exact_optimum().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("asymptotic_bound", format!("u{u}_v{v}")),
            &p,
            |b, p| b.iter(|| black_box(p.bound())),
        );
    }
    group.finish();
}

fn bench_witness_and_average(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_and_average");
    for (m, n) in [(4u64, 3u32), (4, 5)] {
        let shape = TreeShape::new(m, n).unwrap();
        let t = shape.leaves();
        group.bench_with_input(
            BenchmarkId::new("worst_case_witness", format!("t{t}_k{}", t / 3)),
            &shape,
            |b, &shape| {
                b.iter(|| witness::worst_case_witness(black_box(shape), t / 3).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("expected_table", format!("t{t}")),
            &shape,
            |b, &shape| {
                b.iter(|| average::ExpectedSearchTable::compute(black_box(shape)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_xi_routes,
    bench_ground_truth_search,
    bench_multi_tree,
    bench_witness_and_average
);
criterion_main!(benches);
