//! Criterion benches for feasibility-condition evaluation (§4.3): the
//! per-class cost of computing `B_DDCR`, which a deployment tool would run
//! over every candidate dimensioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcr_core::{feasibility, DdcrConfig, StaticAllocation};
use ddcr_sim::MediumConfig;
use ddcr_traffic::scenario;

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility");
    let medium = MediumConfig::gigabit_ethernet();
    for z in [4u32, 16, 64] {
        let set = scenario::videoconference(z).unwrap();
        let width = ddcr_core::network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, width).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        group.bench_with_input(
            BenchmarkId::new("videoconference", z),
            &(set, config, allocation),
            |b, (set, config, allocation)| {
                b.iter(|| feasibility::evaluate(set, config, allocation, &medium).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
