//! Criterion benches for the simulator and the MAC protocols: simulated
//! channel-time per wall-clock second for CSMA/DDCR and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcr_baseline::QueueDiscipline;
use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn bench_protocol_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(10);
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(8, 8_000, Ticks(5_000_000), 0.4).unwrap();
    let schedule = ScheduleBuilder::peak_load(&set)
        .build(Ticks(2_000_000))
        .unwrap();
    let kinds = [
        ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
        ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 7),
        ProtocolKind::Dcr(QueueDiscipline::Fifo),
        ProtocolKind::NpEdf,
    ];
    for kind in &kinds {
        group.bench_with_input(
            BenchmarkId::new("drain_peak_load", kind.name()),
            kind,
            |b, kind| {
                b.iter(|| {
                    run_protocol(kind, &set, &schedule, medium, Ticks(10_000_000_000)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_idle_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(8, 8_000, Ticks(5_000_000), 0.4).unwrap();
    let empty: Vec<ddcr_sim::Message> = vec![];
    group.bench_function("idle_ddcr_100k_slots", |b| {
        b.iter(|| {
            let kind = ProtocolKind::Ddcr(default_ddcr_config(&set, &medium));
            // Horizon run over an empty schedule measures raw slot cost.
            let mut engine = ddcr_core::network::build_engine(
                &set,
                &default_ddcr_config(&set, &medium),
                &ddcr_core::StaticAllocation::round_robin(
                    default_ddcr_config(&set, &medium).static_tree,
                    set.sources(),
                )
                .unwrap(),
                medium,
            )
            .unwrap();
            engine.add_arrivals(empty.clone()).unwrap();
            engine.run_until(Ticks(512 * 100_000));
            let _ = kind;
            engine.stats().silence_slots
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_throughput, bench_idle_channel);
criterion_main!(benches);
