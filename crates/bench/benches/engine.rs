//! Criterion benches for the engine hot path: idle fast-forward slot
//! throughput (optimized vs the retained reference stepper), loaded
//! (busy-period) fast-forward throughput on a bursting DDCR drain,
//! protocol drain rates at several station counts and loads, and EDF
//! queue push/pop throughput.
//!
//! These are the same scenarios the perf gate measures; `bench_engine`
//! runs them standalone and writes `BENCH_engine.json` (see
//! `docs/PERF.md`). Under the offline criterion shim each case is a
//! single-shot timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddcr_baseline::QueueDiscipline;
use ddcr_bench::enginebench::{loaded_workload, measure_queue, run_loaded, Profile};
use ddcr_bench::harness::{default_ddcr_config, run_protocol, ProtocolKind};
use ddcr_core::{network, StaticAllocation};
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::{scenario, ScheduleBuilder};

fn bench_idle_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_idle");
    group.sample_size(10);
    let medium = MediumConfig::ethernet();
    let set = scenario::uniform(32, 8_000, Ticks(5_000_000), 0.05).unwrap();
    let horizon = Ticks(medium.slot_ticks * 400_000);
    let schedule = ScheduleBuilder::bounded_random(&set, 0.05, 11)
        .unwrap()
        .build(horizon)
        .unwrap();
    for (name, fast_forward) in [("fast_forward", true), ("reference_stepper", false)] {
        group.bench_with_input(
            BenchmarkId::new("idle_32_stations_400k_slots", name),
            &fast_forward,
            |b, &fast_forward| {
                b.iter(|| {
                    let config = default_ddcr_config(&set, &medium);
                    let allocation =
                        StaticAllocation::round_robin(config.static_tree, set.sources())
                            .unwrap();
                    let mut engine =
                        network::build_engine(&set, &config, &allocation, medium).unwrap();
                    engine.set_fast_forward(fast_forward);
                    engine.add_arrivals(schedule.clone()).unwrap();
                    engine.run_until(horizon);
                    engine.stats().silence_slots
                })
            },
        );
    }
    group.finish();
}

fn bench_loaded_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_loaded");
    group.sample_size(10);
    let medium = MediumConfig::ethernet();
    let (set, schedule, _horizon) = loaded_workload(32, 0.5, 16);
    for (name, optimized) in [("fast_forward", true), ("reference_stepper", false)] {
        group.bench_with_input(
            BenchmarkId::new("loaded_32_stations_load05_burst", name),
            &optimized,
            |b, &optimized| {
                b.iter(|| run_loaded(&set, &schedule, medium, optimized).0.delivered)
            },
        );
    }
    group.finish();
}

fn bench_protocol_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_drain");
    group.sample_size(10);
    let medium = MediumConfig::ethernet();
    for (stations, load) in [(8, 0.1), (32, 0.1), (32, 0.6)] {
        let set = scenario::uniform(stations, 8_000, Ticks(5_000_000), load).unwrap();
        let schedule = ScheduleBuilder::bounded_random(&set, load, 23)
            .unwrap()
            .build(Ticks(4_000_000))
            .unwrap();
        let kinds = [
            ProtocolKind::Ddcr(default_ddcr_config(&set, &medium)),
            ProtocolKind::CsmaCd(QueueDiscipline::Fifo, 7),
            ProtocolKind::NpEdf,
        ];
        for kind in &kinds {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("drain_z{stations}_load{load}"),
                    kind.name(),
                ),
                kind,
                |b, kind| {
                    b.iter(|| {
                        run_protocol(kind, &set, &schedule, medium, Ticks(40_000_000_000))
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_edf_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_queue");
    group.sample_size(10);
    group.bench_function("push_pop_20k_scrambled", |b| {
        b.iter(|| measure_queue(Profile::Smoke).wall_ns)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_idle_fast_forward,
    bench_loaded_fast_forward,
    bench_protocol_drain,
    bench_edf_queue
);
criterion_main!(benches);
