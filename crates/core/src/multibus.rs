//! Parallel broadcast media — "a broadcast medium (many such media can be
//! used in parallel)" (§3.1).
//!
//! A station may have interfaces on several independent busses, with each
//! message class pinned to one bus. Because the busses are physically
//! independent, the HRTDM analysis composes: the instance is feasible iff
//! **every bus's projected message set** satisfies the §4.3 feasibility
//! conditions on that bus. This module provides the class→bus partition,
//! a greedy feasibility-driven partitioner, per-bus evaluation, and a
//! multi-bus simulation runner (one [`ddcr_sim::Engine`] per bus).

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::feasibility::{self, FeasibilityReport};
use crate::indices::StaticAllocation;
use crate::network::{self, RunLimit};
use ddcr_sim::{ChannelStats, ClassId, MediumConfig, Message, Ticks};
use ddcr_traffic::{MessageClass, MessageSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A partition of message classes over parallel busses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusAssignment {
    buses: usize,
    bus_of_class: BTreeMap<ClassId, usize>,
}

impl BusAssignment {
    /// Builds an assignment, validating every class of the set is mapped
    /// to a bus within range.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] on unmapped classes or
    /// out-of-range bus indices.
    pub fn new(
        set: &MessageSet,
        buses: usize,
        bus_of_class: BTreeMap<ClassId, usize>,
    ) -> Result<Self, DdcrError> {
        if buses == 0 {
            return Err(DdcrError::InvalidConfig("at least one bus required".into()));
        }
        for class in set.classes() {
            match bus_of_class.get(&class.id) {
                None => {
                    return Err(DdcrError::InvalidConfig(format!(
                        "class {} not assigned to any bus",
                        class.id
                    )))
                }
                Some(&b) if b >= buses => {
                    return Err(DdcrError::InvalidConfig(format!(
                        "class {} assigned to bus {b} of {buses}",
                        class.id
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(BusAssignment {
            buses,
            bus_of_class,
        })
    }

    /// Number of busses.
    pub fn buses(&self) -> usize {
        self.buses
    }

    /// The bus a class rides on.
    ///
    /// # Panics
    ///
    /// Panics if the class was not part of the set the assignment was
    /// validated against.
    pub fn bus_of(&self, class: ClassId) -> usize {
        self.bus_of_class[&class]
    }

    /// Projects the message set onto one bus (same sources, the subset of
    /// classes riding that bus).
    ///
    /// # Errors
    ///
    /// Propagates set-construction failures (cannot happen for projections
    /// of a valid set).
    pub fn project(&self, set: &MessageSet, bus: usize) -> Result<MessageSet, DdcrError> {
        let classes: Vec<MessageClass> = set
            .classes()
            .iter()
            .filter(|c| self.bus_of(c.id) == bus)
            .cloned()
            .collect();
        MessageSet::new(set.sources(), classes)
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))
    }
}

/// Greedy feasibility-driven partitioner: classes are placed heaviest
/// first (by offered load), each onto the bus whose projected load is
/// currently smallest — classic LPT balancing, which is what a capacity
/// planner would start from.
pub fn balance_by_load(set: &MessageSet, buses: usize) -> BusAssignment {
    let mut order: Vec<&MessageClass> = set.classes().iter().collect();
    order.sort_by(|a, b| {
        b.offered_load()
            .partial_cmp(&a.offered_load())
            .expect("finite loads")
            .then(a.id.0.cmp(&b.id.0))
    });
    let mut load = vec![0.0f64; buses.max(1)];
    let mut bus_of_class = BTreeMap::new();
    for class in order {
        let (bus, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one bus");
        bus_of_class.insert(class.id, bus);
        load[bus] += class.offered_load();
    }
    BusAssignment {
        buses: buses.max(1),
        bus_of_class,
    }
}

/// Per-bus feasibility: the multi-bus instance is provable iff every
/// projected set is.
///
/// # Errors
///
/// Propagates evaluation failures from any bus.
pub fn evaluate(
    set: &MessageSet,
    assignment: &BusAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: &MediumConfig,
) -> Result<Vec<FeasibilityReport>, DdcrError> {
    let mut reports = Vec::with_capacity(assignment.buses());
    for bus in 0..assignment.buses() {
        let projected = assignment.project(set, bus)?;
        reports.push(feasibility::evaluate(
            &projected,
            config,
            allocation,
            medium,
        )?);
    }
    Ok(reports)
}

/// Runs a schedule over parallel busses: each message is routed to its
/// class's bus and each bus is simulated independently (they share no
/// physical state). Returns per-bus statistics.
///
/// # Errors
///
/// Propagates assembly and completion failures from any bus.
pub fn run(
    set: &MessageSet,
    schedule: Vec<Message>,
    assignment: &BusAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
    budget: Ticks,
) -> Result<Vec<ChannelStats>, DdcrError> {
    let mut per_bus: Vec<Vec<Message>> = vec![Vec::new(); assignment.buses()];
    for msg in schedule {
        per_bus[assignment.bus_of(msg.class)].push(msg);
    }
    let mut stats = Vec::with_capacity(assignment.buses());
    for (bus, messages) in per_bus.into_iter().enumerate() {
        let projected = assignment.project(set, bus)?;
        stats.push(network::run(
            &projected,
            messages,
            config,
            allocation,
            medium,
            RunLimit::Completion(budget),
        )?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_traffic::{scenario, ScheduleBuilder};

    fn setup(z: u32) -> (MessageSet, DdcrConfig, StaticAllocation, MediumConfig) {
        let set = scenario::videoconference(z).unwrap();
        let medium = MediumConfig::gigabit_ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        (set, config, allocation, medium)
    }

    #[test]
    fn balance_assigns_every_class() {
        let (set, ..) = setup(6);
        let assignment = balance_by_load(&set, 3);
        assert_eq!(assignment.buses(), 3);
        for class in set.classes() {
            assert!(assignment.bus_of(class.id) < 3);
        }
        // Load roughly balanced: no bus more than twice the lightest.
        let loads: Vec<f64> = (0..3)
            .map(|b| assignment.project(&set, b).unwrap().offered_load())
            .collect();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= 2.0 * min + 1e-9, "{loads:?}");
    }

    #[test]
    fn projections_partition_the_set() {
        let (set, ..) = setup(4);
        let assignment = balance_by_load(&set, 2);
        let total: usize = (0..2)
            .map(|b| assignment.project(&set, b).unwrap().classes().len())
            .sum();
        assert_eq!(total, set.classes().len());
    }

    #[test]
    fn more_buses_increase_provable_capacity() {
        // A participant count infeasible on one bus becomes provable on
        // two: the §3.1 "media in parallel" payoff.
        let (set, config, allocation, medium) = setup(20);
        let one_bus = balance_by_load(&set, 1);
        let two_bus = balance_by_load(&set, 2);
        let single = evaluate(&set, &one_bus, &config, &allocation, &medium).unwrap();
        let double = evaluate(&set, &two_bus, &config, &allocation, &medium).unwrap();
        assert!(!single.iter().all(FeasibilityReport::feasible));
        assert!(double.iter().all(FeasibilityReport::feasible));
    }

    #[test]
    fn multibus_run_drains_and_meets_deadlines() {
        let (set, config, allocation, medium) = setup(8);
        let assignment = balance_by_load(&set, 2);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(8_000_000))
            .unwrap();
        let n = schedule.len();
        let stats = run(
            &set,
            schedule,
            &assignment,
            &config,
            &allocation,
            medium,
            Ticks(100_000_000_000),
        )
        .unwrap();
        let delivered: usize = stats.iter().map(|s| s.deliveries.len()).sum();
        let misses: usize = stats.iter().map(ChannelStats::deadline_misses).sum();
        assert_eq!(delivered, n);
        assert_eq!(misses, 0);
    }

    #[test]
    fn validation_rejects_bad_assignments() {
        let (set, ..) = setup(2);
        assert!(BusAssignment::new(&set, 0, BTreeMap::new()).is_err());
        assert!(BusAssignment::new(&set, 2, BTreeMap::new()).is_err());
        let mut map = BTreeMap::new();
        for class in set.classes() {
            map.insert(class.id, 5usize);
        }
        assert!(BusAssignment::new(&set, 2, map).is_err());
    }
}
