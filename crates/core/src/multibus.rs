//! Multichannel parallel DDCR — "a broadcast medium (many such media can
//! be used in parallel)" (§3.1).
//!
//! A station may have interfaces on several independent channels, with
//! each message class pinned to one channel. Because the channels are
//! physically independent, the HRTDM analysis composes: the instance is
//! feasible iff **every channel's projected message set** satisfies the
//! §4.3 feasibility conditions on that channel, and each channel gets its
//! own search budget from the P2 multi-tree bound
//! ([`ddcr_tree::multi::MultiTreeProblem`]).
//!
//! This module provides:
//!
//! * the class→channel partition ([`ChannelAssignment`]) and a
//!   deterministic greedy LPT partitioner ([`balance_by_load`]);
//! * per-channel feasibility ([`evaluate`]) and per-channel ξ budgets
//!   ([`channel_budgets`]);
//! * a **parallel multichannel runner** ([`run_channels`] /
//!   [`run_channels_with`]): one independent [`ddcr_sim::Engine`] per
//!   channel, advanced by a crossbeam worker pool using the same
//!   deterministic fan-out/fan-in pattern as the bench sweep runner.
//!   Each channel is a self-contained deterministic simulation, so the
//!   [`MultichannelReport`] is byte-identical for any worker count, and a
//!   one-channel run is bitwise equal to the single-bus engine.
//!
//! Metrics, JSONL traces and fault plans all route per channel: every
//! engine gets its own observed-ξ windows, its own headerless trace
//! buffer (merged into one channel-tagged document by
//! [`MultichannelReport::write_trace`]) and its own fault plan seeded via
//! [`ddcr_sim::rng::job_seed`]`(master, channel)`.

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::feasibility::{self, FeasibilityReport};
use crate::indices::StaticAllocation;
use crate::network;
use ddcr_sim::{
    ChannelStats, ClassId, Engine, FaultPlan, FaultRates, JsonlSink, MediumConfig, Message,
    SimMetrics, Ticks,
};
use ddcr_traffic::{MessageClass, MessageSet};
use ddcr_tree::multi::MultiTreeProblem;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A partition of message classes over parallel broadcast channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    channels: usize,
    channel_of_class: BTreeMap<ClassId, usize>,
}

impl ChannelAssignment {
    /// Builds an assignment, validating every class of the set is mapped
    /// to a channel within range.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] on unmapped classes or
    /// out-of-range channel indices.
    pub fn new(
        set: &MessageSet,
        channels: usize,
        channel_of_class: BTreeMap<ClassId, usize>,
    ) -> Result<Self, DdcrError> {
        if channels == 0 {
            return Err(DdcrError::InvalidConfig(
                "at least one channel required".into(),
            ));
        }
        for class in set.classes() {
            match channel_of_class.get(&class.id) {
                None => {
                    return Err(DdcrError::InvalidConfig(format!(
                        "class {} not assigned to any channel",
                        class.id
                    )))
                }
                Some(&c) if c >= channels => {
                    return Err(DdcrError::InvalidConfig(format!(
                        "class {} assigned to channel {c} of {channels}",
                        class.id
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(ChannelAssignment {
            channels,
            channel_of_class,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The channel a class rides on.
    ///
    /// # Panics
    ///
    /// Panics if the class was not part of the set the assignment was
    /// validated against.
    pub fn channel_of(&self, class: ClassId) -> usize {
        self.channel_of_class[&class]
    }

    /// Projects the message set onto one channel (same sources, the subset
    /// of classes riding that channel).
    ///
    /// # Errors
    ///
    /// Propagates set-construction failures (cannot happen for projections
    /// of a valid set).
    pub fn project(&self, set: &MessageSet, channel: usize) -> Result<MessageSet, DdcrError> {
        let classes: Vec<MessageClass> = set
            .classes()
            .iter()
            .filter(|c| self.channel_of(c.id) == channel)
            .cloned()
            .collect();
        MessageSet::new(set.sources(), classes)
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))
    }

    /// Routes a schedule to the channels: message order within each
    /// channel is the original schedule order, so the split is a pure
    /// function of the assignment.
    pub fn split_schedule(&self, schedule: Vec<Message>) -> Vec<Vec<Message>> {
        let mut per_channel: Vec<Vec<Message>> = vec![Vec::new(); self.channels];
        for msg in schedule {
            per_channel[self.channel_of(msg.class)].push(msg);
        }
        per_channel
    }
}

/// Greedy feasibility-driven partitioner: classes are placed heaviest
/// first (by offered load), each onto the channel whose projected load is
/// currently smallest — classic LPT balancing, which is what a capacity
/// planner would start from.
///
/// Fully deterministic: the placement order breaks load ties on
/// [`ClassId`], and among equally loaded channels the **lowest channel
/// index** wins (a strict-less fold, not `Iterator::min_by`, whose
/// tie-breaking favours the last minimum and would let accumulated
/// floating-point loads pick different channels across platforms).
pub fn balance_by_load(set: &MessageSet, channels: usize) -> ChannelAssignment {
    let channels = channels.max(1);
    let mut order: Vec<&MessageClass> = set.classes().iter().collect();
    order.sort_by(|a, b| {
        b.offered_load()
            .partial_cmp(&a.offered_load())
            .expect("finite loads")
            .then(a.id.0.cmp(&b.id.0))
    });
    let mut load = vec![0.0f64; channels];
    let mut channel_of_class = BTreeMap::new();
    for class in order {
        let mut lightest = 0usize;
        for (channel, &l) in load.iter().enumerate().skip(1) {
            if l < load[lightest] {
                lightest = channel;
            }
        }
        channel_of_class.insert(class.id, lightest);
        load[lightest] += class.offered_load();
    }
    ChannelAssignment {
        channels,
        channel_of_class,
    }
}

/// Per-channel feasibility: the multichannel instance is provable iff
/// every projected set is.
///
/// # Errors
///
/// Propagates evaluation failures from any channel.
pub fn evaluate(
    set: &MessageSet,
    assignment: &ChannelAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: &MediumConfig,
) -> Result<Vec<FeasibilityReport>, DdcrError> {
    let mut reports = Vec::with_capacity(assignment.channels());
    for channel in 0..assignment.channels() {
        let projected = assignment.project(set, channel)?;
        reports.push(feasibility::evaluate(
            &projected,
            config,
            allocation,
            medium,
        )?);
    }
    Ok(reports)
}

/// One channel's search budget: the P2 multi-tree bound for the channel's
/// binding (tightest-slack) class, plus the channel's shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelXiBudget {
    /// Channel index.
    pub channel: usize,
    /// Classes projected onto this channel.
    pub classes: usize,
    /// Offered load of the projection (bits/tick).
    pub offered_load: f64,
    /// Interference bound `u(M)` of the binding class (0 if empty).
    pub u: u64,
    /// Static trees `v(M)` of the binding class (0 if empty).
    pub v: u64,
    /// P2 bound `v·ξ̃_{u/v}^q` in slots for the binding class — the
    /// channel's worst-case static-search allowance.
    pub p2_slots: f64,
    /// Whether every class projected onto this channel is feasible.
    pub feasible: bool,
}

/// Derives each channel's ξ budget from its projected feasibility report:
/// the binding class's `(u, v)` through the memoized P2 multi-tree bound.
///
/// # Errors
///
/// Propagates evaluation and projection failures.
pub fn channel_budgets(
    set: &MessageSet,
    assignment: &ChannelAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: &MediumConfig,
) -> Result<Vec<ChannelXiBudget>, DdcrError> {
    let reports = evaluate(set, assignment, config, allocation, medium)?;
    let mut budgets = Vec::with_capacity(reports.len());
    for (channel, report) in reports.iter().enumerate() {
        let projected = assignment.project(set, channel)?;
        let budget = match report.tightest() {
            None => ChannelXiBudget {
                channel,
                classes: 0,
                offered_load: 0.0,
                u: 0,
                v: 0,
                p2_slots: 0.0,
                feasible: true,
            },
            Some(tightest) => {
                let p2_slots = if tightest.u == 0 {
                    0.0
                } else {
                    MultiTreeProblem::new(
                        config.static_tree,
                        tightest.u.max(2 * tightest.v),
                        tightest.v,
                    )
                    .map_err(DdcrError::Tree)?
                    .bound_cached()
                };
                ChannelXiBudget {
                    channel,
                    classes: projected.classes().len(),
                    offered_load: projected.offered_load(),
                    u: tightest.u,
                    v: tightest.v,
                    p2_slots,
                    feasible: report.feasible(),
                }
            }
        };
        budgets.push(budget);
    }
    Ok(budgets)
}

/// Per-channel fault injection for a multichannel run: channel `c`'s plan
/// is generated with seed [`ddcr_sim::rng::job_seed`]`(master_seed, c)`,
/// so plans are independent across channels yet fully replayable.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Master seed the per-channel plan seeds derive from.
    pub master_seed: u64,
    /// Fault rates applied on every channel.
    pub rates: FaultRates,
    /// Plan horizon in slots.
    pub horizon_slots: u64,
}

/// Options for a multichannel run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads advancing channels (clamped to `[1, channels]`).
    pub workers: usize,
    /// Completion give-up horizon per channel.
    pub budget: Ticks,
    /// Enable per-channel metrics (and, on the DDCR path, live observed-ξ
    /// checks against the analytic bound).
    pub metrics: bool,
    /// Capture each channel's JSONL event stream for
    /// [`MultichannelReport::write_trace`].
    pub trace: bool,
    /// Retention cap for per-channel delivery/lost records
    /// (`None` = unbounded).
    pub retention: Option<usize>,
    /// Per-channel fault injection (`None` = fault-free).
    pub faults: Option<FaultSpec>,
}

impl RunOptions {
    /// Defaults: serial (one worker), no metrics, no trace, no faults,
    /// unbounded retention.
    pub fn new(budget: Ticks) -> Self {
        RunOptions {
            workers: 1,
            budget,
            metrics: false,
            trace: false,
            retention: None,
            faults: None,
        }
    }
}

/// One channel's completed simulation.
#[derive(Debug)]
pub struct ChannelOutcome {
    /// Channel index.
    pub channel: usize,
    /// Classes projected onto this channel.
    pub classes: usize,
    /// Messages routed to this channel.
    pub scheduled: usize,
    /// Whether the channel drained inside the budget.
    pub completed: bool,
    /// Fault events injected on this channel.
    pub fault_events: usize,
    /// Channel statistics.
    pub stats: ChannelStats,
    /// Per-channel metrics (present when [`RunOptions::metrics`]).
    pub metrics: Option<SimMetrics>,
    /// Headerless JSONL event lines (present when [`RunOptions::trace`]).
    pub trace: Option<Vec<u8>>,
}

/// A completed multichannel run, outcomes in channel order.
///
/// Everything except `wall` is a pure function of the inputs — bitwise
/// independent of [`RunOptions::workers`].
#[derive(Debug)]
pub struct MultichannelReport {
    /// One outcome per channel, channel order.
    pub channels: Vec<ChannelOutcome>,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall clock (non-deterministic; excluded from the
    /// determinism contract).
    pub wall: Duration,
}

impl MultichannelReport {
    /// Messages routed across all channels.
    pub fn scheduled(&self) -> usize {
        self.channels.iter().map(|c| c.scheduled).sum()
    }

    /// Messages delivered across all channels.
    pub fn delivered(&self) -> usize {
        self.channels.iter().map(|c| c.stats.deliveries.len()).sum()
    }

    /// Deadline misses across all channels.
    pub fn deadline_misses(&self) -> usize {
        self.channels
            .iter()
            .map(|c| c.stats.deadline_misses())
            .sum()
    }

    /// Whether every channel drained inside the budget.
    pub fn completed(&self) -> bool {
        self.channels.iter().all(|c| c.completed)
    }

    /// Observed-ξ violations summed over all channels (0 when metrics were
    /// off).
    pub fn xi_violations(&self) -> u64 {
        self.channels
            .iter()
            .filter_map(|c| c.metrics.as_ref())
            .map(|m| m.violations_total)
            .sum()
    }

    /// Writes the merged JSONL trace document.
    ///
    /// One channel: the plain schema-version-1 stream — byte-identical to
    /// the single-bus engine's export. Several channels: a
    /// [`ddcr_sim::multichannel_header`] followed by every channel's
    /// events in channel order, each line tagged with its channel index.
    /// Either way the bytes are a pure function of the resolved channel
    /// histories, hence independent of the worker count.
    ///
    /// Returns the number of event lines written.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_trace(&self, writer: &mut dyn Write) -> io::Result<u64> {
        let mut events = 0u64;
        if self.channels.len() == 1 {
            writer.write_all(ddcr_sim::schema_header().as_bytes())?;
            if let Some(buf) = &self.channels[0].trace {
                writer.write_all(buf)?;
                events += buf.iter().filter(|&&b| b == b'\n').count() as u64;
            }
        } else {
            writer.write_all(ddcr_sim::multichannel_header(self.channels.len()).as_bytes())?;
            for outcome in &self.channels {
                let Some(buf) = &outcome.trace else { continue };
                let tag = format!("{{\"channel\":{},", outcome.channel);
                for line in buf.split(|&b| b == b'\n') {
                    if line.is_empty() {
                        continue;
                    }
                    // Every event line starts with '{'; splice the channel
                    // tag in as the first field.
                    writer.write_all(tag.as_bytes())?;
                    writer.write_all(&line[1..])?;
                    writer.write_all(b"\n")?;
                    events += 1;
                }
            }
        }
        Ok(events)
    }
}

/// A `Write` implementation over a shared byte buffer, letting the
/// channel runner recover what a consumed [`JsonlSink`] wrote.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("trace buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn run_one_channel<F>(
    set: &MessageSet,
    assignment: &ChannelAssignment,
    channel: usize,
    messages: &[Message],
    options: &RunOptions,
    build: &F,
) -> Result<ChannelOutcome, DdcrError>
where
    F: Fn(usize, &MessageSet) -> Result<Engine, DdcrError>,
{
    let projected = assignment.project(set, channel)?;
    let mut engine = build(channel, &projected)?;
    if options.metrics {
        engine.enable_metrics();
    }
    if let Some(cap) = options.retention {
        engine.set_retention(Some(cap), Some(cap));
    }
    let trace_buf = if options.trace {
        let buf = Arc::new(Mutex::new(Vec::new()));
        engine.set_trace_sink(JsonlSink::headerless(Box::new(SharedBuf(Arc::clone(&buf)))));
        Some(buf)
    } else {
        None
    };
    let mut fault_events = 0usize;
    if let Some(spec) = &options.faults {
        let plan = FaultPlan::generate(
            ddcr_sim::rng::job_seed(spec.master_seed, channel as u64),
            set.sources(),
            spec.horizon_slots,
            &spec.rates,
        );
        fault_events = plan.len();
        engine.set_fault_plan(plan);
    }
    engine
        .add_arrivals(messages.iter().copied())
        .map_err(|e| DdcrError::InvalidConfig(format!("schedule rejected: {e}")))?;
    let completed = engine.run_to_completion(options.budget).is_ok();
    let metrics = engine.take_metrics();
    if let Some(sink) = engine.take_trace_sink() {
        sink.finish()
            .map_err(|e| DdcrError::InvalidConfig(format!("trace sink failed: {e}")))?;
    }
    let stats = engine.into_stats();
    let trace = trace_buf.map(|buf| {
        Arc::try_unwrap(buf)
            .expect("sink consumed, buffer unshared")
            .into_inner()
            .expect("trace buffer lock")
    });
    Ok(ChannelOutcome {
        channel,
        classes: projected.classes().len(),
        scheduled: messages.len(),
        completed,
        fault_events,
        stats,
        metrics,
        trace,
    })
}

/// Runs a schedule over parallel channels with a custom per-channel engine
/// builder (`build(channel, projected_set)`); the DDCR path is
/// [`run_channels`]. Channels share no physical state, so each one is an
/// independent deterministic simulation advanced by a crossbeam worker
/// pool: workers pull channel indices from a shared counter and results
/// are reassembled in channel order on a fan-in channel — the bench sweep
/// runner's pattern. The report is bitwise identical for any
/// `options.workers`.
///
/// # Errors
///
/// Propagates assembly failures from any channel (lowest channel index
/// first).
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn run_channels_with<F>(
    set: &MessageSet,
    schedule: Vec<Message>,
    assignment: &ChannelAssignment,
    options: &RunOptions,
    build: &F,
) -> Result<MultichannelReport, DdcrError>
where
    F: Fn(usize, &MessageSet) -> Result<Engine, DdcrError> + Sync,
{
    let started = Instant::now();
    let channels = assignment.channels();
    let per_channel = assignment.split_schedule(schedule);
    let workers = options.workers.max(1).min(channels);

    let mut slots: Vec<Option<Result<ChannelOutcome, DdcrError>>> =
        (0..channels).map(|_| None).collect();
    if workers == 1 {
        // Serial path: same per-channel runner, no pool — so serial vs
        // parallel wall-clock comparisons isolate pure scheduling.
        for (channel, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one_channel(
                set,
                assignment,
                channel,
                &per_channel[channel],
                options,
                build,
            ));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) =
            crossbeam::channel::unbounded::<(usize, Result<ChannelOutcome, DdcrError>)>();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let per_channel = &per_channel;
                scope.spawn(move |_| loop {
                    let channel = next.fetch_add(1, Ordering::Relaxed);
                    if channel >= channels {
                        break;
                    }
                    let outcome = run_one_channel(
                        set,
                        assignment,
                        channel,
                        &per_channel[channel],
                        options,
                        build,
                    );
                    if tx.send((channel, outcome)).is_err() {
                        break;
                    }
                });
            }
        })
        .unwrap_or_else(|_| panic!("a channel worker panicked"));
        drop(tx);
        for (channel, outcome) in rx.iter() {
            slots[channel] = Some(outcome);
        }
    }

    let mut outcomes = Vec::with_capacity(channels);
    for (channel, slot) in slots.into_iter().enumerate() {
        outcomes.push(slot.unwrap_or_else(|| panic!("channel {channel} produced no outcome"))?);
    }
    Ok(MultichannelReport {
        channels: outcomes,
        workers,
        wall: started.elapsed(),
    })
}

/// Runs a schedule over parallel DDCR channels: each message is routed to
/// its class's channel and every channel gets its own engine (plus, when
/// metrics are on, its own live observed-ξ windows from the analytic
/// bound tables). See [`run_channels_with`] for the execution and
/// determinism contract.
///
/// # Errors
///
/// Propagates assembly failures from any channel.
pub fn run_channels(
    set: &MessageSet,
    schedule: Vec<Message>,
    assignment: &ChannelAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
    options: &RunOptions,
) -> Result<MultichannelReport, DdcrError> {
    run_channels_with(set, schedule, assignment, options, &|_, projected| {
        let mut engine = network::build_engine(projected, config, allocation, medium)?;
        if options.metrics {
            let (time, static_) = network::xi_bound_tables(config)?;
            engine.set_xi_bounds(time, static_);
        }
        Ok(engine)
    })
}

/// Runs a schedule over parallel channels and returns per-channel
/// statistics — the single-purpose wrapper kept for capacity experiments.
///
/// # Errors
///
/// Returns [`DdcrError::Infeasible`] if any channel fails to drain inside
/// the budget; propagates assembly failures.
pub fn run(
    set: &MessageSet,
    schedule: Vec<Message>,
    assignment: &ChannelAssignment,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
    budget: Ticks,
) -> Result<Vec<ChannelStats>, DdcrError> {
    let report = run_channels(
        set,
        schedule,
        assignment,
        config,
        allocation,
        medium,
        &RunOptions::new(budget),
    )?;
    if !report.completed() {
        return Err(DdcrError::Infeasible(
            "a channel did not drain inside the budget".into(),
        ));
    }
    Ok(report.channels.into_iter().map(|c| c.stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::SourceId;
    use ddcr_traffic::{scenario, DensityBound, ScheduleBuilder};

    fn setup(z: u32) -> (MessageSet, DdcrConfig, StaticAllocation, MediumConfig) {
        let set = scenario::videoconference(z).unwrap();
        let medium = MediumConfig::gigabit_ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        (set, config, allocation, medium)
    }

    #[test]
    fn balance_assigns_every_class() {
        let (set, ..) = setup(6);
        let assignment = balance_by_load(&set, 3);
        assert_eq!(assignment.channels(), 3);
        for class in set.classes() {
            assert!(assignment.channel_of(class.id) < 3);
        }
        // Load roughly balanced: no channel more than twice the lightest.
        let loads: Vec<f64> = (0..3)
            .map(|c| assignment.project(&set, c).unwrap().offered_load())
            .collect();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= 2.0 * min + 1e-9, "{loads:?}");
    }

    #[test]
    fn balance_breaks_ties_deterministically() {
        // Four classes of identical load: LPT must place them in id order
        // onto the lowest-index equally loaded channel every time.
        let classes: Vec<MessageClass> = (0..4u32)
            .map(|i| MessageClass {
                id: ClassId(i),
                name: format!("c{i}"),
                source: SourceId(0),
                bits: 8_000,
                deadline: Ticks(1_000_000),
                density: DensityBound::new(1, Ticks(1_000_000)).unwrap(),
            })
            .collect();
        let set = MessageSet::new(1, classes).unwrap();
        let assignment = balance_by_load(&set, 2);
        let expected: BTreeMap<ClassId, usize> = [
            (ClassId(0), 0),
            (ClassId(1), 1),
            (ClassId(2), 0),
            (ClassId(3), 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            assignment,
            ChannelAssignment::new(&set, 2, expected).unwrap()
        );
        // Stable across repeated invocations.
        assert_eq!(assignment, balance_by_load(&set, 2));
    }

    #[test]
    fn projections_partition_the_set() {
        let (set, ..) = setup(4);
        let assignment = balance_by_load(&set, 2);
        let total: usize = (0..2)
            .map(|c| assignment.project(&set, c).unwrap().classes().len())
            .sum();
        assert_eq!(total, set.classes().len());
    }

    #[test]
    fn more_channels_increase_provable_capacity() {
        // A participant count infeasible on one channel becomes provable
        // on two: the §3.1 "media in parallel" payoff.
        let (set, config, allocation, medium) = setup(20);
        let one = balance_by_load(&set, 1);
        let two = balance_by_load(&set, 2);
        let single = evaluate(&set, &one, &config, &allocation, &medium).unwrap();
        let double = evaluate(&set, &two, &config, &allocation, &medium).unwrap();
        assert!(!single.iter().all(FeasibilityReport::feasible));
        assert!(double.iter().all(FeasibilityReport::feasible));
    }

    #[test]
    fn channel_budgets_follow_feasibility() {
        let (set, config, allocation, medium) = setup(8);
        let assignment = balance_by_load(&set, 2);
        let budgets = channel_budgets(&set, &assignment, &config, &allocation, &medium).unwrap();
        let reports = evaluate(&set, &assignment, &config, &allocation, &medium).unwrap();
        assert_eq!(budgets.len(), 2);
        for (budget, report) in budgets.iter().zip(&reports) {
            assert_eq!(budget.feasible, report.feasible());
            assert!(budget.classes > 0);
            assert!(budget.p2_slots > 0.0, "{budget:?}");
            assert!(budget.v >= 1);
            assert!(budget.u >= 1);
        }
        // The P2 budget is per channel: splitting shrinks each channel's
        // binding interference, so no channel's budget exceeds the
        // single-channel one.
        let whole = channel_budgets(
            &set,
            &balance_by_load(&set, 1),
            &config,
            &allocation,
            &medium,
        )
        .unwrap();
        for budget in &budgets {
            assert!(budget.p2_slots <= whole[0].p2_slots + 1e-9);
        }
    }

    #[test]
    fn multichannel_run_drains_and_meets_deadlines() {
        let (set, config, allocation, medium) = setup(8);
        let assignment = balance_by_load(&set, 2);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(8_000_000))
            .unwrap();
        let n = schedule.len();
        let stats = run(
            &set,
            schedule,
            &assignment,
            &config,
            &allocation,
            medium,
            Ticks(100_000_000_000),
        )
        .unwrap();
        let delivered: usize = stats.iter().map(|s| s.deliveries.len()).sum();
        let misses: usize = stats.iter().map(ChannelStats::deadline_misses).sum();
        assert_eq!(delivered, n);
        assert_eq!(misses, 0);
    }

    #[test]
    fn parallel_run_is_bitwise_identical_to_serial() {
        let (set, config, allocation, medium) = setup(8);
        let assignment = balance_by_load(&set, 3);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(6_000_000))
            .unwrap();
        let mut options = RunOptions::new(Ticks(100_000_000_000));
        options.metrics = true;
        options.trace = true;
        let serial = run_channels(
            &set,
            schedule.clone(),
            &assignment,
            &config,
            &allocation,
            medium,
            &options,
        )
        .unwrap();
        options.workers = 4;
        let parallel = run_channels(
            &set, schedule, &assignment, &config, &allocation, medium, &options,
        )
        .unwrap();
        assert_eq!(serial.channels.len(), parallel.channels.len());
        for (a, b) in serial.channels.iter().zip(&parallel.channels) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.trace, b.trace);
            // SimMetrics carries no PartialEq; Debug equality is bitwise
            // enough for the determinism contract.
            assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        }
        let mut doc_a = Vec::new();
        let mut doc_b = Vec::new();
        serial.write_trace(&mut doc_a).unwrap();
        parallel.write_trace(&mut doc_b).unwrap();
        assert_eq!(doc_a, doc_b);
    }

    #[test]
    fn single_channel_run_matches_single_bus_engine() {
        let (set, config, allocation, medium) = setup(6);
        let assignment = balance_by_load(&set, 1);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(6_000_000))
            .unwrap();
        let mut options = RunOptions::new(Ticks(100_000_000_000));
        options.metrics = true;
        options.trace = true;
        let report = run_channels(
            &set,
            schedule.clone(),
            &assignment,
            &config,
            &allocation,
            medium,
            &options,
        )
        .unwrap();

        // The plain single-bus engine with the same instrumentation.
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut engine = network::build_engine(&set, &config, &allocation, medium).unwrap();
        let (time, static_) = network::xi_bound_tables(&config).unwrap();
        engine.set_xi_bounds(time, static_);
        engine.set_trace_sink(JsonlSink::new(Box::new(SharedBuf(Arc::clone(&buf)))));
        engine.add_arrivals(schedule).unwrap();
        engine.run_to_completion(Ticks(100_000_000_000)).unwrap();
        let single_metrics = engine.take_metrics();
        engine.take_trace_sink().unwrap().finish().unwrap();
        let single_stats = engine.into_stats();

        assert_eq!(report.channels.len(), 1);
        assert_eq!(report.channels[0].stats, single_stats);
        assert_eq!(
            format!("{:?}", report.channels[0].metrics),
            format!("{single_metrics:?}")
        );
        let mut doc = Vec::new();
        report.write_trace(&mut doc).unwrap();
        assert_eq!(doc, *buf.lock().unwrap(), "C=1 trace must match the single-bus export");
    }

    #[test]
    fn merged_trace_tags_every_line_with_its_channel() {
        let (set, config, allocation, medium) = setup(4);
        let assignment = balance_by_load(&set, 2);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(4_000_000))
            .unwrap();
        let mut options = RunOptions::new(Ticks(100_000_000_000));
        options.trace = true;
        let report = run_channels(
            &set, schedule, &assignment, &config, &allocation, medium, &options,
        )
        .unwrap();
        let mut doc = Vec::new();
        let events = report.write_trace(&mut doc).unwrap();
        let text = String::from_utf8(doc).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"schema\":\"ddcr-trace\",\"version\":2,\"channels\":2}"
        );
        let mut tagged = 0u64;
        for line in lines {
            assert!(
                line.starts_with("{\"channel\":0,") || line.starts_with("{\"channel\":1,"),
                "untagged line: {line}"
            );
            tagged += 1;
        }
        assert_eq!(tagged, events);
        assert!(events > 0);
    }

    #[test]
    fn fault_plans_are_per_channel_and_replayable() {
        let (set, config, allocation, medium) = setup(6);
        let assignment = balance_by_load(&set, 2);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(8_000_000))
            .unwrap();
        let mut options = RunOptions::new(Ticks(400_000_000_000));
        options.faults = Some(FaultSpec {
            master_seed: 42,
            rates: FaultRates {
                corrupt: 0.002,
                erase: 0.002,
                crash: 0.0,
                down_slots: 64,
            },
            horizon_slots: 20_000,
        });
        let first = run_channels(
            &set,
            schedule.clone(),
            &assignment,
            &config,
            &allocation,
            medium,
            &options,
        )
        .unwrap();
        let second = run_channels(
            &set, schedule, &assignment, &config, &allocation, medium, &options,
        )
        .unwrap();
        assert!(first.channels.iter().any(|c| c.fault_events > 0));
        for (a, b) in first.channels.iter().zip(&second.channels) {
            assert_eq!(a.fault_events, b.fault_events);
            assert_eq!(a.stats, b.stats, "fault replay must be deterministic");
        }
        // Distinct channels draw distinct plan seeds.
        let seeds: Vec<u64> = (0..2)
            .map(|c| ddcr_sim::rng::job_seed(42, c as u64))
            .collect();
        assert_ne!(seeds[0], seeds[1]);
    }

    #[test]
    fn validation_rejects_bad_assignments() {
        let (set, ..) = setup(2);
        assert!(ChannelAssignment::new(&set, 0, BTreeMap::new()).is_err());
        assert!(ChannelAssignment::new(&set, 2, BTreeMap::new()).is_err());
        let mut map = BTreeMap::new();
        for class in set.classes() {
            map.insert(class.id, 5usize);
        }
        assert!(ChannelAssignment::new(&set, 2, map).is_err());
    }
}
