//! High-level assembly: build a simulated CSMA/DDCR network from a message
//! set and run workloads against it.

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::indices::StaticAllocation;
use crate::protocol::DdcrStation;
use ddcr_sim::{ChannelStats, Engine, MediumConfig, Message, SourceId, Ticks, XiBoundTable};
use ddcr_traffic::MessageSet;

/// How long to run a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Run until every scheduled message has been delivered, giving up at
    /// the budget.
    Completion(Ticks),
    /// Run for a fixed horizon regardless of backlog.
    Horizon(Ticks),
}

/// Picks a deadline-class width `c` for a message set: the smallest value
/// such that the scheduling horizon `c·F` covers the largest relative
/// deadline (so no freshly arrived message ever sits a time tree search
/// out), but never below one slot time.
pub fn recommended_class_width(
    set: &MessageSet,
    time_leaves: u64,
    medium: &MediumConfig,
) -> Ticks {
    let max_d = set
        .classes()
        .iter()
        .map(|c| c.deadline.as_u64())
        .max()
        .unwrap_or(medium.slot_ticks);
    Ticks(max_d.div_ceil(time_leaves).max(medium.slot_ticks))
}

/// Builds the analytic ξ allowances for a configuration's time and static
/// trees, for the simulator's live per-epoch overhead checks
/// (`Engine::set_xi_bounds`). Tables come from the process-wide memoized
/// `ξ_k^t` cache, so repeated sweep jobs share one `O(t²)` computation.
///
/// # Errors
///
/// Returns [`DdcrError::Tree`] if a table cannot be computed for either
/// tree shape.
pub fn xi_bound_tables(config: &DdcrConfig) -> Result<(XiBoundTable, XiBoundTable), DdcrError> {
    let cache = ddcr_tree::cache::global();
    let time = cache.worst_case(config.time_tree).map_err(DdcrError::Tree)?;
    let static_ = cache
        .worst_case(config.static_tree)
        .map_err(DdcrError::Tree)?;
    Ok((
        XiBoundTable::from_envelope(config.time_tree.branching(), &time.xi_envelope()),
        XiBoundTable::from_envelope(config.static_tree.branching(), &static_.xi_envelope()),
    ))
}

/// Builds an engine with one [`DdcrStation`] per source of the set.
///
/// # Errors
///
/// Returns [`DdcrError`] on configuration/allocation mismatch and wraps
/// simulator construction failures.
pub fn build_engine(
    set: &MessageSet,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
) -> Result<Engine, DdcrError> {
    config.validate(set.sources())?;
    let mut engine = Engine::new(medium)
        .map_err(|e| DdcrError::InvalidConfig(format!("simulator rejected medium: {e}")))?;
    for i in 0..set.sources() {
        engine.add_station(Box::new(DdcrStation::new(
            SourceId(i),
            *config,
            allocation.clone(),
            medium.overhead_bits,
        )?));
    }
    Ok(engine)
}

/// Runs a schedule through a freshly built CSMA/DDCR network and returns
/// the channel statistics.
///
/// # Errors
///
/// Returns [`DdcrError`] on assembly failure, on unknown sources in the
/// schedule, or when a completion run exhausts its budget with messages
/// still queued.
///
/// # Examples
///
/// ```
/// use ddcr_core::{network, DdcrConfig, StaticAllocation};
/// use ddcr_sim::{MediumConfig, Ticks};
/// use ddcr_traffic::{scenario, ScheduleBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = scenario::uniform(4, 8_000, Ticks(2_000_000), 0.2)?;
/// let medium = MediumConfig::ethernet();
/// let c = network::recommended_class_width(&set, 64, &medium);
/// let config = DdcrConfig::for_sources(4, c)?;
/// let allocation = StaticAllocation::one_per_source(config.static_tree, 4)?;
/// let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(4_000_000))?;
/// let stats = network::run(
///     &set, schedule, &config, &allocation, medium,
///     network::RunLimit::Completion(Ticks(100_000_000)),
/// )?;
/// assert_eq!(stats.deadline_misses(), 0);
/// # Ok(())
/// # }
/// ```
pub fn run(
    set: &MessageSet,
    schedule: Vec<Message>,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
    limit: RunLimit,
) -> Result<ChannelStats, DdcrError> {
    let mut engine = build_engine(set, config, allocation, medium)?;
    engine
        .add_arrivals(schedule)
        .map_err(|e| DdcrError::InvalidConfig(format!("schedule rejected: {e}")))?;
    match limit {
        RunLimit::Completion(max) => engine
            .run_to_completion(max)
            .map_err(|e| DdcrError::Infeasible(format!("run did not complete: {e}")))?,
        RunLimit::Horizon(t) => engine.run_until(t),
    }
    Ok(engine.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_traffic::{scenario, ScheduleBuilder};

    #[test]
    fn recommended_width_covers_max_deadline() {
        let set = scenario::videoconference(4).unwrap();
        let medium = MediumConfig::ethernet();
        let c = recommended_class_width(&set, 64, &medium);
        let max_d = set
            .classes()
            .iter()
            .map(|cl| cl.deadline.as_u64())
            .max()
            .unwrap();
        assert!(c.as_u64() * 64 >= max_d);
        assert!(c.as_u64() >= medium.slot_ticks);
    }

    #[test]
    fn peak_load_videoconference_completes() {
        let set = scenario::videoconference(4).unwrap();
        let medium = MediumConfig::ethernet();
        let c = recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(4, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, 4).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(2_000_000))
            .unwrap();
        let n = schedule.len();
        let stats = run(
            &set,
            schedule,
            &config,
            &allocation,
            medium,
            RunLimit::Completion(Ticks(1_000_000_000)),
        )
        .unwrap();
        assert_eq!(stats.deliveries.len(), n);
    }

    #[test]
    fn horizon_run_stops_at_horizon() {
        let set = scenario::uniform(2, 8_000, Ticks(1_000_000), 0.1).unwrap();
        let config = DdcrConfig::for_sources(2, Ticks(31_250)).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, 2).unwrap();
        let schedule = ScheduleBuilder::periodic(&set).build(Ticks(10_000_000)).unwrap();
        let stats = run(
            &set,
            schedule,
            &config,
            &allocation,
            MediumConfig::ethernet(),
            RunLimit::Horizon(Ticks(1_000_000)),
        )
        .unwrap();
        assert!(stats.total_ticks >= Ticks(1_000_000));
    }

    #[test]
    fn metrics_attribute_slots_and_respect_xi_bounds() {
        let set = scenario::uniform(4, 8_000, Ticks(2_000_000), 0.2).unwrap();
        let medium = MediumConfig::ethernet();
        let c = recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(4, c).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, 4).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(4_000_000))
            .unwrap();
        let mut engine = build_engine(&set, &config, &allocation, medium).unwrap();
        let (time, static_) = xi_bound_tables(&config).unwrap();
        engine.set_xi_bounds(time, static_);
        engine.add_arrivals(schedule).unwrap();
        engine.run_to_completion(Ticks(100_000_000)).unwrap();
        let delivered = engine.stats().delivered;
        let metrics = engine.take_metrics().unwrap();
        assert_eq!(
            metrics.violations_total,
            0,
            "observed ξ breached the analytic bound: {:?}",
            metrics.violations()
        );
        // DDCR stations attribute every non-skipped slot.
        assert_eq!(metrics.phase_slots.unattributed, 0);
        assert!(metrics.phase_slots.tts > 0, "no TTs slots attributed");
        assert!(metrics.epochs_checked > 0, "no epoch was ever checked");
        // Per-station counters are consistent with the channel totals.
        let tx: u64 = metrics.stations().iter().map(|s| s.transmitted).sum();
        assert_eq!(tx, delivered);
        assert!(metrics.stations().iter().any(|s| s.queue_high_water > 0));
    }

    #[test]
    fn undersized_budget_reports_infeasible() {
        let set = scenario::uniform(2, 8_000, Ticks(1_000_000), 0.5).unwrap();
        let config = DdcrConfig::for_sources(2, Ticks(31_250)).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, 2).unwrap();
        let schedule = ScheduleBuilder::peak_load(&set).build(Ticks(10_000_000)).unwrap();
        let err = run(
            &set,
            schedule,
            &config,
            &allocation,
            MediumConfig::ethernet(),
            RunLimit::Completion(Ticks(100_000)),
        )
        .unwrap_err();
        assert!(matches!(err, DdcrError::Infeasible(_)));
    }
}
