//! Feasibility conditions for HRTDM under CSMA/DDCR (§4.3).
//!
//! For every message class `M` of source `s_i` the paper derives, assuming
//! peak-load conditions (every class arriving at its full density `a/w`):
//!
//! ```text
//! r(M) = Σ_{m ∈ MSG_i} ⌈d(M)/w(m)⌉·a(m) − 1          (local rank bound)
//! u(M) = Σ_{m ∈ MSG}  ⌈(d(M)+d(m)−l'(M)/ψ)/w(m)⌉·a(m) (global interference)
//! v(M) = 1 + ⌊r(M)/ν_i⌋                               (static trees needed)
//!
//! B_DDCR(s_i, M) = Σ_{m ∈ MSG} ⌈…⌉·a(m)·l'(m)/ψ       (transmission time)
//!                + x·( v·ξ̃^q_{u/v}                    (S1: static searches)
//!                    + ⌈v/2⌉·ξ^F_2 )                   (S2: time tree slots)
//! ```
//!
//! and the instance is feasible iff `B_DDCR(s_i, M) ≤ d(M)` for every class.
//! The `S1` term applies the solution to problem P2 (Eq. 18–19); `S2` uses
//! Eq. (5) with the worst-case assignment of two active leaves per time
//! tree. Throughput is normalised to `ψ = 1 bit/tick`.

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::indices::StaticAllocation;
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{MessageClass, MessageSet};
use ddcr_tree::{closed_form, multi::MultiTreeProblem};
use serde::{Deserialize, Serialize};

/// Feasibility verdict and worst-case latency bound for one message class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFeasibility {
    /// The class `M`.
    pub class: ClassId,
    /// Its source `s_i`.
    pub source: SourceId,
    /// Rank bound `r(M)`.
    pub r: u64,
    /// Interference bound `u(M)`.
    pub u: u64,
    /// Static tree searches needed, `v(M)`.
    pub v: u64,
    /// Total transmission time of the `u(M)` interfering messages, ticks.
    pub transmission_ticks: u64,
    /// Worst-case search slots for the static-tree term `S1` (problem P2).
    pub s1_slots: f64,
    /// Worst-case search slots for the time-tree term `S2` (Eq. 5 based).
    pub s2_slots: f64,
    /// Worst-case search slots `S = S1 + S2`.
    pub search_slots: f64,
    /// The latency bound `B_DDCR(s_i, M)` in ticks.
    pub bound: f64,
    /// The class deadline `d(M)`.
    pub deadline: Ticks,
    /// Whether `B ≤ d(M)`.
    pub feasible: bool,
}

impl ClassFeasibility {
    /// Slack `d(M) − B` in ticks (negative when infeasible).
    pub fn slack(&self) -> f64 {
        self.deadline.as_u64() as f64 - self.bound
    }

    /// Fraction of the bound due to raw transmission time (as opposed to
    /// search overhead `x·S`) — the decomposition a designer tunes against:
    /// transmission-dominated bounds call for more bandwidth or shorter
    /// messages, search-dominated bounds for more static indices or a
    /// different branching degree.
    pub fn transmission_fraction(&self) -> f64 {
        if self.bound == 0.0 {
            0.0
        } else {
            self.transmission_ticks as f64 / self.bound
        }
    }

    /// Which `B_DDCR` term dominates the bound — the citation an admission
    /// rejection carries (§4.3 decomposition): the raw transmission time of
    /// the `u(M)` interferers, the `S1` static-search slots (problem P2), or
    /// the `S2` time-tree slots (Eq. 5).
    ///
    /// The per-term tick weights are recovered from the identity
    /// `bound = transmission + x·(S1 + S2)` without needing `x` itself.
    pub fn dominant_term(&self) -> &'static str {
        let search_ticks = (self.bound - self.transmission_ticks as f64).max(0.0);
        let (s1_ticks, s2_ticks) = if self.search_slots > 0.0 {
            (
                search_ticks * self.s1_slots / self.search_slots,
                search_ticks * self.s2_slots / self.search_slots,
            )
        } else {
            (0.0, 0.0)
        };
        if self.transmission_ticks as f64 >= s1_ticks.max(s2_ticks) {
            "transmission term sum(ceil(..)*a*l'/psi)"
        } else if s1_ticks >= s2_ticks {
            "S1 static-search term x*v*xi~^q_(u/v)"
        } else {
            "S2 time-tree term x*ceil(v/2)*xi^F_2"
        }
    }
}

/// Feasibility report for a whole HRTDM instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Per-class verdicts, in message-set order.
    pub per_class: Vec<ClassFeasibility>,
}

impl FeasibilityReport {
    /// The instance is feasible iff every class is.
    pub fn feasible(&self) -> bool {
        self.per_class.iter().all(|c| c.feasible)
    }

    /// The class with the smallest slack (the binding constraint), if any.
    ///
    /// Uses [`f64::total_cmp`]: even a degenerate report carrying a
    /// non-finite bound (which [`evaluate`] itself refuses to produce)
    /// yields a deterministic answer instead of a panic — NaN slack orders
    /// above every finite slack, so it is never selected as binding while
    /// any finite class exists.
    pub fn tightest(&self) -> Option<&ClassFeasibility> {
        self.per_class
            .iter()
            .min_by(|a, b| a.slack().total_cmp(&b.slack()))
    }
}

/// Exact `⌈num/den⌉` for possibly-negative numerators, clamped at zero
/// (a non-positive window contributes no arrivals).
///
/// # Errors
///
/// Returns [`DdcrError::InvalidConfig`] for a zero divisor (a degenerate
/// density window) rather than aborting on the integer division.
fn ceil_div_clamped(num: i128, den: u64) -> Result<u64, DdcrError> {
    if den == 0 {
        return Err(DdcrError::InvalidConfig(
            "class density window w must be positive".into(),
        ));
    }
    if num <= 0 {
        Ok(0)
    } else {
        let den = den as i128;
        Ok(((num + den - 1) / den) as u64)
    }
}

/// Evaluates the feasibility conditions of §4.3 for every class of the set.
///
/// # Errors
///
/// Returns [`DdcrError::InvalidConfig`] on configuration/allocation
/// mismatch (e.g. fewer static leaves than sources) and
/// [`DdcrError::Infeasible`] when a bound cannot be evaluated.
///
/// # Examples
///
/// ```
/// use ddcr_core::{feasibility, DdcrConfig, StaticAllocation};
/// use ddcr_sim::{MediumConfig, Ticks};
/// use ddcr_traffic::scenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = scenario::air_traffic_control(4)?;
/// let config = DdcrConfig::for_sources(4, Ticks(12_500))?;
/// let allocation = StaticAllocation::one_per_source(config.static_tree, 4)?;
/// let report = feasibility::evaluate(
///     &set, &config, &allocation, &MediumConfig::gigabit_ethernet())?;
/// assert_eq!(report.per_class.len(), set.classes().len());
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    set: &MessageSet,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: &MediumConfig,
) -> Result<FeasibilityReport, DdcrError> {
    config.validate(set.sources())?;
    if allocation.sources() < set.sources() {
        return Err(DdcrError::InvalidConfig(format!(
            "allocation covers {} sources, message set has {}",
            allocation.sources(),
            set.sources()
        )));
    }
    let mut per_class = Vec::with_capacity(set.classes().len());
    for target in set.classes() {
        per_class.push(evaluate_class(set, config, allocation, medium, target)?);
    }
    Ok(FeasibilityReport { per_class })
}

fn evaluate_class(
    set: &MessageSet,
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: &MediumConfig,
    target: &MessageClass,
) -> Result<ClassFeasibility, DdcrError> {
    let d_m = target.deadline.as_u64() as i128;
    let lp_m = medium.wire_bits(target.bits) as i128; // l'(M)/ψ at ψ = 1

    // r(M): messages of MSG_i that can be serviced before M.
    let mut r: u64 = 0;
    for m in set.classes_of(target.source) {
        r += ceil_div_clamped(d_m, m.density.w.as_u64())? * m.density.a;
    }
    let r = r.saturating_sub(1);

    // u(M) and the transmission-time term share the same per-class counts.
    let mut u: u64 = 0;
    let mut transmission_ticks: u64 = 0;
    for m in set.classes() {
        let window = d_m + m.deadline.as_u64() as i128 - lp_m;
        let count = ceil_div_clamped(window, m.density.w.as_u64())? * m.density.a;
        u += count;
        transmission_ticks += count * medium.wire_bits(m.bits);
    }

    let nu = allocation.nu(target.source);
    if nu == 0 {
        // Reachable online: a leaving station's leaves are reclaimed, so a
        // partial allocation can carry sources with ν_i = 0. Admission must
        // refuse such flows with a typed error, not divide by zero below.
        return Err(DdcrError::InvalidConfig(format!(
            "source {} owns no static indices (detached or reclaimed)",
            target.source.0
        )));
    }
    let mut v = 1 + r / nu;
    let q = config.static_tree.leaves();
    // The P2 bound needs u/v ≤ q; if the interference exceeds what v static
    // trees can carry, more searches will actually run — raising v keeps
    // the bound on the safe (conservative) side.
    if u > q * v {
        v = u.div_ceil(q);
    }

    // S1: isolating u messages over v consecutive q-leaf static trees
    // (problem P2, Eq. 18–19), via the memoized multi-tree bound. ξ̃ needs
    // k ∈ [2, q]: u ≤ q·v holds after the v-raise above, and fewer than 2
    // per tree is dominated by the k = 2 cost, so lifting u to 2v yields
    // the same v·ξ̃_{clamp(u/v, 2, q)}^q value as the direct closed form.
    let s1 = if u == 0 {
        0.0
    } else {
        let problem = MultiTreeProblem::new(config.static_tree, u.max(2 * v), v)
            .map_err(DdcrError::Tree)?;
        problem.bound_cached()
    };

    // S2: isolating v time-tree leaves over ⌈v/2⌉ consecutive time trees,
    // two active leaves per tree being the worst case (ξ^F_2, Eq. 5).
    let s2 = v.div_ceil(2) as f64 * closed_form::xi_two(config.time_tree) as f64;

    let search_slots = s1 + s2;
    let bound = transmission_ticks as f64 + medium.slot_ticks as f64 * search_slots;
    if !bound.is_finite() {
        // A degenerate instance (e.g. an astronomically dense class pushing
        // the P2 bound past f64 range) must surface as a typed error: a
        // non-finite bound would otherwise propagate NaN slack into every
        // downstream comparison.
        return Err(DdcrError::InvalidConfig(format!(
            "B_DDCR for class {} is not finite (transmission {transmission_ticks} ticks, \
             search {search_slots} slots)",
            target.id.0
        )));
    }
    Ok(ClassFeasibility {
        class: target.id,
        source: target.source,
        r,
        u,
        v,
        transmission_ticks,
        s1_slots: s1,
        s2_slots: s2,
        search_slots,
        bound,
        deadline: target.deadline,
        feasible: bound <= target.deadline.as_u64() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_traffic::{scenario, DensityBound};

    fn setup(z: u32, load: f64, deadline: u64) -> (MessageSet, DdcrConfig, StaticAllocation) {
        let set = scenario::uniform(z, 8_000, Ticks(deadline), load).unwrap();
        let config = DdcrConfig::for_sources(z, Ticks(deadline / 64)).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, z).unwrap();
        (set, config, allocation)
    }

    #[test]
    fn light_load_long_deadline_is_feasible() {
        let (set, config, allocation) = setup(4, 0.05, 10_000_000);
        let report =
            evaluate(&set, &config, &allocation, &MediumConfig::ethernet()).unwrap();
        assert!(report.feasible(), "{:#?}", report.tightest());
    }

    #[test]
    fn saturating_load_tight_deadline_is_infeasible() {
        let (set, config, allocation) = setup(8, 0.95, 200_000);
        let report =
            evaluate(&set, &config, &allocation, &MediumConfig::ethernet()).unwrap();
        assert!(!report.feasible());
        assert!(report.tightest().unwrap().slack() < 0.0);
    }

    #[test]
    fn bound_grows_with_load() {
        let medium = MediumConfig::ethernet();
        let mut prev = 0.0;
        for load in [0.1, 0.3, 0.5, 0.7] {
            let (set, config, allocation) = setup(4, load, 5_000_000);
            let report = evaluate(&set, &config, &allocation, &medium).unwrap();
            let bound = report.per_class[0].bound;
            assert!(bound > prev, "bound not monotone at load {load}");
            prev = bound;
        }
    }

    #[test]
    fn r_and_u_match_hand_computation() {
        // One source, one class: a = 2, w = 1000, d = 3000, l = 100,
        // overhead 0, slot 10.
        let set = MessageSet::new(
            1,
            vec![ddcr_traffic::MessageClass {
                id: ClassId(0),
                name: "only".into(),
                source: SourceId(0),
                bits: 100,
                deadline: Ticks(3000),
                density: DensityBound::new(2, Ticks(1000)).unwrap(),
            }],
        )
        .unwrap();
        let config = DdcrConfig::for_sources(1, Ticks(100)).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, 1).unwrap();
        let medium = MediumConfig {
            slot_ticks: 10,
            overhead_bits: 0,
            collision_mode: ddcr_sim::CollisionMode::Destructive,
        };
        let report = evaluate(&set, &config, &allocation, &medium).unwrap();
        let c = &report.per_class[0];
        // r = ⌈3000/1000⌉·2 − 1 = 5
        assert_eq!(c.r, 5);
        // u = ⌈(3000 + 3000 − 100)/1000⌉·2 = 12
        assert_eq!(c.u, 12);
        // ν = 1 ⇒ v = 1 + ⌊5/1⌋ = 6
        assert_eq!(c.v, 6);
        assert_eq!(c.transmission_ticks, 1200);
    }

    #[test]
    fn more_static_indices_reduce_v_and_bound() {
        let set = scenario::uniform(4, 8_000, Ticks(2_000_000), 0.5).unwrap();
        let config = DdcrConfig::for_sources(4, Ticks(31_250)).unwrap();
        let medium = MediumConfig::ethernet();
        let one = StaticAllocation::one_per_source(config.static_tree, 4).unwrap();
        let rr = StaticAllocation::round_robin(config.static_tree, 4).unwrap();
        let report_one = evaluate(&set, &config, &one, &medium).unwrap();
        let report_rr = evaluate(&set, &config, &rr, &medium).unwrap();
        assert!(report_rr.per_class[0].v <= report_one.per_class[0].v);
        assert!(report_rr.per_class[0].bound <= report_one.per_class[0].bound);
    }

    #[test]
    fn tightest_picks_minimum_slack() {
        let set = scenario::air_traffic_control(4).unwrap();
        let config = DdcrConfig::for_sources(4, Ticks(6_250)).unwrap();
        let allocation = StaticAllocation::one_per_source(config.static_tree, 4).unwrap();
        let report =
            evaluate(&set, &config, &allocation, &MediumConfig::gigabit_ethernet()).unwrap();
        let tightest = report.tightest().unwrap();
        for c in &report.per_class {
            assert!(tightest.slack() <= c.slack());
        }
    }

    #[test]
    fn mismatched_allocation_rejected() {
        let (set, config, _) = setup(4, 0.1, 1_000_000);
        let small = StaticAllocation::one_per_source(config.static_tree, 2).unwrap();
        assert!(evaluate(&set, &config, &small, &MediumConfig::ethernet()).is_err());
    }

    #[test]
    fn ceil_div_clamped_handles_negatives() {
        assert_eq!(ceil_div_clamped(-5, 10).unwrap(), 0);
        assert_eq!(ceil_div_clamped(0, 10).unwrap(), 0);
        assert_eq!(ceil_div_clamped(1, 10).unwrap(), 1);
        assert_eq!(ceil_div_clamped(10, 10).unwrap(), 1);
        assert_eq!(ceil_div_clamped(11, 10).unwrap(), 2);
    }

    #[test]
    fn ceil_div_clamped_rejects_zero_divisor() {
        // Regression: used to abort on integer division by zero; a
        // long-running admission service must get a typed error instead.
        assert!(matches!(
            ceil_div_clamped(5, 0),
            Err(DdcrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tightest_tolerates_nan_slack_without_panicking() {
        // Regression: `min_by(partial_cmp().expect("no NaN slack"))` used to
        // panic on a degenerate report. total_cmp keeps it deterministic and
        // never selects the NaN class while a finite one exists.
        let finite = ClassFeasibility {
            class: ClassId(0),
            source: SourceId(0),
            r: 0,
            u: 0,
            v: 1,
            transmission_ticks: 0,
            s1_slots: 0.0,
            s2_slots: 0.0,
            search_slots: 0.0,
            bound: 10.0,
            deadline: Ticks(100),
            feasible: true,
        };
        let degenerate = ClassFeasibility {
            class: ClassId(1),
            bound: f64::NAN,
            ..finite.clone()
        };
        let report = FeasibilityReport {
            per_class: vec![degenerate, finite.clone()],
        };
        assert_eq!(report.tightest().unwrap().class, finite.class);
    }

    #[test]
    fn reclaimed_source_gets_typed_error_not_division_by_zero() {
        let (set, config, mut allocation) = setup(4, 0.1, 1_000_000);
        allocation.reclaim(SourceId(0)).unwrap();
        let err = evaluate(&set, &config, &allocation, &MediumConfig::ethernet()).unwrap_err();
        assert!(matches!(err, DdcrError::InvalidConfig(_)), "{err}");
    }
}
