//! The local algorithm LA: a per-source EDF queue (§3.2).
//!
//! Messages wait in `Q_i` ordered by absolute deadline
//! `DM(msg) = T(msg) + d(msg)`; the head is `msg*`. Ties break by arrival
//! time and then message id, which keeps every replica of the protocol
//! state machine deterministic.
//!
//! The queue is a sorted deque rather than a heap: protocol code needs
//! cheap access to the first *and second* elements (packet bursting decides
//! whether a follow-up frame exists before releasing the channel), queues
//! are short in practice, and a totally ordered backing store makes the
//! replica state trivially comparable in tests. A `VecDeque` keeps the
//! hot-path `pop` O(1) where a `Vec::remove(0)` would shift every element.

use ddcr_sim::{Message, MessageId, Ticks};
use std::collections::VecDeque;

/// Ordering key: earliest deadline first, then FIFO, then id.
type Key = (Ticks, Ticks, MessageId);

fn key(m: &Message) -> Key {
    (m.absolute_deadline(), m.arrival, m.id)
}

/// A per-source EDF waiting queue (`Q_i` under LA).
///
/// # Examples
///
/// ```
/// use ddcr_core::EdfQueue;
/// use ddcr_sim::{ClassId, Message, MessageId, SourceId, Ticks};
///
/// let mut q = EdfQueue::new();
/// let mk = |id, deadline| Message {
///     id: MessageId(id), source: SourceId(0), class: ClassId(0),
///     bits: 100, arrival: Ticks(0), deadline: Ticks(deadline),
/// };
/// q.push(mk(0, 900));
/// q.push(mk(1, 100)); // tighter deadline jumps ahead
/// assert_eq!(q.head().unwrap().id, MessageId(1));
/// assert_eq!(q.second().unwrap().id, MessageId(0));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EdfQueue {
    /// Sorted ascending by [`key`].
    items: VecDeque<Message>,
}

impl EdfQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EdfQueue {
            items: VecDeque::new(),
        }
    }

    /// Inserts a message; the EDF order is maintained automatically.
    ///
    /// Stable upper-bound binary insert: existing elements compare `Less`
    /// on key equality, so the search always lands *after* every equal key
    /// and pushes with identical `(DM, arrival, id)` keep FIFO order.
    pub fn push(&mut self, message: Message) {
        let k = key(&message);
        let pos = self
            .items
            .binary_search_by(|m| match key(m).cmp(&k) {
                std::cmp::Ordering::Equal => std::cmp::Ordering::Less,
                other => other,
            })
            .unwrap_err();
        self.items.insert(pos, message);
    }

    /// The current `msg*` — the earliest-deadline message — or `None` when
    /// the queue is empty.
    pub fn head(&self) -> Option<&Message> {
        self.items.front()
    }

    /// The message that would become `msg*` after the head transmits
    /// (used by packet bursting to decide channel retention).
    pub fn second(&self) -> Option<&Message> {
        self.items.get(1)
    }

    /// Removes and returns `msg*` in O(1).
    pub fn pop(&mut self) -> Option<Message> {
        self.items.pop_front()
    }

    /// Removes the head only if it is the given message (used when a
    /// station observes its own successful transmission).
    pub fn pop_if(&mut self, id: MessageId) -> Option<Message> {
        if self.head().map(|m| m.id) == Some(id) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the queued messages in EDF order.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.items.iter()
    }

    /// Drains the queue in EDF order (mainly for tests and teardown).
    pub fn drain_sorted(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.items).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, SourceId};

    fn msg(id: u64, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(0),
            class: ClassId(0),
            bits: 100,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn orders_by_absolute_deadline() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 500)); // DM 500
        q.push(msg(1, 100, 200)); // DM 300
        q.push(msg(2, 0, 400)); // DM 400
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_fifo_then_id() {
        let mut q = EdfQueue::new();
        q.push(msg(5, 10, 90)); // DM 100, arrived 10
        q.push(msg(3, 0, 100)); // DM 100, arrived 0 — first
        q.push(msg(4, 10, 90)); // DM 100, arrived 10, lower id than 5
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![3, 4, 5]);
    }

    #[test]
    fn fully_equal_keys_keep_fifo_push_order() {
        // The ordering key is (DM, arrival, id); `bits` is outside it, so
        // two messages can carry equal keys yet be distinguishable. The
        // stable upper-bound insert must keep them in push order.
        let mut q = EdfQueue::new();
        for bits in [100u64, 200, 300] {
            let mut m = msg(7, 10, 90);
            m.bits = bits;
            q.push(m);
        }
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.bits).collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn pop_if_only_matches_head() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 100));
        q.push(msg(1, 0, 200));
        assert!(q.pop_if(MessageId(1)).is_none());
        assert_eq!(q.pop_if(MessageId(0)).unwrap().id, MessageId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn head_and_second_are_non_destructive() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 100));
        q.push(msg(1, 0, 200));
        assert_eq!(q.head().unwrap().id, MessageId(0));
        assert_eq!(q.second().unwrap().id, MessageId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EdfQueue::new();
        assert!(q.head().is_none());
        assert!(q.second().is_none());
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn iter_exposes_edf_order() {
        let mut q = EdfQueue::new();
        q.push(msg(2, 0, 300));
        q.push(msg(1, 0, 100));
        let dms: Vec<u64> = q.iter().map(|m| m.absolute_deadline().as_u64()).collect();
        assert_eq!(dms, vec![100, 300]);
    }

    #[test]
    fn popping_interleaved_with_tied_pushes_keeps_fifo_order() {
        // Regression for the O(1) pop path: deque rotation must not
        // disturb the stable position of key-tied messages.
        let mut q = EdfQueue::new();
        let mut popped = Vec::new();
        for round in 0..4u64 {
            let mut a = msg(10 + round, 10, 90);
            a.bits = round * 2;
            let mut b = msg(10 + round, 10, 90);
            b.bits = round * 2 + 1;
            q.push(a);
            q.push(b);
            popped.push(q.pop().unwrap().bits);
        }
        popped.extend(q.drain_sorted().iter().map(|m| m.bits));
        assert_eq!(popped, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
