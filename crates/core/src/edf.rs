//! The local algorithm LA: a per-source EDF queue (§3.2).
//!
//! Messages wait in `Q_i` ordered by absolute deadline
//! `DM(msg) = T(msg) + d(msg)`; the head is `msg*`. Ties break by arrival
//! time, then message id, then push order, which keeps every replica of
//! the protocol state machine deterministic.
//!
//! The backing store is a hand-rolled binary min-heap: `push`/`pop` are
//! O(log n) instead of the O(n) memmove a sorted deque pays per insert,
//! which matters once station queues deepen under burst traffic (the
//! `edf_queue` benchmark in `BENCH_engine.json` tracks the throughput).
//! The protocol's two structural needs survive the switch:
//!
//! * **`head` and `second` stay O(1).** The heap root is `msg*`, and the
//!   second-smallest element of a binary heap is always one of the root's
//!   two children — packet bursting reads both before releasing the
//!   channel.
//! * **FIFO tie-breaks stay exact.** A heap alone is unstable, so every
//!   entry carries a monotone sequence number appended to the ordering
//!   key; pushes with identical `(DM, arrival, id)` keys pop in push
//!   order, exactly as the stable binary insert behaved. The counter
//!   resets whenever the queue drains, so it cannot creep toward
//!   overflow over a long run.
//!
//! Replica comparability (queues are `PartialEq` in tests) is preserved
//! by comparing *sorted* content rather than raw heap layout: two queues
//! are equal iff they would pop the same messages in the same order.

use ddcr_sim::{Message, MessageId, Ticks};

/// Ordering key: earliest deadline first, then FIFO, then id.
type Key = (Ticks, Ticks, MessageId);

fn key(m: &Message) -> Key {
    (m.absolute_deadline(), m.arrival, m.id)
}

/// A queued message plus its FIFO tie-break sequence number.
#[derive(Debug, Clone, Copy)]
struct Entry {
    message: Message,
    seq: u64,
}

impl Entry {
    /// The full heap ordering key; `seq` last so equal protocol keys pop
    /// in push order.
    fn order(&self) -> (Ticks, Ticks, MessageId, u64) {
        let (dm, arrival, id) = key(&self.message);
        (dm, arrival, id, self.seq)
    }
}

/// A per-source EDF waiting queue (`Q_i` under LA).
///
/// # Examples
///
/// ```
/// use ddcr_core::EdfQueue;
/// use ddcr_sim::{ClassId, Message, MessageId, SourceId, Ticks};
///
/// let mut q = EdfQueue::new();
/// let mk = |id, deadline| Message {
///     id: MessageId(id), source: SourceId(0), class: ClassId(0),
///     bits: 100, arrival: Ticks(0), deadline: Ticks(deadline),
/// };
/// q.push(mk(0, 900));
/// q.push(mk(1, 100)); // tighter deadline jumps ahead
/// assert_eq!(q.head().unwrap().id, MessageId(1));
/// assert_eq!(q.second().unwrap().id, MessageId(0));
/// ```
#[derive(Debug, Default, Clone)]
pub struct EdfQueue {
    /// Binary min-heap on [`Entry::order`].
    heap: Vec<Entry>,
    /// Next sequence number to stamp on a push; resets when the queue
    /// drains so it never grows without bound.
    seq: u64,
}

impl EdfQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EdfQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Inserts a message; the EDF order is maintained automatically in
    /// O(log n). Pushes with identical `(DM, arrival, id)` keys keep FIFO
    /// order via the per-entry sequence number.
    pub fn push(&mut self, message: Message) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { message, seq });
        self.sift_up(self.heap.len() - 1);
    }

    /// The current `msg*` — the earliest-deadline message — or `None` when
    /// the queue is empty.
    pub fn head(&self) -> Option<&Message> {
        self.heap.first().map(|e| &e.message)
    }

    /// The message that would become `msg*` after the head transmits
    /// (used by packet bursting to decide channel retention).
    ///
    /// O(1): in a binary min-heap the second-smallest element is always a
    /// child of the root.
    pub fn second(&self) -> Option<&Message> {
        match (self.heap.get(1), self.heap.get(2)) {
            (Some(a), Some(b)) => {
                if a.order() <= b.order() {
                    Some(&a.message)
                } else {
                    Some(&b.message)
                }
            }
            (Some(a), None) => Some(&a.message),
            _ => None,
        }
    }

    /// Removes and returns `msg*` in O(log n).
    pub fn pop(&mut self) -> Option<Message> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if self.heap.is_empty() {
            self.seq = 0;
        } else {
            self.sift_down(0);
        }
        Some(entry.message)
    }

    /// Removes the head only if it is the given message (used when a
    /// station observes its own successful transmission).
    pub fn pop_if(&mut self, id: MessageId) -> Option<Message> {
        if self.head().map(|m| m.id) == Some(id) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterates the queued messages in EDF order.
    ///
    /// O(n log n): sorts an index permutation over the heap. Callers walk
    /// short queue prefixes (packet bursting), so this stays cheap.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        let mut order: Vec<usize> = (0..self.heap.len()).collect();
        order.sort_unstable_by_key(|&i| self.heap[i].order());
        order.into_iter().map(move |i| &self.heap[i].message)
    }

    /// Drains the queue in EDF order (mainly for tests and teardown).
    pub fn drain_sorted(&mut self) -> Vec<Message> {
        let mut entries = std::mem::take(&mut self.heap);
        self.seq = 0;
        entries.sort_unstable_by_key(Entry::order);
        entries.into_iter().map(|e| e.message).collect()
    }

    /// Moves `heap[at]` toward the root until the heap property holds.
    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if self.heap[at].order() >= self.heap[parent].order() {
                break;
            }
            self.heap.swap(at, parent);
            at = parent;
        }
    }

    /// Moves `heap[at]` toward the leaves until the heap property holds.
    fn sift_down(&mut self, mut at: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * at + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < len && self.heap[right].order() < self.heap[left].order() {
                smallest = right;
            }
            if self.heap[at].order() <= self.heap[smallest].order() {
                break;
            }
            self.heap.swap(at, smallest);
            at = smallest;
        }
    }
}

impl PartialEq for EdfQueue {
    /// Two queues are equal iff they would pop the same messages in the
    /// same order — heap layout and absolute sequence values are
    /// representation detail.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for EdfQueue {}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, SourceId};

    fn msg(id: u64, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(0),
            class: ClassId(0),
            bits: 100,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn orders_by_absolute_deadline() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 500)); // DM 500
        q.push(msg(1, 100, 200)); // DM 300
        q.push(msg(2, 0, 400)); // DM 400
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_fifo_then_id() {
        let mut q = EdfQueue::new();
        q.push(msg(5, 10, 90)); // DM 100, arrived 10
        q.push(msg(3, 0, 100)); // DM 100, arrived 0 — first
        q.push(msg(4, 10, 90)); // DM 100, arrived 10, lower id than 5
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![3, 4, 5]);
    }

    #[test]
    fn fully_equal_keys_keep_fifo_push_order() {
        // The ordering key is (DM, arrival, id); `bits` is outside it, so
        // two messages can carry equal keys yet be distinguishable. The
        // sequence-number tie-break must keep them in push order.
        let mut q = EdfQueue::new();
        for bits in [100u64, 200, 300] {
            let mut m = msg(7, 10, 90);
            m.bits = bits;
            q.push(m);
        }
        let order: Vec<u64> = q.drain_sorted().iter().map(|m| m.bits).collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn pop_if_only_matches_head() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 100));
        q.push(msg(1, 0, 200));
        assert!(q.pop_if(MessageId(1)).is_none());
        assert_eq!(q.pop_if(MessageId(0)).unwrap().id, MessageId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn head_and_second_are_non_destructive() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 100));
        q.push(msg(1, 0, 200));
        assert_eq!(q.head().unwrap().id, MessageId(0));
        assert_eq!(q.second().unwrap().id, MessageId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EdfQueue::new();
        assert!(q.head().is_none());
        assert!(q.second().is_none());
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn iter_exposes_edf_order() {
        let mut q = EdfQueue::new();
        q.push(msg(2, 0, 300));
        q.push(msg(1, 0, 100));
        let dms: Vec<u64> = q.iter().map(|m| m.absolute_deadline().as_u64()).collect();
        assert_eq!(dms, vec![100, 300]);
    }

    #[test]
    fn popping_interleaved_with_tied_pushes_keeps_fifo_order() {
        // Regression for FIFO stability under interleaved pops: heap
        // rebalancing must not disturb the pop order of key-tied messages.
        let mut q = EdfQueue::new();
        let mut popped = Vec::new();
        for round in 0..4u64 {
            let mut a = msg(10 + round, 10, 90);
            a.bits = round * 2;
            let mut b = msg(10 + round, 10, 90);
            b.bits = round * 2 + 1;
            q.push(a);
            q.push(b);
            popped.push(q.pop().unwrap().bits);
        }
        popped.extend(q.drain_sorted().iter().map(|m| m.bits));
        assert_eq!(popped, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn second_is_exact_across_random_heap_shapes() {
        // `second` reads the root's children; pin it against a model that
        // fully sorts. Deterministic pseudo-random workload (LCG).
        let mut q = EdfQueue::new();
        let mut model: Vec<Message> = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for i in 0..200u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let deadline = 50 + (state >> 33) % 40;
            let m = msg(i, i, deadline);
            q.push(m);
            model.push(m);
            model.sort_by_key(|m| (key(m), m.id));
            if state.is_multiple_of(3) {
                let popped = q.pop();
                assert_eq!(popped.as_ref(), model.first());
                if !model.is_empty() {
                    model.remove(0);
                }
            }
            assert_eq!(q.head(), model.first());
            assert_eq!(q.second(), model.get(1));
        }
    }

    #[test]
    fn equality_ignores_heap_layout() {
        // Build the same logical content through different push orders:
        // the internal arrays differ but the queues compare equal.
        let mut a = EdfQueue::new();
        let mut b = EdfQueue::new();
        for id in 0..16u64 {
            a.push(msg(id, 0, 100 + id));
        }
        for id in (0..16u64).rev() {
            b.push(msg(id, 0, 100 + id));
        }
        assert_eq!(a, b);
        b.pop();
        assert_ne!(a, b);
    }

    #[test]
    fn seq_counter_resets_when_drained() {
        let mut q = EdfQueue::new();
        q.push(msg(0, 0, 100));
        q.pop();
        assert_eq!(q.seq, 0);
        q.push(msg(1, 0, 100));
        q.push(msg(2, 0, 100));
        q.drain_sorted();
        assert_eq!(q.seq, 0);
    }
}
