//! Error type for the CSMA/DDCR crate.

use std::error::Error;
use std::fmt;

/// Error returned by configuration, allocation and feasibility APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdcrError {
    /// A protocol parameter is inconsistent.
    InvalidConfig(String),
    /// An underlying tree-analysis error.
    Tree(ddcr_tree::TreeError),
    /// A static index allocation is malformed (overlap, out of range, or a
    /// source without indices).
    InvalidAllocation(String),
    /// The feasibility conditions cannot be evaluated for this instance.
    Infeasible(String),
}

impl fmt::Display for DdcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdcrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DdcrError::Tree(e) => write!(f, "tree analysis error: {e}"),
            DdcrError::InvalidAllocation(msg) => write!(f, "invalid allocation: {msg}"),
            DdcrError::Infeasible(msg) => write!(f, "feasibility evaluation failed: {msg}"),
        }
    }
}

impl Error for DdcrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DdcrError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ddcr_tree::TreeError> for DdcrError {
    fn from(e: ddcr_tree::TreeError) -> Self {
        DdcrError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = DdcrError::from(ddcr_tree::TreeError::BranchingTooSmall { m: 1 });
        assert!(e.to_string().contains("tree analysis"));
        assert!(e.source().is_some());
        let c = DdcrError::InvalidConfig("boom".into());
        assert!(c.to_string().contains("boom"));
        assert!(c.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DdcrError>();
    }
}
