//! Federated DDCR: N broadcast segments advancing in epoch-aligned rounds
//! with bridge handoffs at the boundaries.
//!
//! [`crate::multibus`] shards one site's medium into parallel channels;
//! this module chains *segments* — each a full DDCR network with every
//! station attached — behind store-and-forward bridges, the way the
//! paper's single-segment analysis composes into a campus fabric. The
//! execution semantics (shared virtual clock, deterministic bridge
//! queues, work-stealing worker pool, bitwise worker-count independence)
//! live in [`ddcr_sim::federation`]; this layer adds the DDCR assembly:
//! one [`DdcrStation`](crate::DdcrStation) per source on every segment,
//! classes partitioned over segments by load, live observed-ξ checks from
//! the analytic bound tables, and a deterministic derivation of transit
//! routes.

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::indices::StaticAllocation;
use crate::multibus::ChannelAssignment;
use crate::network;
use ddcr_sim::federation::{run_federation, BridgeRoute, FederationOptions, FederationReport};
use ddcr_sim::{MediumConfig, Message, SourceId};
use ddcr_traffic::MessageSet;

/// Derives deterministic two-hop transit routes: every class whose id is
/// divisible by `every` becomes inter-segment traffic, bridged from its
/// home segment to the next one (cyclically), entering through the bridge
/// station `class.id mod sources`. With fewer than two segments (or
/// `every == 0`) no class transits and the result is empty — which keeps
/// a one-segment federation bitwise identical to the single-bus engine.
///
/// The derivation reads only the message set and the assignment, so a
/// given `(set, segments, every)` always yields the same routes.
pub fn transit_routes(
    set: &MessageSet,
    assignment: &ChannelAssignment,
    every: u32,
) -> Vec<BridgeRoute> {
    let segments = assignment.channels();
    if segments < 2 || every == 0 {
        return Vec::new();
    }
    set.classes()
        .iter()
        .filter(|class| class.id.0 % every == 0)
        .map(|class| {
            let origin = assignment.channel_of(class.id);
            let next = (origin + 1) % segments;
            BridgeRoute {
                class: class.id,
                path: vec![origin, next],
                entry: vec![SourceId(class.id.0 % set.sources())],
            }
        })
        .collect()
}

/// Runs a schedule over a federation of DDCR segments.
///
/// Every segment gets a full engine — one station per source of `set`,
/// so bridge stations exist everywhere — while the *schedule* is split by
/// the class→segment `assignment` (origin messages only; handoffs travel
/// via `routes`). When [`FederationOptions::metrics`] is on, each segment
/// additionally runs the live observed-ξ checks against the analytic
/// bound tables of `config`. The report is bitwise independent of
/// [`FederationOptions::workers`], and a one-segment federation is
/// bitwise identical to the single-bus engine run of the same schedule.
///
/// # Errors
///
/// Propagates assembly failures ([`DdcrError::InvalidConfig`],
/// [`DdcrError::Tree`]) and wraps federation shape errors as
/// [`DdcrError::InvalidConfig`].
#[allow(clippy::too_many_arguments)] // mirrors multibus::run_channels plus routes
pub fn run_segments(
    set: &MessageSet,
    schedule: Vec<Message>,
    assignment: &ChannelAssignment,
    routes: &[BridgeRoute],
    config: &DdcrConfig,
    allocation: &StaticAllocation,
    medium: MediumConfig,
    options: &FederationOptions,
) -> Result<FederationReport, DdcrError> {
    let segments = assignment.channels();
    let schedules = assignment.split_schedule(schedule);
    let mut engines = Vec::with_capacity(segments);
    for _ in 0..segments {
        let mut engine = network::build_engine(set, config, allocation, medium)?;
        if options.metrics {
            let (time, static_) = network::xi_bound_tables(config)?;
            engine.set_xi_bounds(time, static_);
        }
        engines.push(engine);
    }
    run_federation(engines, schedules, routes, options)
        .map_err(|e| DdcrError::InvalidConfig(format!("federation rejected: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibus::balance_by_load;
    use ddcr_sim::Ticks;
    use ddcr_traffic::{scenario, ScheduleBuilder};

    fn fixture() -> (MessageSet, DdcrConfig, StaticAllocation, MediumConfig) {
        let set = scenario::videoconference(6).expect("scenario");
        let medium = MediumConfig::ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(set.sources(), c).expect("config");
        let allocation =
            StaticAllocation::round_robin(config.static_tree, set.sources()).expect("allocation");
        (set, config, allocation, medium)
    }

    #[test]
    fn transit_routes_are_deterministic_and_two_hop() {
        let (set, ..) = fixture();
        let assignment = balance_by_load(&set, 3);
        let routes = transit_routes(&set, &assignment, 2);
        assert!(!routes.is_empty());
        for route in &routes {
            assert_eq!(route.path.len(), 2);
            assert_eq!(route.entry.len(), 1);
            assert_eq!(route.path[0], assignment.channel_of(route.class));
            assert_ne!(route.path[0], route.path[1]);
            assert!((route.entry[0].0) < set.sources());
        }
        let single = balance_by_load(&set, 1);
        assert!(transit_routes(&set, &single, 2).is_empty());
        assert!(transit_routes(&set, &assignment, 0).is_empty());
    }

    #[test]
    fn segment_run_is_worker_invariant_and_bridges_traffic() {
        let (set, config, allocation, medium) = fixture();
        let assignment = balance_by_load(&set, 3);
        let routes = transit_routes(&set, &assignment, 2);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(3_000_000))
            .expect("schedule");
        let run = |workers: usize| {
            let mut options =
                FederationOptions::new(Ticks(1_000_000), Ticks(1_000_000_000_000));
            options.workers = workers;
            options.metrics = true;
            run_segments(
                &set,
                schedule.clone(),
                &assignment,
                &routes,
                &config,
                &allocation,
                medium,
                &options,
            )
            .expect("runs")
        };
        let serial = run(1);
        assert!(serial.completed());
        assert!(serial.handoffs > 0, "transit classes must cross a bridge");
        assert_eq!(serial.scheduled(), schedule.len());
        let parallel = run(4);
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.handoffs, parallel.handoffs);
        for (a, b) in serial.segments.iter().zip(&parallel.segments) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        }
    }

    #[test]
    fn single_segment_matches_single_bus_network_run() {
        let (set, config, allocation, medium) = fixture();
        let assignment = balance_by_load(&set, 1);
        let schedule = ScheduleBuilder::peak_load(&set)
            .build(Ticks(3_000_000))
            .expect("schedule");
        let reference = network::run(
            &set,
            schedule.clone(),
            &config,
            &allocation,
            medium,
            network::RunLimit::Completion(Ticks(1_000_000_000_000)),
        )
        .expect("reference run");
        let options = FederationOptions::new(Ticks(1_000_000), Ticks(1_000_000_000_000));
        let report = run_segments(
            &set,
            schedule,
            &assignment,
            &[],
            &config,
            &allocation,
            medium,
            &options,
        )
        .expect("federated run");
        assert!(report.completed());
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.segments[0].stats, reference);
    }
}
