//! Automated dimensioning: searching the CSMA/DDCR parameter space for a
//! provably feasible configuration.
//!
//! The paper (§2.2): *"FCs are an essential tool for an end user or a
//! technology provider who has to assign numerical values to message
//! lengths, to upper bounds of message arrival densities and to message
//! deadlines. By computing the FCs, it is possible to tell whether or not
//! any quantified instantiation of the HRTDM problem is feasible with our
//! solution."* This module is that tool: given an HRTDM instance and a
//! medium, it sweeps the protocol's free parameters — time tree shape
//! (branching `m`, leaf count `F`), deadline class width `c`, static tree
//! shape `q` and index allocation strategy — evaluates the feasibility
//! conditions for every candidate, and returns the best provable
//! configuration (maximum minimum slack), plus capacity-frontier searches
//! (largest provable source count or load).

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::feasibility::{self, FeasibilityReport};
use crate::indices::StaticAllocation;
use ddcr_sim::{MediumConfig, Ticks};
use ddcr_traffic::MessageSet;
use ddcr_tree::TreeShape;

/// Static index allocation strategies the search considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// One leaf per source (`ν_i = 1`): the smallest trees, the largest
    /// `v(M)`.
    OnePerSource,
    /// All `q` leaves split round-robin (`ν_i ≈ q/z`): fewer static
    /// searches per backlog at the price of longer ones.
    RoundRobin,
}

impl AllocationStrategy {
    fn build(self, tree: TreeShape, z: u32) -> Result<StaticAllocation, DdcrError> {
        match self {
            AllocationStrategy::OnePerSource => StaticAllocation::one_per_source(tree, z),
            AllocationStrategy::RoundRobin => StaticAllocation::round_robin(tree, z),
        }
    }
}

/// One evaluated candidate configuration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The protocol configuration.
    pub config: DdcrConfig,
    /// The static index allocation.
    pub allocation: StaticAllocation,
    /// Strategy that produced the allocation.
    pub strategy: AllocationStrategy,
    /// Full feasibility report.
    pub report: FeasibilityReport,
}

impl Candidate {
    /// Minimum slack across classes (negative when infeasible).
    pub fn min_slack(&self) -> f64 {
        self.report
            .tightest()
            .map(|t| t.slack())
            .unwrap_or(f64::INFINITY)
    }

    /// Whether every class is provably schedulable.
    pub fn feasible(&self) -> bool {
        self.report.feasible()
    }
}

/// The search space swept by [`dimension`].
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate time tree shapes.
    pub time_trees: Vec<TreeShape>,
    /// Candidate static tree branching degrees (the leaf count is the
    /// smallest power ≥ `z`, and one step larger).
    pub static_branchings: Vec<u64>,
    /// Candidate class widths as divisors of the largest deadline
    /// (`c = d_max / divisor`).
    pub width_divisors: Vec<u64>,
    /// Allocation strategies.
    pub strategies: Vec<AllocationStrategy>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            time_trees: [(2u64, 6u32), (4, 3), (8, 2)]
                .iter()
                .map(|&(m, n)| TreeShape::new(m, n).expect("static shapes"))
                .collect(),
            static_branchings: vec![2, 4],
            width_divisors: vec![16, 64, 256],
            strategies: vec![
                AllocationStrategy::OnePerSource,
                AllocationStrategy::RoundRobin,
            ],
        }
    }
}

/// Sweeps the search space and returns every evaluated candidate, sorted
/// by decreasing minimum slack (best first). The head of the returned
/// vector, if [`Candidate::feasible`], is the recommended dimensioning.
///
/// # Errors
///
/// Returns [`DdcrError`] only on structural failures (an empty message
/// set); individual infeasible candidates are returned, not errors.
///
/// # Examples
///
/// ```
/// use ddcr_core::dimensioning;
/// use ddcr_sim::MediumConfig;
/// use ddcr_traffic::scenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = scenario::air_traffic_control(4)?;
/// let candidates = dimensioning::dimension(
///     &set, &MediumConfig::gigabit_ethernet(), &Default::default())?;
/// assert!(candidates[0].feasible());
/// # Ok(())
/// # }
/// ```
pub fn dimension(
    set: &MessageSet,
    medium: &MediumConfig,
    space: &SearchSpace,
) -> Result<Vec<Candidate>, DdcrError> {
    let z = set.sources();
    if z == 0 || set.classes().is_empty() {
        return Err(DdcrError::InvalidConfig(
            "cannot dimension an empty message set".into(),
        ));
    }
    let d_max = set
        .classes()
        .iter()
        .map(|c| c.deadline.as_u64())
        .max()
        .expect("non-empty");
    let mut candidates = Vec::new();
    for &time_tree in &space.time_trees {
        for &mq in &space.static_branchings {
            for static_tree in static_shapes(mq, z) {
                for &div in &space.width_divisors {
                    let c = Ticks((d_max / div).max(medium.slot_ticks));
                    for &strategy in &space.strategies {
                        let config = DdcrConfig {
                            time_tree,
                            static_tree,
                            class_width: c,
                            alpha: c,
                            theta_numerator: 0,
                            bursting: None,
                        };
                        let Ok(allocation) = strategy.build(static_tree, z) else {
                            continue;
                        };
                        let Ok(report) =
                            feasibility::evaluate(set, &config, &allocation, medium)
                        else {
                            continue;
                        };
                        candidates.push(Candidate {
                            config,
                            allocation,
                            strategy,
                            report,
                        });
                    }
                }
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.min_slack()
            .partial_cmp(&a.min_slack())
            .expect("no NaN slack")
    });
    Ok(candidates)
}

/// The smallest `m`-ary shape with at least `z` leaves, and the next one up
/// (a larger `q` can pay off when `ν_i > 1` helps more than longer
/// searches hurt).
fn static_shapes(m: u64, z: u32) -> Vec<TreeShape> {
    let mut shapes = Vec::new();
    let mut n = 1u32;
    while let Ok(shape) = TreeShape::new(m, n) {
        if shape.leaves() >= u64::from(z) {
            shapes.push(shape);
            if let Ok(bigger) = TreeShape::new(m, n + 1) {
                shapes.push(bigger);
            }
            break;
        }
        n += 1;
    }
    shapes
}

/// Binary-searches the largest uniform load (fraction of channel capacity)
/// for which some candidate in the space is provably feasible, by scaling
/// the set's arrival rates.
///
/// # Errors
///
/// Propagates structural failures from [`dimension`] and rate scaling.
pub fn max_provable_load(
    set: &MessageSet,
    medium: &MediumConfig,
    space: &SearchSpace,
    tolerance: f64,
) -> Result<f64, DdcrError> {
    let base = set.offered_load();
    let feasible_at = |factor: f64| -> Result<bool, DdcrError> {
        let scaled = set
            .scaled_rate(factor)
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))?;
        Ok(dimension(&scaled, medium, space)?
            .first()
            .is_some_and(Candidate::feasible))
    };
    if !feasible_at(f64::MIN_POSITIVE.max(0.01))? {
        return Ok(0.0);
    }
    let (mut lo, mut hi) = (0.01f64, 1.0f64 / base);
    if feasible_at(hi)? {
        return Ok(hi * base);
    }
    while (hi - lo) * base > tolerance {
        let mid = 0.5 * (lo + hi);
        if feasible_at(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo * base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_traffic::scenario;

    #[test]
    fn finds_a_feasible_configuration_for_atc() {
        let set = scenario::air_traffic_control(4).unwrap();
        let medium = MediumConfig::gigabit_ethernet();
        let candidates = dimension(&set, &medium, &SearchSpace::default()).unwrap();
        assert!(!candidates.is_empty());
        assert!(candidates[0].feasible(), "best candidate must be feasible");
        // Sorted by decreasing slack.
        for pair in candidates.windows(2) {
            assert!(pair[0].min_slack() >= pair[1].min_slack());
        }
    }

    #[test]
    fn infeasible_instances_yield_no_feasible_candidate() {
        // 95 % load with deadlines a hair above the frame time: hopeless.
        let set = scenario::uniform(8, 8_000, Ticks(20_000), 0.95).unwrap();
        let medium = MediumConfig::ethernet();
        let candidates = dimension(&set, &medium, &SearchSpace::default()).unwrap();
        assert!(candidates.iter().all(|c| !c.feasible()));
    }

    #[test]
    fn round_robin_tends_to_win_on_bursty_sources() {
        let set = scenario::stock_exchange(4).unwrap();
        let medium = MediumConfig::gigabit_ethernet();
        let candidates = dimension(&set, &medium, &SearchSpace::default()).unwrap();
        let best = &candidates[0];
        // Bursts of 10 at one source: ν_i > 1 must help, so the best
        // candidate should not be OnePerSource-with-minimal-q.
        assert!(
            best.allocation.nu(ddcr_sim::SourceId(0)) >= 1,
            "sanity: {best:?}"
        );
        let one = candidates
            .iter()
            .find(|c| c.strategy == AllocationStrategy::OnePerSource)
            .unwrap();
        assert!(best.min_slack() >= one.min_slack());
    }

    #[test]
    fn max_provable_load_is_positive_and_below_capacity() {
        let set = scenario::uniform(4, 8_000, Ticks(10_000_000), 0.2).unwrap();
        let medium = MediumConfig::ethernet();
        let max_load =
            max_provable_load(&set, &medium, &SearchSpace::default(), 0.02).unwrap();
        assert!(max_load > 0.2, "should prove more than the base 20 %: {max_load}");
        assert!(max_load < 1.0);
    }

    #[test]
    fn rejects_empty_sets() {
        let set = ddcr_traffic::MessageSet::new(0, vec![]).unwrap();
        assert!(dimension(&set, &MediumConfig::ethernet(), &SearchSpace::default()).is_err());
    }

    #[test]
    fn static_shapes_cover_z() {
        let shapes = static_shapes(4, 5);
        assert_eq!(shapes[0].leaves(), 16);
        assert_eq!(shapes[1].leaves(), 64);
    }
}
