//! Static index allocation: the partition of the static tree's `q` leaves
//! over the `z` sources (§3.2).
//!
//! The paper allocates a subset `q' ⊆ [0, q−1]` of static leaves,
//! partitioned into exactly `z` subsets; source `s_i` owns `ν_i` indices,
//! locally ranked by increasing value. In one STs execution a source may
//! transmit up to `ν_i` messages, which is why `ν_i` appears directly in
//! the feasibility bound `v(M) = 1 + ⌊r(M)/ν_i⌋`.

use crate::error::DdcrError;
use ddcr_sim::SourceId;
use ddcr_tree::TreeShape;
use serde::{Deserialize, Serialize};

/// An allocation of static-tree leaf indices to sources.
///
/// Invariants (enforced at construction): indices are unique across
/// sources, within `[0, q)`, each source's list is sorted increasing, and
/// every source owns at least one index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticAllocation {
    q: u64,
    per_source: Vec<Vec<u64>>,
}

impl StaticAllocation {
    /// Builds an allocation from explicit per-source index lists.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if any source has no index,
    /// an index repeats or exceeds `q − 1`.
    pub fn new(static_tree: TreeShape, per_source: Vec<Vec<u64>>) -> Result<Self, DdcrError> {
        let q = static_tree.leaves();
        let mut seen = std::collections::HashSet::new();
        for (source, indices) in per_source.iter().enumerate() {
            if indices.is_empty() {
                return Err(DdcrError::InvalidAllocation(format!(
                    "source {source} has no static index"
                )));
            }
            let mut prev: Option<u64> = None;
            for &idx in indices {
                if idx >= q {
                    return Err(DdcrError::InvalidAllocation(format!(
                        "source {source}: index {idx} outside [0, {q})"
                    )));
                }
                if !seen.insert(idx) {
                    return Err(DdcrError::InvalidAllocation(format!(
                        "index {idx} allocated twice"
                    )));
                }
                if let Some(p) = prev {
                    if idx <= p {
                        return Err(DdcrError::InvalidAllocation(format!(
                            "source {source}: indices must be ranked increasing"
                        )));
                    }
                }
                prev = Some(idx);
            }
        }
        Ok(StaticAllocation { q, per_source })
    }

    /// One index per source: source `i` owns leaf `i`. The minimal
    /// allocation (`ν_i = 1` for all `i`).
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if `z = 0` or `z > q`.
    pub fn one_per_source(static_tree: TreeShape, z: u32) -> Result<Self, DdcrError> {
        if z == 0 || u64::from(z) > static_tree.leaves() {
            return Err(DdcrError::InvalidAllocation(format!(
                "need 1 ≤ z ≤ q, got z={z}, q={}",
                static_tree.leaves()
            )));
        }
        Self::new(
            static_tree,
            (0..u64::from(z)).map(|i| vec![i]).collect(),
        )
    }

    /// Splits all `q` leaves round-robin over `z` sources: source `i` owns
    /// `{i, i+z, i+2z, …}`, giving every source `ν_i = ⌈(q−i)/z⌉` indices
    /// spread across the whole tree (which spreads a source's
    /// intra-STs transmissions over the search, letting it transmit several
    /// messages per search).
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if `z` is zero or exceeds
    /// `q`.
    pub fn round_robin(static_tree: TreeShape, z: u32) -> Result<Self, DdcrError> {
        let q = static_tree.leaves();
        if z == 0 || u64::from(z) > q {
            return Err(DdcrError::InvalidAllocation(format!(
                "need 1 ≤ z ≤ q, got z={z}, q={q}"
            )));
        }
        let per_source = (0..u64::from(z))
            .map(|i| (i..q).step_by(z as usize).collect())
            .collect();
        Self::new(static_tree, per_source)
    }

    /// Gives each of `z` sources `ν` consecutive leaves: source `i` owns
    /// `[i·ν, (i+1)·ν)`.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if `z·ν > q` or `ν = 0`.
    pub fn contiguous(static_tree: TreeShape, z: u32, nu: u64) -> Result<Self, DdcrError> {
        let q = static_tree.leaves();
        if z == 0 || nu == 0 || u64::from(z) * nu > q {
            return Err(DdcrError::InvalidAllocation(format!(
                "need z ≥ 1, ν ≥ 1 and z·ν ≤ q, got z={z}, ν={nu}, q={q}"
            )));
        }
        let per_source = (0..u64::from(z))
            .map(|i| (i * nu..(i + 1) * nu).collect())
            .collect();
        Self::new(static_tree, per_source)
    }

    /// Number of static leaves `q`.
    pub fn leaves(&self) -> u64 {
        self.q
    }

    /// Number of sources `z` covered by this allocation.
    pub fn sources(&self) -> u32 {
        self.per_source.len() as u32
    }

    /// The ranked indices of one source.
    ///
    /// # Panics
    ///
    /// Panics if `source` is outside the allocation.
    pub fn indices_of(&self, source: SourceId) -> &[u64] {
        &self.per_source[source.0 as usize]
    }

    /// `ν_i`: how many indices one source owns.
    ///
    /// # Panics
    ///
    /// Panics if `source` is outside the allocation.
    pub fn nu(&self, source: SourceId) -> u64 {
        self.per_source[source.0 as usize].len() as u64
    }

    /// The source owning a given static leaf, if any.
    ///
    /// Consistent under online reclamation: once
    /// [`StaticAllocation::reclaim`] empties a source's list, no leaf
    /// reports that source as owner — a reclaimed leaf is free (or owned by
    /// whoever it was re-granted to) with no stale answers.
    pub fn owner_of(&self, leaf: u64) -> Option<SourceId> {
        self.per_source
            .iter()
            .position(|indices| indices.binary_search(&leaf).is_ok())
            .map(|i| SourceId(i as u32))
    }

    /// An allocation covering `z` sources in which **no** source owns a
    /// leaf yet — the starting point of a dynamic-membership fabric where
    /// every station must [`StaticAllocation::grant`] its way in.
    ///
    /// Such partial allocations deliberately relax the "every source owns
    /// at least one index" invariant of [`StaticAllocation::new`]: a source
    /// with `ν_i = 0` is *detached* and must not transmit in STs (the
    /// feasibility layer refuses its flows with a typed error).
    pub fn detached(static_tree: TreeShape, z: u32) -> Self {
        StaticAllocation {
            q: static_tree.leaves(),
            per_source: vec![Vec::new(); z as usize],
        }
    }

    /// Grants `leaves` to `source`, which must currently own none (a
    /// joining or re-joining station). The allocation grows to cover
    /// `source` if needed.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if `source` already owns
    /// indices, a leaf is out of range or already owned, the list is empty,
    /// or not ranked strictly increasing.
    pub fn grant(&mut self, source: SourceId, leaves: Vec<u64>) -> Result<(), DdcrError> {
        if leaves.is_empty() {
            return Err(DdcrError::InvalidAllocation(format!(
                "grant to source {} must carry at least one leaf",
                source.0
            )));
        }
        let idx = source.0 as usize;
        if self.per_source.get(idx).is_some_and(|l| !l.is_empty()) {
            return Err(DdcrError::InvalidAllocation(format!(
                "source {} already owns {} indices",
                source.0,
                self.per_source[idx].len()
            )));
        }
        let mut prev: Option<u64> = None;
        for &leaf in &leaves {
            if leaf >= self.q {
                return Err(DdcrError::InvalidAllocation(format!(
                    "leaf {leaf} outside [0, {})",
                    self.q
                )));
            }
            if let Some(owner) = self.owner_of(leaf) {
                return Err(DdcrError::InvalidAllocation(format!(
                    "leaf {leaf} already owned by source {}",
                    owner.0
                )));
            }
            if prev.is_some_and(|p| leaf <= p) {
                return Err(DdcrError::InvalidAllocation(format!(
                    "grant to source {}: leaves must be ranked increasing",
                    source.0
                )));
            }
            prev = Some(leaf);
        }
        if self.per_source.len() <= idx {
            self.per_source.resize(idx + 1, Vec::new());
        }
        self.per_source[idx] = leaves;
        Ok(())
    }

    /// Reclaims every leaf of `source` (a leaving or crashed station),
    /// returning the reclaimed list. After this call `owner_of` reports
    /// none of those leaves as owned and `nu(source)` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidAllocation`] if `source` is outside the
    /// allocation.
    pub fn reclaim(&mut self, source: SourceId) -> Result<Vec<u64>, DdcrError> {
        let idx = source.0 as usize;
        match self.per_source.get_mut(idx) {
            Some(list) => Ok(std::mem::take(list)),
            None => Err(DdcrError::InvalidAllocation(format!(
                "source {} outside allocation of {} sources",
                source.0,
                self.per_source.len()
            ))),
        }
    }

    /// Every unowned static leaf, ascending — the pool a join draws from.
    pub fn free_leaves(&self) -> Vec<u64> {
        let mut owned = vec![false; self.q as usize];
        for list in &self.per_source {
            for &leaf in list {
                owned[leaf as usize] = true;
            }
        }
        (0..self.q).filter(|&l| !owned[l as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(q: u64) -> TreeShape {
        TreeShape::from_leaves(4, q).unwrap_or_else(|_| TreeShape::from_leaves(2, q).unwrap())
    }

    #[test]
    fn one_per_source_allocates_prefix() {
        let a = StaticAllocation::one_per_source(tree(16), 5).unwrap();
        assert_eq!(a.sources(), 5);
        assert_eq!(a.indices_of(SourceId(3)), &[3]);
        assert_eq!(a.nu(SourceId(0)), 1);
        assert_eq!(a.owner_of(4), Some(SourceId(4)));
        assert_eq!(a.owner_of(5), None);
    }

    #[test]
    fn round_robin_interleaves() {
        let a = StaticAllocation::round_robin(tree(16), 4).unwrap();
        assert_eq!(a.indices_of(SourceId(1)), &[1, 5, 9, 13]);
        assert_eq!(a.nu(SourceId(1)), 4);
        assert_eq!(a.owner_of(9), Some(SourceId(1)));
    }

    #[test]
    fn contiguous_blocks() {
        let a = StaticAllocation::contiguous(tree(16), 3, 4).unwrap();
        assert_eq!(a.indices_of(SourceId(2)), &[8, 9, 10, 11]);
        assert_eq!(a.owner_of(15), None); // leaves beyond 3·4 unallocated
    }

    #[test]
    fn rejects_overlap_and_range() {
        let t = tree(4);
        assert!(StaticAllocation::new(t, vec![vec![0], vec![0]]).is_err());
        assert!(StaticAllocation::new(t, vec![vec![4]]).is_err());
        assert!(StaticAllocation::new(t, vec![vec![]]).is_err());
        assert!(StaticAllocation::new(t, vec![vec![2, 1]]).is_err());
    }

    #[test]
    fn rejects_too_many_sources() {
        assert!(StaticAllocation::one_per_source(tree(4), 5).is_err());
        assert!(StaticAllocation::round_robin(tree(4), 0).is_err());
        assert!(StaticAllocation::contiguous(tree(4), 3, 2).is_err());
    }

    #[test]
    fn rejects_zero_sources() {
        // Regression: z = 0 used to build a degenerate empty allocation
        // silently in one_per_source and contiguous.
        assert!(StaticAllocation::one_per_source(tree(4), 0).is_err());
        assert!(StaticAllocation::contiguous(tree(4), 0, 1).is_err());
        assert!(StaticAllocation::contiguous(tree(4), 2, 0).is_err());
    }

    #[test]
    fn reclaim_leaves_no_stale_owner() {
        let mut a = StaticAllocation::round_robin(tree(16), 4).unwrap();
        assert_eq!(a.owner_of(9), Some(SourceId(1)));
        let reclaimed = a.reclaim(SourceId(1)).unwrap();
        assert_eq!(reclaimed, vec![1, 5, 9, 13]);
        assert_eq!(a.nu(SourceId(1)), 0);
        for leaf in reclaimed {
            assert_eq!(a.owner_of(leaf), None, "stale owner for leaf {leaf}");
        }
        assert!(a.reclaim(SourceId(9)).is_err());
    }

    #[test]
    fn grant_reuses_reclaimed_leaves() {
        let mut a = StaticAllocation::contiguous(tree(16), 3, 4).unwrap();
        let freed = a.reclaim(SourceId(0)).unwrap();
        assert_eq!(a.free_leaves(), vec![0, 1, 2, 3, 12, 13, 14, 15]);
        // Double-grant and overlap rejected.
        assert!(a.grant(SourceId(1), vec![0]).is_err());
        assert!(a.grant(SourceId(0), vec![4]).is_err());
        assert!(a.grant(SourceId(0), vec![]).is_err());
        assert!(a.grant(SourceId(0), vec![3, 3]).is_err());
        assert!(a.grant(SourceId(0), vec![99]).is_err());
        a.grant(SourceId(0), freed).unwrap();
        assert_eq!(a.indices_of(SourceId(0)), &[0, 1, 2, 3]);
        assert_eq!(a.owner_of(0), Some(SourceId(0)));
    }

    #[test]
    fn detached_allocation_grows_by_grant() {
        let mut a = StaticAllocation::detached(tree(16), 2);
        assert_eq!(a.sources(), 2);
        assert_eq!(a.nu(SourceId(0)), 0);
        assert_eq!(a.free_leaves().len(), 16);
        a.grant(SourceId(3), vec![7]).unwrap();
        assert_eq!(a.sources(), 4);
        assert_eq!(a.owner_of(7), Some(SourceId(3)));
    }

    #[test]
    fn not_all_leaves_need_allocation() {
        // q' ⊂ [0, q−1] is allowed (paper: "not all q integers need be
        // allocated").
        let a = StaticAllocation::new(tree(16), vec![vec![2, 7], vec![11]]).unwrap();
        assert_eq!(a.nu(SourceId(0)), 2);
        assert_eq!(a.owner_of(3), None);
    }
}
