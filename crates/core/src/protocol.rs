//! The CSMA/DDCR station state machine (§3.2).
//!
//! Every station runs a **replica** of the same deterministic automaton,
//! advanced only by the shared channel feedback; the only private inputs
//! are the station's own queue contents and its static index allocation.
//! The automaton cycles through:
//!
//! 1. **TTs** — a time tree search over `F` deadline equivalence classes of
//!    width `c`. A station participates with `msg*` (the EDF head) at leaf
//!    `f(reft, msg*) = max{⌊(DM − (α + reft))/c⌋, f* + 1}`, or sits out if
//!    the index exceeds `F − 1`. A collision on a time-tree *leaf* (two
//!    messages in the same deadline class) suspends TTs and runs STs.
//! 2. **STs** — a static tree search over `q` statically allocated source
//!    indices; a source participates with messages in the collided (or an
//!    earlier) deadline class and may transmit up to `ν_i` messages, one
//!    per owned index, in ranking order.
//! 3. **Attempt** — one CSMA-CD attempt slot after a TTs that transmitted
//!    (`out = true`), and — when compressed time is off — also after an
//!    empty TTs ("if a message is waiting in Q at the end of some execution
//!    of TTs, its transmission is attempted, à la CSMA-CD"); a collision
//!    re-synchronises `reft` to physical time and a new TTs begins. With
//!    compressed time on, an empty TTs loops straight into the next TTs
//!    per the pseudocode (see docs/PROTOCOL.md, decision D1).
//!
//! `reft` follows the paper's rules: set to physical time at protocol
//! start, at every successful transmission during a time tree search, at
//! static tree search completion, and after an attempt-slot collision;
//! incremented by `θ(c)` when a time tree search ends without any
//! transmission (compressed-time mode).

use crate::config::DdcrConfig;
use crate::edf::EdfQueue;
use crate::indices::StaticAllocation;
use crate::mts::{Interval, MtsEvent, MtsSearch, SlotOutcome};
use ddcr_sim::{
    Action, AttemptCycleHint, EpochStamp, Frame, HoldHint, Message, MessageId, Observation,
    PhaseHint, ProtocolPhase, SearchHint, SearchSlotRecord, SourceId, Station, Ticks, WakeHint,
};
use serde::{Deserialize, Serialize};

/// Per-station protocol event counters, for experiments and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolCounters {
    /// Time tree searches started.
    pub tts_runs: u64,
    /// Time tree searches that ended without any transmission
    /// (`out = false`).
    pub tts_empty_runs: u64,
    /// Static tree searches run.
    pub sts_runs: u64,
    /// Attempt slots in which this station transmitted.
    pub attempts: u64,
    /// Attempt slots that ended in a collision.
    pub attempt_collisions: u64,
    /// Probe slots observed as collisions (search overhead).
    pub probe_collisions: u64,
    /// Probe slots observed as empty (search overhead).
    pub probe_empties: u64,
    /// Burst continuation frames this station transmitted.
    pub burst_continuations: u64,
    /// Messages this station transmitted successfully.
    pub transmitted: u64,
    /// Collisions that cannot occur in a conforming network (static-leaf
    /// collisions): evidence of interference or a babbling station.
    pub interference_collisions: u64,
    /// Injected omission failures this station suffered.
    pub crashes: u64,
    /// Successful resynchronizations after a restart (epoch boundary
    /// observed, replica state rebuilt).
    pub rejoins: u64,
}

impl ProtocolCounters {
    /// Copies the **shared** (replica-invariant) counters from `other`,
    /// leaving the private ones untouched.
    ///
    /// The shared subset moves in lock-step on every synced replica because
    /// each is incremented purely from channel feedback (`observe`
    /// transitions): searches started/finished, probe outcomes, attempt
    /// collisions and interference. The private subset — `attempts`,
    /// `transmitted`, `burst_continuations`, `crashes`, `rejoins` — counts
    /// this station's own actions and never changes while it stays silent,
    /// so a quiet replica catching up after a contention fast-forward keeps
    /// its own values.
    fn adopt_shared(&mut self, other: &ProtocolCounters) {
        self.tts_runs = other.tts_runs;
        self.tts_empty_runs = other.tts_empty_runs;
        self.sts_runs = other.sts_runs;
        self.attempt_collisions = other.attempt_collisions;
        self.probe_collisions = other.probe_collisions;
        self.probe_empties = other.probe_empties;
        self.interference_collisions = other.interference_collisions;
    }
}

/// The opaque checkpoint an engaged replica hands the engine at the end of
/// a contention fast-forward run (see [`Station::search_checkpoint`]).
///
/// Carries the engaged replica's post-run epoch coordinates plus its full
/// counter block; a quiet replica rebuilds the shared automaton from the
/// stamp (the proven resynchronization mechanism), replays only the final
/// epoch's tail of slot records, and adopts the shared counter subset —
/// `O(final epoch)` work instead of `O(whole run)`.
#[derive(Debug, Clone, Copy)]
struct SearchCheckpoint {
    stamp: EpochStamp,
    counters: ProtocolCounters,
}

/// State of one time tree search in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TtsState {
    search: MtsSearch,
    transmitted_any: bool,
}

/// Protocol phase; shared-deterministic across replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Running a time tree search.
    Tts(TtsState),
    /// Running a static tree search nested inside a suspended TTs.
    Sts {
        search: MtsSearch,
        collided_leaf: u64,
        saved: TtsState,
    },
    /// The single CSMA-CD attempt slot following a time tree search.
    Attempt,
}

/// What this slot means for this station (computed from the phase without
/// holding a borrow on it).
enum SlotPlan {
    Tts {
        frontier: u64,
        interval: Option<Interval>,
    },
    Sts {
        interval: Option<Interval>,
        collided_leaf: u64,
    },
    Attempt,
}

/// Liveness mode of this replica with respect to the shared automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    /// Normal operation: a full replica of the shared automaton.
    Online,
    /// Crashed (fenced by the engine); volatile state is gone.
    Crashed,
    /// Up after a restart, but receive-only: the replica state is stale, so
    /// the station buffers everything it hears and waits for a frame whose
    /// [`EpochStamp`] proves a tree-search epoch began after `since`. It
    /// then rebuilds the shared state from the stamp and replays the
    /// buffer (see `observe_resync`).
    Resync {
        since: Ticks,
        buffer: Vec<BufferedSlot>,
    },
}

/// One buffered channel outcome recorded while resynchronizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufferedSlot {
    /// An individually observed slot.
    Step {
        at: Ticks,
        next_free: Ticks,
        observation: Observation,
    },
    /// A fast-forwarded silence run (`slots` silent slots from `from`).
    SilenceRun { from: Ticks, slots: u64, slot: Ticks },
}

/// A CSMA/DDCR station: local EDF queue plus the replicated
/// deadline-driven collision-resolution automaton.
///
/// # Examples
///
/// ```
/// use ddcr_core::{DdcrConfig, DdcrStation, StaticAllocation};
/// use ddcr_sim::{MediumConfig, SourceId, Ticks};
///
/// # fn main() -> Result<(), ddcr_core::DdcrError> {
/// let config = DdcrConfig::for_sources(4, Ticks(100_000))?;
/// let allocation = StaticAllocation::one_per_source(config.static_tree, 4)?;
/// let station = DdcrStation::new(
///     SourceId(0),
///     config,
///     allocation,
///     MediumConfig::ethernet().overhead_bits,
/// )?;
/// assert_eq!(station.counters().transmitted, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DdcrStation {
    source: SourceId,
    config: DdcrConfig,
    allocation: StaticAllocation,
    overhead_bits: u64,
    queue: EdfQueue,
    phase: Phase,
    reft: Ticks,
    /// Frozen time-tree leaf for the current `msg*`; `None` while no index
    /// is held (empty queue, or the message sits out of this TTs).
    time_index: Option<u64>,
    /// Which message the frozen index belongs to (recompute trigger).
    time_index_for: Option<MessageId>,
    /// How many messages this station has transmitted in the current STs.
    sts_cursor: u64,
    /// Burst reservation: the source whose burst continues next slot.
    burst_reserved_for: Option<SourceId>,
    /// Remaining burst bit budget (meaningful on the bursting station).
    burst_budget: u64,
    /// Crash/resync mode (Online in a fault-free run).
    mode: Mode,
    /// When the current tree-search epoch (the TTs run in progress, or the
    /// one whose attempt slot is pending) began.
    epoch_start: Ticks,
    /// `reft` at the epoch boundary.
    epoch_reft: Ticks,
    /// Burst reservation armed at the epoch boundary (an epoch can begin
    /// with a source still holding channel control).
    epoch_burst: Option<SourceId>,
    counters: ProtocolCounters,
}

impl DdcrStation {
    /// Creates a station replica.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DdcrError::InvalidConfig`] if the source is outside
    /// the allocation or the configuration fails validation.
    pub fn new(
        source: SourceId,
        config: DdcrConfig,
        allocation: StaticAllocation,
        overhead_bits: u64,
    ) -> Result<Self, crate::DdcrError> {
        config.validate(allocation.sources())?;
        if source.0 >= allocation.sources() {
            return Err(crate::DdcrError::InvalidConfig(format!(
                "source {source} outside allocation of {} sources",
                allocation.sources()
            )));
        }
        Ok(DdcrStation {
            source,
            config,
            allocation,
            overhead_bits,
            queue: EdfQueue::new(),
            phase: Phase::Tts(TtsState {
                search: MtsSearch::new(config.time_tree),
                transmitted_any: false,
            }),
            reft: Ticks::ZERO,
            time_index: None,
            time_index_for: None,
            sts_cursor: 0,
            burst_reserved_for: None,
            burst_budget: 0,
            mode: Mode::Online,
            epoch_start: Ticks::ZERO,
            epoch_reft: Ticks::ZERO,
            epoch_burst: None,
            counters: ProtocolCounters {
                tts_runs: 1,
                ..ProtocolCounters::default()
            },
        })
    }

    /// The station's source id.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Event counters accumulated so far.
    pub fn counters(&self) -> ProtocolCounters {
        self.counters
    }

    /// The current reference time `reft`.
    pub fn reft(&self) -> Ticks {
        self.reft
    }

    /// A digest of the **shared** (replica-invariant) protocol state:
    /// phase kind, search frontier, current interval, `reft`, and burst
    /// reservation. Every station attached to the same channel must produce
    /// identical digests at every slot boundary; integration tests assert
    /// exactly that.
    pub fn shared_state_digest(&self) -> String {
        match &self.mode {
            Mode::Crashed => return "crashed".to_owned(),
            Mode::Resync { since, .. } => return format!("resync;since={since}"),
            Mode::Online => {}
        }
        let fmt_interval =
            |i: Option<Interval>| i.map_or("-".to_owned(), |i| format!("{}+{}", i.lo, i.width));
        let phase = match &self.phase {
            Phase::Tts(s) => format!(
                "TTs(front={},cur={},out={})",
                s.search.frontier(),
                fmt_interval(s.search.current()),
                s.transmitted_any
            ),
            Phase::Sts {
                search,
                collided_leaf,
                saved,
            } => format!(
                "STs(cur={},leaf={},saved_front={})",
                fmt_interval(search.current()),
                collided_leaf,
                saved.search.frontier()
            ),
            Phase::Attempt => "Attempt".to_owned(),
        };
        format!(
            "{phase};reft={};burst={:?};epoch=({},{},{:?})",
            self.reft, self.burst_reserved_for, self.epoch_start, self.epoch_reft, self.epoch_burst
        )
    }

    /// Whether this replica is a full participant of the shared automaton
    /// (not crashed and not resynchronizing). Only synced replicas are
    /// required to agree on [`DdcrStation::shared_state_digest`].
    pub fn is_synced(&self) -> bool {
        matches!(self.mode, Mode::Online)
    }

    /// Raw deadline-class index `⌊(DM(msg) − (α + reft)) / c⌋`, which may
    /// be negative for "late" messages.
    fn raw_f(&self, msg: &Message) -> i64 {
        let dm = msg.absolute_deadline().as_u64() as i128;
        let origin = (self.config.alpha + self.reft).as_u64() as i128;
        let c = self.config.class_width.as_u64() as i128;
        (dm - origin).div_euclid(c) as i64
    }

    /// Recomputes the frozen time index when `msg*` changed, applying the
    /// `max{…, f* + 1}` clamp and the `> F − 1` sit-out rule.
    fn ensure_time_index(&mut self, frontier: u64) {
        match self.queue.head() {
            None => {
                self.time_index = None;
                self.time_index_for = None;
            }
            Some(head) => {
                if self.time_index_for != Some(head.id) {
                    let id = head.id;
                    let clamped = self.raw_f(head).max(frontier as i64) as u64;
                    self.time_index = if clamped >= self.config.time_tree.leaves() {
                        None // sits this time tree search out
                    } else {
                        Some(clamped)
                    };
                    self.time_index_for = Some(id);
                }
            }
        }
    }

    /// Whether a message may enter the static tree tie-break for a
    /// collision on `collided_leaf`: its (unclamped) deadline class is the
    /// collided class or an earlier one.
    fn eligible_for_sts(&self, msg: &Message, collided_leaf: u64) -> bool {
        self.raw_f(msg) <= collided_leaf as i64
    }

    /// Builds the frame for transmitting `msg` now, computing the burst
    /// continuation flag against the full burst budget.
    fn initial_frame(&self, msg: Message) -> Frame {
        let mut frame = Frame::new(msg, msg.bits + self.overhead_bits);
        frame.epoch = Some(self.epoch_stamp());
        if let Some(burst) = self.config.bursting {
            frame.burst_more = self
                .queue
                .second()
                .is_some_and(|next| next.bits <= burst.max_extra_bits);
        }
        frame
    }

    /// Builds a burst continuation frame for the current head against the
    /// remaining budget.
    fn continuation_frame(&self, msg: Message) -> Frame {
        let mut frame = Frame::new(msg, msg.bits + self.overhead_bits);
        frame.epoch = Some(self.epoch_stamp());
        if self.config.bursting.is_some() {
            let remaining = self.burst_budget.saturating_sub(msg.bits);
            frame.burst_more = self
                .queue
                .second()
                .is_some_and(|next| next.bits <= remaining);
        }
        frame
    }

    /// Bookkeeping common to every observed successful transmission:
    /// dequeues own messages and arms/disarms the burst reservation.
    /// `fresh_acquisition` marks a first frame (not a continuation), which
    /// refills the transmitter's burst budget.
    fn note_delivery(&mut self, frame: &Frame, fresh_acquisition: bool) {
        if frame.message.source == self.source
            && self.queue.pop_if(frame.message.id).is_some()
        {
            self.counters.transmitted += 1;
            if fresh_acquisition && frame.burst_more {
                self.burst_budget = self
                    .config
                    .bursting
                    .map(|b| b.max_extra_bits)
                    .unwrap_or(0);
            }
        }
        self.burst_reserved_for = if frame.burst_more {
            Some(frame.message.source)
        } else {
            None
        };
    }

    /// The epoch coordinates every transmitted frame carries (the resync
    /// anchor for restarted stations).
    fn epoch_stamp(&self) -> EpochStamp {
        EpochStamp {
            start: self.epoch_start,
            reft: self.epoch_reft,
            burst: self.epoch_burst,
        }
    }

    /// Starts a fresh time tree search (new `reft`-relative indices) at
    /// channel time `at` — a tree-search epoch boundary. Must run *after*
    /// any `reft` update and `note_delivery` of the closing slot, so the
    /// recorded epoch coordinates are the ones the new search runs under.
    fn start_tts(&mut self, at: Ticks) {
        self.counters.tts_runs += 1;
        self.time_index = None;
        self.time_index_for = None;
        self.epoch_start = at;
        self.epoch_reft = self.reft;
        self.epoch_burst = self.burst_reserved_for;
        self.phase = Phase::Tts(TtsState {
            search: MtsSearch::new(self.config.time_tree),
            transmitted_any: false,
        });
    }

    /// Handles the slot observation for a burst-reserved slot; returns
    /// `true` if the slot was consumed by burst handling.
    fn observe_burst_slot(&mut self, observation: &Observation) -> bool {
        if self.burst_reserved_for.is_none() {
            return false;
        }
        match observation {
            Observation::Busy(frame) => {
                if frame.message.source == self.source {
                    self.burst_budget = self.burst_budget.saturating_sub(frame.message.bits);
                    self.counters.burst_continuations += 1;
                }
                self.note_delivery(frame, false);
            }
            Observation::Silence => {
                self.burst_reserved_for = None;
            }
            Observation::Collision { survivor } => {
                // Defensive: a conforming network never collides into a
                // reserved slot; resolve by dropping the reservation.
                if let Some(frame) = survivor {
                    self.note_delivery(frame, false);
                } else {
                    self.burst_reserved_for = None;
                }
            }
            Observation::Garbled => {
                // The continuation was erased on the wire: every replica
                // drops the reservation; the holder's message stays queued
                // and re-enters through the regular search phases.
                self.burst_reserved_for = None;
            }
        }
        true
    }

    /// Receive-only slot handling while resynchronizing: buffer the
    /// observation, and if it carries a frame whose epoch began after the
    /// restart, rebuild the shared state and rejoin.
    ///
    /// Why this is sound: within one epoch the shared state is a pure
    /// function of the epoch coordinates `(start, reft, burst)` and the
    /// observation sequence since `start` — `observe` transitions never
    /// read the local queue (private effects of `note_delivery` touch only
    /// own-source frames, and a resynchronizing station was provably silent
    /// over the buffered span). So replaying the buffer from `stamp.start`
    /// over a freshly initialized epoch reproduces exactly the state every
    /// online replica holds.
    fn observe_resync(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
        let anchor = match observation {
            Observation::Busy(frame)
            | Observation::Collision {
                survivor: Some(frame),
            } => frame.epoch,
            _ => None,
        };
        let Mode::Resync { since, buffer } = &mut self.mode else {
            // The only caller dispatches on the mode, so an online/other
            // mode here is an internal inconsistency — but a long-running
            // deployment must not abort on it. Treat the slot as already
            // handled by the online path and keep running.
            debug_assert!(false, "observe_resync requires Resync mode");
            return;
        };
        let since = *since;
        buffer.push(BufferedSlot::Step {
            at: now,
            next_free,
            observation: *observation,
        });
        if let Some(stamp) = anchor {
            if stamp.start >= since {
                let buffer = std::mem::take(buffer);
                self.mode = Mode::Online;
                self.reinitialize_at_epoch(stamp);
                self.replay_buffer(&buffer, stamp.start);
                self.counters.rejoins += 1;
            }
        }
    }

    /// Rebuilds the shared replica state at an epoch boundary from its
    /// on-wire coordinates.
    fn reinitialize_at_epoch(&mut self, stamp: EpochStamp) {
        self.reft = stamp.reft;
        self.burst_reserved_for = stamp.burst;
        self.burst_budget = 0;
        self.sts_cursor = 0;
        self.time_index = None;
        self.time_index_for = None;
        self.epoch_start = stamp.start;
        self.epoch_reft = stamp.reft;
        self.epoch_burst = stamp.burst;
        self.counters.tts_runs += 1;
        self.phase = Phase::Tts(TtsState {
            search: MtsSearch::new(self.config.time_tree),
            transmitted_any: false,
        });
    }

    /// Replays the buffered observations from the epoch boundary `from`
    /// onward against the freshly initialized automaton. Epoch boundaries
    /// are slot-aligned, so a silence run straddling `from` splits cleanly
    /// at a slot boundary.
    fn replay_buffer(&mut self, buffer: &[BufferedSlot], from: Ticks) {
        for entry in buffer {
            match *entry {
                BufferedSlot::Step {
                    at,
                    next_free,
                    ref observation,
                } => {
                    if at >= from {
                        self.observe_online(at, next_free, observation);
                    }
                }
                BufferedSlot::SilenceRun {
                    from: run_from,
                    slots,
                    slot,
                } => {
                    if run_from + slot * slots <= from {
                        continue;
                    }
                    if run_from >= from {
                        self.skip_silence_online(run_from, slots, slot);
                    } else {
                        let skip = (from - run_from).as_u64() / slot.as_u64();
                        self.skip_silence_online(run_from + slot * skip, slots - skip, slot);
                    }
                }
            }
        }
    }
}

impl Station for DdcrStation {
    fn deliver(&mut self, message: Message) {
        self.queue.push(message);
    }

    fn poll(&mut self, _now: Ticks) -> Action {
        // Crashed stations are fenced by the engine; a resynchronizing one
        // is receive-only until it can prove replica consistency.
        if !matches!(self.mode, Mode::Online) {
            return Action::Idle;
        }
        // A burst reservation pre-empts every phase.
        if let Some(holder) = self.burst_reserved_for {
            if holder == self.source {
                if let Some(&head) = self.queue.head() {
                    if head.bits <= self.burst_budget {
                        return Action::Transmit(self.continuation_frame(head));
                    }
                }
            }
            return Action::Idle;
        }
        let plan = match &self.phase {
            Phase::Tts(state) => SlotPlan::Tts {
                frontier: state.search.frontier(),
                interval: state.search.current(),
            },
            Phase::Sts {
                search,
                collided_leaf,
                ..
            } => SlotPlan::Sts {
                interval: search.current(),
                collided_leaf: *collided_leaf,
            },
            Phase::Attempt => SlotPlan::Attempt,
        };
        match plan {
            SlotPlan::Tts { frontier, interval } => {
                self.ensure_time_index(frontier);
                let (Some(interval), Some(idx), Some(&head)) =
                    (interval, self.time_index, self.queue.head())
                else {
                    return Action::Idle;
                };
                if interval.contains(idx) {
                    Action::Transmit(self.initial_frame(head))
                } else {
                    Action::Idle
                }
            }
            SlotPlan::Sts {
                interval,
                collided_leaf,
            } => {
                let (Some(interval), Some(&head)) = (interval, self.queue.head()) else {
                    return Action::Idle;
                };
                let indices = self.allocation.indices_of(self.source);
                let Some(&my_index) = indices.get(self.sts_cursor as usize) else {
                    return Action::Idle; // ν_i messages already sent this STs
                };
                if interval.contains(my_index) && self.eligible_for_sts(&head, collided_leaf)
                {
                    Action::Transmit(self.initial_frame(head))
                } else {
                    Action::Idle
                }
            }
            SlotPlan::Attempt => match self.queue.head() {
                Some(&head) => {
                    self.counters.attempts += 1;
                    Action::Transmit(self.initial_frame(head))
                }
                None => Action::Idle,
            },
        }
    }

    fn observe(&mut self, now: Ticks, next_free: Ticks, observation: &Observation) {
        if matches!(self.mode, Mode::Online) {
            self.observe_online(now, next_free, observation);
        } else if matches!(self.mode, Mode::Resync { .. }) {
            self.observe_resync(now, next_free, observation);
        }
        // Crashed: defensive no-op — the engine fences crashed stations.
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn crash(&mut self, _now: Ticks) -> Vec<Message> {
        self.counters.crashes += 1;
        self.mode = Mode::Crashed;
        self.burst_reserved_for = None;
        self.burst_budget = 0;
        self.sts_cursor = 0;
        self.time_index = None;
        self.time_index_for = None;
        self.queue.drain_sorted()
    }

    fn restart(&mut self, now: Ticks) {
        self.mode = Mode::Resync {
            since: now,
            buffer: Vec::new(),
        };
    }

    fn next_ready(&self, now: Ticks) -> Option<Ticks> {
        match self.mode {
            // A fenced or receive-only station never transmits; silence
            // runs may be skipped over it (buffered while resyncing).
            Mode::Crashed | Mode::Resync { .. } => return None,
            Mode::Online => {}
        }
        if self.burst_reserved_for.is_some() || !self.queue.is_empty() {
            return Some(now);
        }
        match self.phase {
            // STs completion re-reads physical time (`reft := next_free`),
            // so those slots must be stepped individually even when this
            // station has nothing to send.
            Phase::Sts { .. } => Some(now),
            // The idle TTs/Attempt cycle is time-free under silence: the
            // replicated automaton keeps turning, but its evolution depends
            // only on slot *count*, which `skip_silence` replays exactly.
            Phase::Tts(_) | Phase::Attempt => None,
        }
    }

    fn skip_silence(&mut self, from: Ticks, slots: u64, slot: Ticks) {
        if matches!(self.mode, Mode::Online) {
            self.skip_silence_online(from, slots, slot);
        } else if let Mode::Resync { buffer, .. } = &mut self.mode {
            buffer.push(BufferedSlot::SilenceRun { from, slots, slot });
        }
    }

    fn wake_hint(&self) -> WakeHint {
        // Dormancy is exactly the regime `next_ready` answers `None` for
        // while Online: an empty queue, no burst reservation, and the
        // time-free TTs/Attempt idle cycle, in which this replica is
        // provably silent and every deferred catch-up primitive replays
        // exactly. A resynchronizing replica stays live (its per-slot
        // buffering and hint vetoes must be consulted), and a synced
        // replica outside the idle cycle — mid STs, or under a burst
        // reservation — stays live so the shared-state vetoes the chorus
        // relies on are always carried by an active station.
        if matches!(self.mode, Mode::Online)
            && self.queue.is_empty()
            && self.burst_reserved_for.is_none()
            && matches!(self.phase, Phase::Tts(_) | Phase::Attempt)
        {
            WakeHint::Dormant
        } else {
            WakeHint::Active
        }
    }

    fn hold_hint(&self, _now: Ticks) -> HoldHint {
        if !matches!(self.mode, Mode::Online) {
            // A resynchronizing replica is receive-only but may rejoin on
            // any frame it hears; keep it on the reference path.
            return HoldHint::Contend;
        }
        match self.burst_reserved_for {
            Some(holder) if holder == self.source => {
                // The burst chain is fully determined by the queue prefix
                // that fits the remaining budget: `poll` transmits while
                // the head fits, and each continuation's `burst_more` flag
                // re-arms the reservation exactly while a successor fits.
                let mut remaining = self.burst_budget;
                let mut frames = 0u64;
                for msg in self.queue.iter() {
                    if msg.bits > remaining {
                        break;
                    }
                    remaining -= msg.bits;
                    frames += 1;
                }
                if frames == 0 {
                    HoldHint::Contend
                } else {
                    HoldHint::Hold(frames)
                }
            }
            // Another source holds the channel: this replica polls Idle
            // until the reservation lapses.
            Some(_) => HoldHint::Quiet(u64::MAX),
            None => HoldHint::Contend,
        }
    }

    fn skip_busy(&mut self, from: Ticks, frames: &[Frame], _slot: Ticks) {
        // While a foreign burst holds the channel, `observe_burst_slot`
        // short-circuits the whole automaton: a foreign success only
        // rewrites the reservation (`note_delivery` touches neither the
        // queue nor the counters for frames we did not send), so the last
        // frame's `burst_more` flag alone decides the post-run state.
        if matches!(self.mode, Mode::Online) && self.burst_reserved_for.is_some() {
            if let Some(last) = frames.last() {
                self.burst_reserved_for = last.burst_more.then_some(last.message.source);
            }
            return;
        }
        // Resynchronizing (or any unforeseen) state: exact per-frame replay.
        let mut at = from;
        for frame in frames {
            let next_free = at + frame.duration();
            self.observe(at, next_free, &Observation::Busy(*frame));
            at = next_free;
        }
    }

    fn search_hint(&self, _now: Ticks) -> SearchHint {
        if !matches!(self.mode, Mode::Online) {
            // Receive-only / fenced replicas stay on the stepped path: they
            // never veto a run and may rejoin exactly mid-run.
            return SearchHint::Contend;
        }
        if self.queue.is_empty() && self.burst_reserved_for != Some(self.source) {
            // Nothing to send and no channel hold: every `poll` in every
            // phase returns `Idle` on an empty queue, and no own-source
            // frame can appear on the wire to re-arm a reservation while
            // this replica stays silent — the Quiet promise holds for the
            // whole run (arrivals terminate it before the queue can grow).
            SearchHint::Quiet
        } else {
            SearchHint::Engage
        }
    }

    fn search_checkpoint(&self) -> Option<Box<dyn std::any::Any>> {
        if !matches!(self.mode, Mode::Online) {
            return None;
        }
        Some(Box::new(SearchCheckpoint {
            stamp: self.epoch_stamp(),
            counters: self.counters,
        }))
    }

    fn resync_checkpoint(&self) -> Option<(Ticks, Box<dyn std::any::Any + Send>)> {
        // Same payload as the contention checkpoint: epoch coordinates plus
        // the full counter block. Only a synced replica can vouch for the
        // shared automaton.
        if !matches!(self.mode, Mode::Online) {
            return None;
        }
        let stamp = self.epoch_stamp();
        Some((
            stamp.start,
            Box::new(SearchCheckpoint {
                stamp,
                counters: self.counters,
            }),
        ))
    }

    fn resync_rebase(&mut self, checkpoint: &dyn std::any::Any) -> bool {
        // The parked envelope guarantees this replica is Online, silent,
        // and empty-queued over the whole dormant span, so the epoch
        // rebuild that backs crash-restart resynchronization applies
        // verbatim: the shared state at the boundary is a pure function of
        // the stamp, and the tail replay the engine runs next reproduces
        // everything since.
        let Some(cp) = checkpoint.downcast_ref::<SearchCheckpoint>() else {
            return false;
        };
        if !matches!(self.mode, Mode::Online) {
            return false;
        }
        self.reinitialize_at_epoch(cp.stamp);
        true
    }

    fn resync_adopt(&mut self, checkpoint: &dyn std::any::Any) {
        if let Some(cp) = checkpoint.downcast_ref::<SearchCheckpoint>() {
            self.counters.adopt_shared(&cp.counters);
        }
    }

    fn skip_search(
        &mut self,
        from: Ticks,
        records: &[SearchSlotRecord],
        checkpoint: Option<&dyn std::any::Any>,
        _slot: Ticks,
    ) {
        if matches!(self.mode, Mode::Online) {
            if let Some(cp) =
                checkpoint.and_then(|c| c.downcast_ref::<SearchCheckpoint>())
            {
                if cp.stamp.start >= from {
                    // Epoch-anchored shortcut: within one epoch the shared
                    // state is a pure function of the epoch coordinates and
                    // the observations since its start (the resynchronization
                    // soundness argument, see `observe_resync`), so rebuild
                    // at the boundary and replay only the final epoch's tail.
                    // The shared counters span the whole run, including the
                    // epochs skipped over, so adopt them from the engaged
                    // replica; the private ones are untouched — this replica
                    // was provably silent.
                    self.reinitialize_at_epoch(cp.stamp);
                    for record in records {
                        if record.at >= cp.stamp.start {
                            self.observe_online(
                                record.at,
                                record.next_free,
                                &record.observation,
                            );
                        }
                    }
                    self.counters.adopt_shared(&cp.counters);
                    return;
                }
            }
            // Short run: the final epoch began before the run did, so the
            // records cannot anchor a rebuild — exact per-record replay.
            for record in records {
                self.observe_online(record.at, record.next_free, &record.observation);
            }
            // The reference stepper polls a quiet replica every slot, and an
            // empty-queue poll clears the frozen time index; mirror that so
            // the post-run state is bitwise identical.
            self.time_index = None;
            self.time_index_for = None;
        } else {
            // Defensive (the engine steps non-Online replicas): buffer or
            // drop through the regular observe path.
            for record in records {
                self.observe(record.at, record.next_free, &record.observation);
            }
        }
    }

    fn attempt_cycle_hint(&self, now: Ticks, slot: Ticks) -> Option<AttemptCycleHint> {
        // Only a synced replica can promise anything about the shared
        // automaton — a resynchronizing one must buffer every slot, so its
        // `None` refuses the whole run.
        if !matches!(self.mode, Mode::Online) {
            return None;
        }
        let m = self.config.time_tree.branching();
        let veto = Some(AttemptCycleHint {
            probes: m,
            cycles: 0,
            contender: None,
        });
        // The loaded idle cycle only exists with compressed time off: with
        // θ > 0 an empty TTs rolls straight into the next one, no attempt
        // slot. A burst reservation pre-empts every phase.
        if self.config.theta_numerator != 0 || self.burst_reserved_for.is_some() {
            return veto;
        }
        // A cycle start is a fresh, unprobed TTs stamped at the current
        // slot; all synced replicas agree on it.
        let at_start = matches!(&self.phase, Phase::Tts(state)
            if !state.transmitted_any && state.search.is_unprobed());
        if !at_start || self.epoch_start != now {
            return veto;
        }
        let Some(head) = self.queue.head() else {
            // An empty queue polls `Idle` in every phase: a pure observer
            // for as long as the run lasts (the engine cuts the run before
            // any arrival could change that).
            return Some(AttemptCycleHint {
                probes: m,
                cycles: u64::MAX,
                contender: None,
            });
        };
        // The head sits a fresh TTs out exactly while `raw_f ≥ F` (the
        // frontier clamp can only raise the index, and the per-head cache
        // is cleared at every `start_tts`), then transmits at the attempt
        // slot. Each attempt collision re-reads physical time
        // (`reft := cycle end`), so cycle `j ≥ 1` of the run sees
        // `reft = now + j·span` and the sit-out margin shrinks by one
        // span per cycle; cycle 0 uses the current `reft`.
        let c = self.config.class_width.as_u64() as i128;
        let need = self.config.time_tree.leaves() as i128 * c;
        let dm = head.absolute_deadline().as_u64() as i128;
        let alpha = self.config.alpha.as_u64() as i128;
        if dm - alpha - self.reft.as_u64() as i128 - need < 0 {
            return veto;
        }
        let span = (m + 1) as i128 * slot.as_u64() as i128;
        let q = dm - alpha - now.as_u64() as i128 - need;
        let extra = if q < 0 { 0 } else { (q / span) as u64 };
        Some(AttemptCycleHint {
            probes: m,
            cycles: 1 + extra,
            contender: Some(self.source.0),
        })
    }

    fn skip_attempt_cycles(&mut self, from: Ticks, cycles: u64, probes: u64, slot: Ticks) {
        // Only reachable Online, at a cycle start, with θ = 0 (see
        // `attempt_cycle_hint`). Each cycle is `probes` empty probes, one
        // empty-TTs completion, one collided attempt (`reft := cycle
        // end`), then a fresh TTs: only the counters, `reft` and the epoch
        // coordinates move, and `start_tts` below rebuilds the final fresh
        // TTs exactly as the last collision's observation would have.
        self.counters.probe_empties += cycles * probes;
        self.counters.tts_empty_runs += cycles;
        self.counters.attempt_collisions += cycles;
        // The last cycle's fresh TTs is counted by `start_tts`.
        self.counters.tts_runs += cycles - 1;
        if !self.queue.is_empty() {
            // This replica transmitted at every attempt slot of the run:
            // the engine fences arrivals out, so the queue cannot have
            // changed since the hint was given.
            self.counters.attempts += cycles;
        }
        let end = from + slot * ((probes + 1) * cycles);
        self.reft = end;
        self.start_tts(end);
    }

    fn label(&self) -> String {
        format!("ddcr:{}", self.source)
    }

    fn phase_hint(&self) -> Option<PhaseHint> {
        // Only a synced replica can vouch for the shared automaton.
        if !matches!(self.mode, Mode::Online) {
            return None;
        }
        // A burst reservation pre-empts every phase, exactly as in `poll`.
        let phase = if self.burst_reserved_for.is_some() {
            ProtocolPhase::Burst
        } else {
            match &self.phase {
                Phase::Tts(_) => ProtocolPhase::TimeSearch,
                Phase::Sts { .. } => ProtocolPhase::StaticSearch,
                Phase::Attempt => ProtocolPhase::Attempt,
            }
        };
        Some(PhaseHint {
            phase,
            epoch_start: self.epoch_start,
        })
    }
}

impl DdcrStation {
    /// The online replica's slot-outcome handler (the protocol automaton
    /// proper). Also the replay engine for resynchronization: rejoining
    /// stations feed their buffered observations through this very code.
    fn observe_online(&mut self, _now: Ticks, next_free: Ticks, observation: &Observation) {
        if self.observe_burst_slot(observation) {
            return;
        }
        let (outcome, success_frame) = match observation {
            Observation::Silence => (SlotOutcome::Empty, None),
            Observation::Busy(frame) => (SlotOutcome::Success, Some(*frame)),
            Observation::Collision { survivor } => (SlotOutcome::Collision, *survivor),
            // An erased frame is indistinguishable from a collision to the
            // automaton: channel held, nothing decoded, transmitter retries
            // (loss detection is symmetric — see docs/PROTOCOL.md §4).
            Observation::Garbled => (SlotOutcome::Collision, None),
        };
        match std::mem::replace(&mut self.phase, Phase::Attempt) {
            Phase::Tts(mut state) => {
                match outcome {
                    SlotOutcome::Empty => self.counters.probe_empties += 1,
                    SlotOutcome::Collision => self.counters.probe_collisions += 1,
                    SlotOutcome::Success => {}
                }
                if let Some(frame) = success_frame {
                    // Rule: reft := physical time on every successful
                    // transmission during a time tree search.
                    self.reft = next_free;
                    state.transmitted_any = true;
                    self.note_delivery(&frame, true);
                }
                match state.search.feed(outcome) {
                    MtsEvent::Continue => self.phase = Phase::Tts(state),
                    MtsEvent::LeafCollision { leaf } => {
                        self.counters.sts_runs += 1;
                        self.sts_cursor = 0;
                        self.phase = Phase::Sts {
                            search: MtsSearch::new(self.config.static_tree),
                            collided_leaf: leaf,
                            saved: state,
                        };
                    }
                    MtsEvent::Done => {
                        if state.transmitted_any {
                            // out = true: one CSMA-CD attempt slot follows
                            // (pseudocode's `attempt transmit msg*`).
                            self.phase = Phase::Attempt;
                        } else {
                            // out = false: compressed-time bump, then loop
                            // straight into the next TTs (pseudocode).
                            self.counters.tts_empty_runs += 1;
                            self.reft += self.config.theta();
                            if self.config.theta_numerator == 0 {
                                // Compressed time off: without the bump, a
                                // message whose deadline class lies beyond
                                // the horizon would never enter any TTs —
                                // the attempt slot ("if a message is
                                // waiting in Q at the end of some execution
                                // of TTs, its transmission is attempted, à
                                // la CSMA-CD") is what re-synchronises
                                // `reft` and bounds the idleness.
                                self.phase = Phase::Attempt;
                            } else {
                                self.start_tts(next_free);
                            }
                        }
                    }
                }
            }
            Phase::Sts {
                mut search,
                collided_leaf,
                mut saved,
            } => {
                match outcome {
                    SlotOutcome::Empty => self.counters.probe_empties += 1,
                    SlotOutcome::Collision => self.counters.probe_collisions += 1,
                    SlotOutcome::Success => {}
                }
                if let Some(frame) = success_frame {
                    saved.transmitted_any = true;
                    if frame.message.source == self.source {
                        self.sts_cursor += 1;
                    }
                    self.note_delivery(&frame, true);
                }
                let event = search.feed(outcome);
                if let MtsEvent::LeafCollision { .. } = event {
                    // A conforming network cannot collide on a static leaf
                    // (the allocation gives each leaf one owner); this is
                    // interference — a babbling station or wire fault. The
                    // probe already consumed the leaf; the owner keeps its
                    // message and retries in the next search, so resolution
                    // stays live and replicas stay consistent.
                    self.counters.interference_collisions += 1;
                }
                let done = match event {
                    MtsEvent::Done => true,
                    MtsEvent::LeafCollision { .. } => search.is_done(),
                    MtsEvent::Continue => false,
                };
                if done {
                    // Rule: reft := physical time at STs completion.
                    self.reft = next_free;
                    if saved.search.is_done() {
                        // The suspended TTs had nothing left after the
                        // collided leaf.
                        self.phase = Phase::Attempt;
                    } else {
                        self.phase = Phase::Tts(saved);
                    }
                } else {
                    self.phase = Phase::Sts {
                        search,
                        collided_leaf,
                        saved,
                    };
                }
            }
            Phase::Attempt => {
                match observation {
                    Observation::Busy(frame) => {
                        self.note_delivery(frame, true);
                    }
                    Observation::Collision { survivor } => {
                        self.counters.attempt_collisions += 1;
                        if let Some(frame) = survivor {
                            self.note_delivery(frame, true);
                        }
                        // Rule: reft := physical time after an attempt
                        // collision.
                        self.reft = next_free;
                    }
                    Observation::Silence => {}
                    Observation::Garbled => {
                        // Erased attempt: same replica-visible outcome as
                        // an attempt collision.
                        self.counters.attempt_collisions += 1;
                        self.reft = next_free;
                    }
                }
                self.start_tts(next_free);
            }
        }
    }

    fn skip_silence_online(&mut self, from: Ticks, slots: u64, slot: Ticks) {
        // Only reachable with an empty queue and no burst reservation (see
        // `next_ready`). Under silence the idle automaton cycles: fresh
        // TTs, `m` empty probes, then — θ = 0 — one silent attempt slot,
        // or — θ > 0 — straight into the next TTs with `reft += θ`. Replay
        // slot by slot until a cycle start, apply whole cycles in O(1)
        // arithmetic, then replay the tail.
        fn at_cycle_start(s: &DdcrStation) -> bool {
            matches!(&s.phase, Phase::Tts(state)
                if !state.transmitted_any && state.search.is_unprobed())
        }
        let mut at = from;
        let mut remaining = slots;
        while remaining > 0 && !at_cycle_start(self) {
            self.observe(at, at + slot, &Observation::Silence);
            at += slot;
            remaining -= 1;
        }
        let m = self.config.time_tree.branching();
        let cycle = if self.config.theta_numerator == 0 { m + 1 } else { m };
        let cycles = remaining / cycle;
        if cycles > 0 {
            // Per cycle: m empty probes, one empty-TTs completion, one
            // fresh TTs start; the phase itself returns to the identical
            // cycle-start state, so only counters, `reft` and the epoch
            // coordinates move.
            self.counters.probe_empties += cycles * m;
            self.counters.tts_empty_runs += cycles;
            self.counters.tts_runs += cycles;
            self.reft += self.config.theta() * cycles;
            at += slot * (cycles * cycle);
            remaining -= cycles * cycle;
            // The last skipped cycle's fresh TTs began at `at` exactly as
            // `start_tts(next_free)` would have recorded; idle cycles carry
            // no burst reservation.
            self.epoch_start = at;
            self.epoch_reft = self.reft;
            self.epoch_burst = None;
        }
        for _ in 0..remaining {
            self.observe(at, at + slot, &Observation::Silence);
            at += slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, Engine, MediumConfig};

    fn config() -> DdcrConfig {
        DdcrConfig::for_sources(4, Ticks(100_000)).unwrap()
    }

    fn network(z: u32, cfg: DdcrConfig, medium: MediumConfig) -> Engine {
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, z).unwrap();
        let mut engine = Engine::new(medium).unwrap();
        for i in 0..z {
            engine.add_station(Box::new(
                DdcrStation::new(SourceId(i), cfg, allocation.clone(), medium.overhead_bits)
                    .unwrap(),
            ));
        }
        engine
    }

    fn msg(id: u64, source: u32, arrival: u64, deadline: u64) -> Message {
        Message {
            id: MessageId(id),
            source: SourceId(source),
            class: ClassId(0),
            bits: 8_000,
            arrival: Ticks(arrival),
            deadline: Ticks(deadline),
        }
    }

    #[test]
    fn single_message_goes_through() {
        let mut engine = network(4, config(), MediumConfig::ethernet());
        engine.add_arrivals([msg(0, 1, 0, 1_000_000)]).unwrap();
        engine.run_to_completion(Ticks(10_000_000)).unwrap();
        assert_eq!(engine.stats().deliveries.len(), 1);
        assert_eq!(engine.stats().deadline_misses(), 0);
    }

    #[test]
    fn two_colliding_messages_resolve_deterministically() {
        let mut engine = network(4, config(), MediumConfig::ethernet());
        // Same deadline class → time tree leaf collision → STs tie-break.
        engine
            .add_arrivals([msg(0, 0, 0, 500_000), msg(1, 3, 0, 500_000)])
            .unwrap();
        engine.run_to_completion(Ticks(10_000_000)).unwrap();
        let d = &engine.stats().deliveries;
        assert_eq!(d.len(), 2);
        // Static tie-break: source 0 owns leaf 0 < source 3's leaf 3.
        assert_eq!(d[0].message.source, SourceId(0));
        assert_eq!(d[1].message.source, SourceId(3));
        assert_eq!(engine.stats().deadline_misses(), 0);
    }

    #[test]
    fn earlier_deadline_transmits_first_across_classes() {
        let mut engine = network(4, config(), MediumConfig::ethernet());
        engine
            .add_arrivals([
                msg(0, 0, 0, 3_000_000), // later class
                msg(1, 1, 0, 400_000),   // much earlier class
            ])
            .unwrap();
        engine.run_to_completion(Ticks(20_000_000)).unwrap();
        let d = &engine.stats().deliveries;
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].message.id, MessageId(1), "EDF order violated");
    }

    #[test]
    fn heavy_same_class_burst_all_delivered() {
        let mut engine = network(4, config(), MediumConfig::ethernet());
        let arrivals: Vec<Message> = (0..12)
            .map(|i| msg(i, (i % 4) as u32, 0, 4_000_000))
            .collect();
        engine.add_arrivals(arrivals).unwrap();
        engine.run_to_completion(Ticks(50_000_000)).unwrap();
        assert_eq!(engine.stats().deliveries.len(), 12);
        assert_eq!(engine.stats().deadline_misses(), 0);
    }

    #[test]
    fn idle_protocol_consumes_bounded_overhead() {
        let cfg = config();
        let mut engine = network(2, cfg, MediumConfig::ethernet());
        engine.run_until(Ticks(512 * 100));
        // Idle cycle: m empty probes + 1 silent attempt slot; never a
        // collision, never a delivery.
        assert_eq!(engine.stats().collisions, 0);
        assert!(engine.stats().deliveries.is_empty());
        assert_eq!(engine.stats().silence_slots, 100);
    }

    #[test]
    fn late_message_enters_immediately() {
        // A message whose deadline is already very close (raw index would
        // be negative) must be clamped into the frontier, not dropped.
        let mut engine = network(4, config(), MediumConfig::ethernet());
        engine.add_arrivals([msg(0, 2, 700_000, 150_000)]).unwrap();
        engine.run_to_completion(Ticks(10_000_000)).unwrap();
        assert_eq!(engine.stats().deliveries.len(), 1);
    }

    #[test]
    fn far_deadline_message_sits_out_then_delivers() {
        // Deadline far beyond the scheduling horizon c·F = 6.4 ms.
        let mut engine = network(4, config(), MediumConfig::ethernet());
        engine.add_arrivals([msg(0, 1, 0, 60_000_000)]).unwrap();
        engine.run_to_completion(Ticks(200_000_000)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.deliveries.len(), 1);
        // Delivered via the attempt slot long before the deadline.
        assert!(stats.deliveries[0].completed_at < Ticks(60_000_000));
    }

    #[test]
    fn arbitrating_medium_still_delivers_everything() {
        let mut engine = network(4, config(), MediumConfig::atm_internal_bus());
        let arrivals: Vec<Message> =
            (0..8).map(|i| msg(i, (i % 4) as u32, 0, 4_000_000)).collect();
        engine.add_arrivals(arrivals).unwrap();
        engine.run_to_completion(Ticks(50_000_000)).unwrap();
        assert_eq!(engine.stats().deliveries.len(), 8);
        assert_eq!(engine.stats().deadline_misses(), 0);
    }

    #[test]
    fn bursting_transmits_back_to_back() {
        let cfg = config().with_bursting(crate::config::BurstConfig::default());
        let mut engine = network(4, cfg, MediumConfig::ethernet());
        // Three small messages at one source: the first transmission should
        // carry the rest as burst continuations (≤ 512 bytes total extra).
        let arrivals: Vec<Message> = (0..3)
            .map(|i| Message {
                bits: 1_000,
                ..msg(i, 1, 0, 2_000_000)
            })
            .collect();
        engine.add_arrivals(arrivals).unwrap();
        engine.run_to_completion(Ticks(20_000_000)).unwrap();
        assert_eq!(engine.stats().deliveries.len(), 3);
        // The three deliveries complete back to back: gaps between
        // consecutive completions equal exactly one frame duration.
        let d = engine.stats().deliveries.clone();
        let wire = 1_000 + MediumConfig::ethernet().overhead_bits;
        assert_eq!(d[1].completed_at - d[0].completed_at, Ticks(wire));
        assert_eq!(d[2].completed_at - d[1].completed_at, Ticks(wire));
    }

    /// Drives one station against a perfect channel and returns it after
    /// the queue drains.
    fn drive_solo(mut station: DdcrStation, arrivals: Vec<Message>) -> DdcrStation {
        for m in arrivals {
            station.deliver(m);
        }
        let mut now = Ticks::ZERO;
        for _ in 0..10_000 {
            if station.backlog() == 0 {
                break;
            }
            let action = station.poll(now);
            let (obs, advance) = match action {
                Action::Transmit(f) => (Observation::Busy(f), f.duration()),
                Action::Idle => (Observation::Silence, Ticks(512)),
            };
            let next_free = now + advance;
            station.observe(now, next_free, &obs);
            now = next_free;
        }
        assert_eq!(station.backlog(), 0, "queue failed to drain");
        station
    }

    #[test]
    fn burst_budget_limits_continuations() {
        let medium = MediumConfig::ethernet();
        let arrivals = |n: u64| -> Vec<Message> {
            (0..n)
                .map(|i| Message {
                    bits: 1_000,
                    ..msg(i, 0, 0, 2_000_000)
                })
                .collect()
        };
        let alloc = |cfg: &DdcrConfig| StaticAllocation::one_per_source(cfg.static_tree, 1).unwrap();

        // Budget 1500 bits: one 1000-bit continuation per acquisition.
        let cfg = DdcrConfig::for_sources(1, Ticks(100_000))
            .unwrap()
            .with_bursting(crate::config::BurstConfig { max_extra_bits: 1_500 });
        let station = drive_solo(
            DdcrStation::new(SourceId(0), cfg, alloc(&cfg), medium.overhead_bits).unwrap(),
            arrivals(4),
        );
        assert_eq!(station.counters().transmitted, 4);
        assert_eq!(station.counters().burst_continuations, 2); // (0→1), (2→3)

        // Default 4096-bit budget: three continuations after one acquisition.
        let cfg = DdcrConfig::for_sources(1, Ticks(100_000))
            .unwrap()
            .with_bursting(crate::config::BurstConfig::default());
        let station = drive_solo(
            DdcrStation::new(SourceId(0), cfg, alloc(&cfg), medium.overhead_bits).unwrap(),
            arrivals(4),
        );
        assert_eq!(station.counters().burst_continuations, 3);

        // Bursting disabled: none.
        let cfg = DdcrConfig::for_sources(1, Ticks(100_000)).unwrap();
        let station = drive_solo(
            DdcrStation::new(SourceId(0), cfg, alloc(&cfg), medium.overhead_bits).unwrap(),
            arrivals(4),
        );
        assert_eq!(station.counters().burst_continuations, 0);
    }

    #[test]
    fn replicas_agree_on_shared_state() {
        let cfg = config();
        let medium = MediumConfig::ethernet();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 3).unwrap();
        let mut stations: Vec<DdcrStation> = (0..3)
            .map(|i| {
                DdcrStation::new(SourceId(i), cfg, allocation.clone(), medium.overhead_bits)
                    .unwrap()
            })
            .collect();
        stations[0].deliver(msg(0, 0, 0, 500_000));
        stations[1].deliver(msg(1, 1, 0, 500_000));
        stations[2].deliver(msg(2, 2, 0, 900_000));
        // Drive the three replicas by hand against a perfect channel.
        let mut now = Ticks::ZERO;
        for _ in 0..400 {
            let actions: Vec<Action> = stations.iter_mut().map(|s| s.poll(now)).collect();
            let frames: Vec<Frame> = actions
                .iter()
                .filter_map(|a| match a {
                    Action::Transmit(f) => Some(*f),
                    Action::Idle => None,
                })
                .collect();
            let (obs, advance) = match frames.len() {
                0 => (Observation::Silence, Ticks(512)),
                1 => (Observation::Busy(frames[0]), frames[0].duration()),
                _ => (Observation::Collision { survivor: None }, Ticks(512)),
            };
            let next_free = now + advance;
            for s in &mut stations {
                s.observe(now, next_free, &obs);
            }
            let digests: Vec<String> =
                stations.iter().map(|s| s.shared_state_digest()).collect();
            assert_eq!(digests[0], digests[1], "replica divergence at {now}");
            assert_eq!(digests[1], digests[2], "replica divergence at {now}");
            now = next_free;
        }
        assert!(stations.iter().all(|s| s.backlog() == 0));
    }

    /// Replays `slots` silence observations one by one (the reference
    /// semantics `skip_silence` must match).
    fn replay_silence(station: &mut DdcrStation, from: Ticks, slots: u64, slot: Ticks) {
        for i in 0..slots {
            let at = from + slot * i;
            station.observe(at, at + slot, &Observation::Silence);
        }
    }

    fn full_digest(s: &DdcrStation) -> (String, ProtocolCounters, Ticks) {
        (s.shared_state_digest(), s.counters(), s.reft())
    }

    #[test]
    fn skip_silence_matches_replay_exactly() {
        let slot = Ticks(512);
        for theta in [0u64, 2] {
            let cfg = DdcrConfig::for_sources(4, Ticks(100_000))
                .unwrap()
                .with_compressed_time(theta);
            let allocation = StaticAllocation::one_per_source(cfg.static_tree, 4).unwrap();
            let fresh =
                || DdcrStation::new(SourceId(0), cfg, allocation.clone(), 208).unwrap();
            // Every (prefix, skipped) alignment across several idle cycles:
            // the station starts mid-cycle after `prefix` replayed slots,
            // then bulk-skips `skipped` more.
            for prefix in 0..8u64 {
                for skipped in 0..40u64 {
                    let mut reference = fresh();
                    let mut skipping = fresh();
                    replay_silence(&mut reference, Ticks::ZERO, prefix, slot);
                    replay_silence(&mut skipping, Ticks::ZERO, prefix, slot);
                    let from = Ticks(slot.as_u64() * prefix);
                    replay_silence(&mut reference, from, skipped, slot);
                    skipping.skip_silence(from, skipped, slot);
                    assert_eq!(
                        full_digest(&reference),
                        full_digest(&skipping),
                        "theta={theta} prefix={prefix} skipped={skipped}"
                    );
                }
            }
        }
    }

    /// Drives one loaded idle cycle slot by slot: `m` sat-out probes, then
    /// a destructively collided attempt slot.
    fn replay_loaded_cycle(
        station: &mut DdcrStation,
        from: Ticks,
        slot: Ticks,
        engaged: bool,
    ) -> Ticks {
        let mut now = from;
        for _ in 0..station.config.time_tree.branching() {
            assert!(matches!(station.poll(now), Action::Idle));
            station.observe(now, now + slot, &Observation::Silence);
            now += slot;
        }
        let transmitted = matches!(station.poll(now), Action::Transmit(_));
        assert_eq!(transmitted, engaged, "attempt-slot action at {now}");
        station.observe(now, now + slot, &Observation::Collision { survivor: None });
        now + slot
    }

    #[test]
    fn attempt_cycle_hint_counts_sit_out_cycles() {
        let cfg = config();
        let slot = Ticks(512);
        let m = cfg.time_tree.branching();
        let span = (m + 1) * slot.as_u64();
        let leaves = cfg.time_tree.leaves();
        let c = cfg.class_width.as_u64();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 4).unwrap();
        let mut station = DdcrStation::new(SourceId(0), cfg, allocation, 208).unwrap();
        // The head sits a TTs out while `dm − α − reft ≥ F·c`; with
        // 2.5 spans of slack beyond that threshold the formula promises
        // exactly 3 cycles (cycle 0 at `reft = 0`, cycles 1–2 at
        // `reft = span, 2·span`).
        let dm = cfg.alpha.as_u64() + leaves * c + 2 * span + span / 2;
        station.deliver(msg(0, 0, 0, dm));
        let hint = station.attempt_cycle_hint(Ticks::ZERO, slot).unwrap();
        assert_eq!(hint.probes, m);
        assert_eq!(hint.cycles, 3);
        assert_eq!(hint.contender, Some(0));
        // Tight: replaying exactly those cycles consumes the whole promise…
        let mut now = Ticks::ZERO;
        for _ in 0..3 {
            now = replay_loaded_cycle(&mut station, now, slot, true);
        }
        assert_eq!(station.attempt_cycle_hint(now, slot).unwrap().cycles, 0);
        // …because the head has genuinely entered the tree horizon.
        let head = *station.queue.head().unwrap();
        assert!(station.raw_f(&head) >= 0);
        assert!((station.raw_f(&head) as u64) < leaves);
    }

    #[test]
    fn attempt_cycle_hint_vetoes_and_observers() {
        let slot = Ticks(512);
        let allocation = StaticAllocation::one_per_source(config().static_tree, 4).unwrap();
        // Empty queue: an unbounded pure observer.
        let station = DdcrStation::new(SourceId(1), config(), allocation.clone(), 208).unwrap();
        let hint = station.attempt_cycle_hint(Ticks::ZERO, slot).unwrap();
        assert_eq!(hint.cycles, u64::MAX);
        assert_eq!(hint.contender, None);
        // Compressed time on: an empty TTs has no attempt slot, so the
        // loaded idle cycle does not exist.
        let theta_cfg = config().with_compressed_time(2);
        let theta_alloc =
            StaticAllocation::one_per_source(theta_cfg.static_tree, 4).unwrap();
        let station = DdcrStation::new(SourceId(0), theta_cfg, theta_alloc, 208).unwrap();
        assert_eq!(station.attempt_cycle_hint(Ticks::ZERO, slot).unwrap().cycles, 0);
        // Mid-cycle (one probe already observed): not a cycle start.
        let mut station =
            DdcrStation::new(SourceId(0), config(), allocation.clone(), 208).unwrap();
        station.observe(Ticks::ZERO, slot, &Observation::Silence);
        assert_eq!(station.attempt_cycle_hint(slot, slot).unwrap().cycles, 0);
        // Resynchronizing: no promise at all — refuses the whole run.
        let mut station = DdcrStation::new(SourceId(0), config(), allocation, 208).unwrap();
        station.restart(Ticks::ZERO);
        assert!(station.attempt_cycle_hint(Ticks::ZERO, slot).is_none());
    }

    #[test]
    fn skip_attempt_cycles_matches_replay_exactly() {
        let slot = Ticks(512);
        let cfg = config();
        let m = cfg.time_tree.branching();
        let span = (m + 1) * slot.as_u64();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 4).unwrap();
        // Slack for far more cycles than any replay below consumes.
        let dm =
            cfg.alpha.as_u64() + cfg.time_tree.leaves() * cfg.class_width.as_u64() + 40 * span;
        for cycles in 1..=6u64 {
            for engaged in [true, false] {
                let fresh = || {
                    let mut s =
                        DdcrStation::new(SourceId(0), cfg, allocation.clone(), 208).unwrap();
                    if engaged {
                        s.deliver(msg(0, 0, 0, dm));
                    }
                    s
                };
                let mut reference = fresh();
                let mut skipping = fresh();
                let mut now = Ticks::ZERO;
                for _ in 0..cycles {
                    now = replay_loaded_cycle(&mut reference, now, slot, engaged);
                }
                skipping.skip_attempt_cycles(Ticks::ZERO, cycles, m, slot);
                assert_eq!(
                    full_digest(&reference),
                    full_digest(&skipping),
                    "cycles={cycles} engaged={engaged}"
                );
                assert_eq!(
                    reference.counters().attempts,
                    if engaged { cycles } else { 0 }
                );
            }
        }
    }

    #[test]
    fn skip_busy_matches_replay_for_quiet_replica() {
        let cfg = config().with_bursting(crate::config::BurstConfig::default());
        let medium = MediumConfig::ethernet();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 2).unwrap();
        let mk = |i| {
            DdcrStation::new(SourceId(i), cfg, allocation.clone(), medium.overhead_bits)
                .unwrap()
        };
        let mut holder = mk(0);
        let mut replay = mk(1);
        let mut skipping = mk(1);
        for i in 0..3 {
            holder.deliver(Message {
                bits: 1_000,
                ..msg(i, 0, 0, 2_000_000)
            });
        }
        // Drive all replicas until the acquisition frame arms the burst
        // reservation network-wide.
        let mut now = Ticks::ZERO;
        loop {
            let action = holder.poll(now);
            let (obs, advance) = match action {
                Action::Transmit(f) => (Observation::Busy(f), f.duration()),
                Action::Idle => (Observation::Silence, Ticks(512)),
            };
            let next_free = now + advance;
            holder.observe(now, next_free, &obs);
            replay.observe(now, next_free, &obs);
            skipping.observe(now, next_free, &obs);
            now = next_free;
            if matches!(obs, Observation::Busy(_)) {
                break;
            }
        }
        assert_eq!(holder.hold_hint(now), HoldHint::Hold(2));
        assert_eq!(replay.hold_hint(now), HoldHint::Quiet(u64::MAX));
        // The holder streams its two continuations; one quiet replica
        // observes them frame by frame, the other absorbs them in one
        // skip_busy call — the digests must agree.
        let from = now;
        let mut frames = Vec::new();
        for _ in 0..2 {
            let Action::Transmit(f) = holder.poll(now) else {
                panic!("holder broke its hold commitment");
            };
            let next_free = now + f.duration();
            holder.observe(now, next_free, &Observation::Busy(f));
            replay.observe(now, next_free, &Observation::Busy(f));
            frames.push(f);
            now = next_free;
        }
        skipping.skip_busy(from, &frames, Ticks(512));
        assert_eq!(full_digest(&replay), full_digest(&skipping));
        assert_eq!(replay.shared_state_digest(), holder.shared_state_digest());
        assert_eq!(holder.counters().burst_continuations, 2);
        assert_eq!(holder.hold_hint(now), HoldHint::Contend);
    }

    #[test]
    fn fast_forward_tiers_match_reference_for_bursting_network() {
        let run = |fast: bool, busy: bool, contention: bool| {
            let cfg = config().with_bursting(crate::config::BurstConfig::default());
            let mut engine = network(4, cfg, MediumConfig::ethernet());
            engine.set_fast_forward(fast);
            engine.set_busy_fast_forward(busy);
            engine.set_contention_fast_forward(contention);
            // Clustered small messages so acquisitions chain into bursts.
            let arrivals: Vec<Message> = (0..16)
                .map(|i| Message {
                    bits: 1_000,
                    ..msg(i, (i % 4) as u32, (i / 4) * 50_000, 8_000_000)
                })
                .collect();
            engine.add_arrivals(arrivals).unwrap();
            engine.run_to_completion(Ticks(50_000_000)).unwrap();
            engine.into_stats()
        };
        let reference = run(false, false, false);
        assert_eq!(reference.deliveries.len(), 16);
        for fast in [false, true] {
            for busy in [false, true] {
                for contention in [false, true] {
                    if !fast && !busy && !contention {
                        continue;
                    }
                    assert_eq!(
                        run(fast, busy, contention),
                        reference,
                        "fast={fast} busy={busy} contention={contention}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_search_matches_replay_exactly() {
        let cfg = config();
        let medium = MediumConfig::ethernet();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 3).unwrap();
        let mk = |i| {
            DdcrStation::new(SourceId(i), cfg, allocation.clone(), medium.overhead_bits)
                .unwrap()
        };
        // Stations 0 and 1 contend (same-class collision forces TTs → STs →
        // resolution, crossing several epoch boundaries); station 2 stays
        // quiet throughout.
        let mut engaged = [mk(0), mk(1)];
        engaged[0].deliver(msg(0, 0, 0, 500_000));
        engaged[0].deliver(msg(1, 0, 0, 900_000));
        engaged[1].deliver(msg(2, 1, 0, 500_000));
        let mut quiet = mk(2);
        assert_eq!(quiet.search_hint(Ticks::ZERO), SearchHint::Quiet);
        assert_eq!(engaged[0].search_hint(Ticks::ZERO), SearchHint::Engage);

        // Drive the contention to completion slot by slot, recording every
        // slot, the quiet replica's state after it, and the checkpoint an
        // engaged replica would hand the engine at that point.
        let mut records = Vec::new();
        let mut snapshots = vec![quiet.clone()];
        let mut checkpoints = Vec::new();
        let mut now = Ticks::ZERO;
        let mut slots_after_drain = 0;
        while slots_after_drain < 4 && records.len() < 200 {
            if engaged.iter().all(|s| s.backlog() == 0) {
                slots_after_drain += 1;
            }
            let frames: Vec<Frame> = engaged
                .iter_mut()
                .filter_map(|s| match s.poll(now) {
                    Action::Transmit(f) => Some(f),
                    Action::Idle => None,
                })
                .collect();
            let (obs, advance) = match frames.len() {
                0 => (Observation::Silence, Ticks(512)),
                1 => (Observation::Busy(frames[0]), frames[0].duration()),
                _ => (Observation::Collision { survivor: None }, Ticks(512)),
            };
            let next_free = now + advance;
            for s in &mut engaged {
                s.observe(now, next_free, &obs);
            }
            quiet.observe(now, next_free, &obs);
            records.push(SearchSlotRecord {
                at: now,
                next_free,
                observation: obs,
            });
            snapshots.push(quiet.clone());
            checkpoints.push(engaged[0].search_checkpoint());
            now = next_free;
        }
        assert!(engaged.iter().all(|s| s.backlog() == 0), "drain stalled");
        assert!(records.len() >= 8, "contention resolved suspiciously fast");

        // Every (start, end) window is a possible fast-forward run: a quiet
        // replica at state `start` must land on the reference state at `end`
        // from one skip_search call. Short windows exercise the full-replay
        // fallback (the checkpoint's epoch began before the run); long ones
        // exercise the epoch-anchored rebuild.
        for start in 0..records.len() {
            for end in start..records.len() {
                let mut skipping = snapshots[start].clone();
                skipping.skip_search(
                    records[start].at,
                    &records[start..=end],
                    checkpoints[end].as_deref(),
                    Ticks(512),
                );
                assert_eq!(
                    full_digest(&skipping),
                    full_digest(&snapshots[end + 1]),
                    "window {start}..={end}"
                );
            }
        }
    }

    #[test]
    fn resyncing_station_reports_contend_hint() {
        let mut station = DdcrStation::new(
            SourceId(0),
            config(),
            StaticAllocation::one_per_source(config().static_tree, 4).unwrap(),
            208,
        )
        .unwrap();
        station.crash(Ticks::ZERO);
        assert_eq!(station.search_hint(Ticks::ZERO), SearchHint::Contend);
        assert!(station.search_checkpoint().is_none());
        station.restart(Ticks(512));
        assert_eq!(station.search_hint(Ticks(512)), SearchHint::Contend);
        assert!(station.search_checkpoint().is_none());
    }

    #[test]
    fn idle_station_reports_no_wakeup() {
        let station =
            DdcrStation::new(SourceId(0), config(),
                StaticAllocation::one_per_source(config().static_tree, 4).unwrap(), 208)
                .unwrap();
        assert_eq!(station.next_ready(Ticks(0)), None);
    }

    #[test]
    fn loaded_station_reports_ready_now() {
        let mut station =
            DdcrStation::new(SourceId(0), config(),
                StaticAllocation::one_per_source(config().static_tree, 4).unwrap(), 208)
                .unwrap();
        station.deliver(msg(0, 0, 0, 500_000));
        assert_eq!(station.next_ready(Ticks(0)), Some(Ticks(0)));
    }

    #[test]
    fn idle_network_fast_forward_matches_reference() {
        let run = |fast: bool, theta: u64| {
            let cfg = DdcrConfig::for_sources(4, Ticks(100_000))
                .unwrap()
                .with_compressed_time(theta);
            let mut engine = network(4, cfg, MediumConfig::ethernet());
            engine.set_fast_forward(fast);
            // Long idle stretch, then traffic that depends on the idle-era
            // protocol state (reft under compressed time), then more idle.
            engine
                .add_arrivals([
                    msg(0, 1, 3_000_000, 500_000),
                    msg(1, 2, 3_000_000, 500_000),
                ])
                .unwrap();
            engine.run_until(Ticks(6_000_000));
            engine.into_stats()
        };
        for theta in [0u64, 2] {
            assert_eq!(run(true, theta), run(false, theta), "theta={theta}");
        }
    }

    /// Resolves one hand-driven slot for a set of replicas, skipping the
    /// stations marked down, and returns `(observation, next_free)`.
    fn drive_slot(
        stations: &mut [DdcrStation],
        down: &[bool],
        now: Ticks,
    ) -> (Observation, Ticks) {
        let frames: Vec<Frame> = stations
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| !down[*i])
            .filter_map(|(_, s)| match s.poll(now) {
                Action::Transmit(f) => Some(f),
                Action::Idle => None,
            })
            .collect();
        let (obs, advance) = match frames.len() {
            0 => (Observation::Silence, Ticks(512)),
            1 => (Observation::Busy(frames[0]), frames[0].duration()),
            _ => (Observation::Collision { survivor: None }, Ticks(512)),
        };
        let next_free = now + advance;
        for (i, s) in stations.iter_mut().enumerate() {
            if !down[i] {
                s.observe(now, next_free, &obs);
            }
        }
        (obs, next_free)
    }

    #[test]
    fn restarted_station_rejoins_at_epoch_boundary_with_identical_digest() {
        let cfg = config();
        let medium = MediumConfig::ethernet();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 3).unwrap();
        let mut stations: Vec<DdcrStation> = (0..3)
            .map(|i| {
                DdcrStation::new(SourceId(i), cfg, allocation.clone(), medium.overhead_bits)
                    .unwrap()
            })
            .collect();
        let mut down = [false; 3];
        let mut now = Ticks::ZERO;

        // Warm up with some traffic so the run is not at its initial state.
        stations[0].deliver(msg(0, 0, 0, 500_000));
        stations[1].deliver(msg(1, 1, 0, 700_000));
        for _ in 0..40 {
            now = drive_slot(&mut stations, &down, now).1;
        }
        assert!(stations.iter().all(|s| s.backlog() == 0));

        // Crash replica 2 mid-epoch; its queued message is lost.
        stations[2].deliver(msg(2, 2, 0, 900_000));
        let lost = stations[2].crash(now);
        assert_eq!(lost.len(), 1);
        assert_eq!(stations[2].shared_state_digest(), "crashed");
        down[2] = true;

        // The survivors keep working while replica 2 is down.
        stations[0].deliver(msg(3, 0, 0, 900_000));
        for _ in 0..20 {
            now = drive_slot(&mut stations, &down, now).1;
        }

        // Restart: receive-only until an epoch boundary is observed.
        stations[2].restart(now);
        down[2] = false;
        assert!(!stations[2].is_synced());

        // Idle slots alone carry no epoch stamp — still resyncing.
        for _ in 0..10 {
            now = drive_slot(&mut stations, &down, now).1;
        }
        assert!(!stations[2].is_synced());

        // Traffic from a survivor: the first frame of a fresh (post-restart)
        // epoch anchors the rejoin.
        stations[0].deliver(msg(4, 0, 0, 900_000));
        let mut synced_after = None;
        for i in 0..60 {
            now = drive_slot(&mut stations, &down, now).1;
            if stations[2].is_synced() {
                synced_after = Some(i);
                break;
            }
        }
        let healed = synced_after.expect("replica 2 never resynchronized");
        assert!(healed < 60, "heal took too long: {healed} slots");
        assert_eq!(stations[2].counters().rejoins, 1);
        assert_eq!(stations[2].counters().crashes, 1);

        // From rejoin onward all three digests agree, slot after slot.
        for _ in 0..100 {
            now = drive_slot(&mut stations, &down, now).1;
            let digests: Vec<String> =
                stations.iter().map(|s| s.shared_state_digest()).collect();
            assert_eq!(digests[0], digests[1], "divergence at {now}");
            assert_eq!(digests[1], digests[2], "rejoined replica diverged at {now}");
        }

        // And the rejoined replica is a full participant again: its own
        // traffic goes through.
        stations[2].deliver(msg(5, 2, 0, 2_000_000));
        let before = stations[2].counters().transmitted;
        for _ in 0..200 {
            now = drive_slot(&mut stations, &down, now).1;
            if stations[2].counters().transmitted > before {
                break;
            }
        }
        assert_eq!(stations[2].counters().transmitted, before + 1);
        assert_eq!(stations[2].backlog(), 0);
    }

    #[test]
    fn rejects_source_outside_allocation() {
        let cfg = config();
        let allocation = StaticAllocation::one_per_source(cfg.static_tree, 2).unwrap();
        assert!(DdcrStation::new(SourceId(5), cfg, allocation, 208).is_err());
    }
}
