//! The m-ary tree search automaton `m-ts` (§3.2, "Principles of m-ary tree
//! search").
//!
//! `m-ts` is the deterministic depth-first search both TTs and STs run.
//! Every station keeps a **replica** of this automaton and advances it with
//! the channel feedback of each slot — silence, one successful
//! transmission, or a collision. Because every station hears the same
//! feedback, every replica walks the same intervals in lockstep; a
//! station's only private decision is whether its own index lies in the
//! interval currently probed.
//!
//! The search maintains a stack of leaf intervals to examine:
//!
//! * **empty** or **success** ⇒ the probed interval is done, move on;
//! * **collision** on an interval wider than one leaf ⇒ split it into its
//!   `m` children, leftmost first;
//! * **collision on a single leaf** ⇒ more than one message shares the
//!   index; the caller must run a tie-break (a static tree search, for the
//!   time tree) before resuming.

use ddcr_tree::TreeShape;

/// Channel feedback for one probe, as seen by the search automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// Nobody transmitted in the probed interval.
    Empty,
    /// Exactly one station transmitted (or an arbitrated collision's
    /// survivor went through): the interval is resolved.
    Success,
    /// Two or more stations transmitted and no frame survived.
    Collision,
}

/// What the automaton reports after consuming one probe's feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtsEvent {
    /// The search continues with a new current interval.
    Continue,
    /// A collision happened on a single leaf — the caller must tie-break
    /// (TTs invokes STs here) and then resume.
    LeafCollision {
        /// The collided leaf.
        leaf: u64,
    },
    /// The search is complete: every leaf interval has been resolved.
    Done,
}

/// A half-open interval of leaves `[lo, lo + width)` under probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First leaf.
    pub lo: u64,
    /// Number of leaves.
    pub width: u64,
}

impl Interval {
    /// Whether a leaf index falls inside this interval.
    pub fn contains(&self, leaf: u64) -> bool {
        (self.lo..self.lo + self.width).contains(&leaf)
    }
}

/// A replica of the deterministic m-ary tree search.
///
/// Created with the root "already searched" (§3.2: the collision that
/// triggered the resolution *is* the root probe), i.e. the stack initially
/// holds the root's `m` children, leftmost on top. For a single-level tree
/// the children are the leaves themselves.
///
/// # Examples
///
/// ```
/// use ddcr_core::mts::{MtsEvent, MtsSearch, SlotOutcome};
/// use ddcr_tree::TreeShape;
///
/// # fn main() -> Result<(), ddcr_tree::TreeError> {
/// let mut search = MtsSearch::new(TreeShape::new(2, 2)?); // 4 leaves
/// assert_eq!(search.current().unwrap().lo, 0);
/// // Left half empty, right half resolves with one success then empty:
/// assert_eq!(search.feed(SlotOutcome::Empty), MtsEvent::Continue);
/// assert_eq!(search.feed(SlotOutcome::Success), MtsEvent::Done);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtsSearch {
    shape: TreeShape,
    /// Intervals still to probe; the top of the stack (last element) is
    /// current.
    stack: Vec<Interval>,
    /// Highest leaf index known fully searched (−1 encoded as `None`).
    highest_searched: Option<u64>,
    /// Collision slots consumed so far (for ξ cross-checks).
    collision_slots: u64,
    /// Empty slots consumed so far.
    empty_slots: u64,
}

impl MtsSearch {
    /// Starts a search over the given tree, root already searched.
    pub fn new(shape: TreeShape) -> Self {
        let m = shape.branching();
        let child = shape.leaves() / m;
        let mut stack = Vec::with_capacity(m as usize);
        for i in (0..m).rev() {
            stack.push(Interval {
                lo: i * child,
                width: child,
            });
        }
        MtsSearch {
            shape,
            stack,
            highest_searched: None,
            collision_slots: 0,
            empty_slots: 0,
        }
    }

    /// The tree shape being searched.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The interval probed in the current slot, or `None` if the search is
    /// done.
    pub fn current(&self) -> Option<Interval> {
        self.stack.last().copied()
    }

    /// Whether every interval has been resolved.
    pub fn is_done(&self) -> bool {
        self.stack.is_empty()
    }

    /// Whether the search is still in its initial state, no probe fed yet.
    /// Every `feed` either marks an interval searched (empty / success /
    /// leaf collision) or counts a collision slot (split), so these two
    /// fields pin the fresh state exactly.
    pub fn is_unprobed(&self) -> bool {
        self.highest_searched.is_none() && self.collision_slots == 0
    }

    /// `f*`: the highest leaf index fully searched so far, or `None` when
    /// no leaf has been passed yet (the paper's `f* = −1`).
    pub fn highest_searched(&self) -> Option<u64> {
        self.highest_searched
    }

    /// The next leaf the search will cover, `f* + 1` (0 before any pop).
    /// Always equals the low edge of the current interval while the search
    /// runs.
    pub fn frontier(&self) -> u64 {
        self.highest_searched.map_or(0, |h| h + 1)
    }

    /// Collision slots consumed so far.
    pub fn collision_slots(&self) -> u64 {
        self.collision_slots
    }

    /// Empty slots consumed so far.
    pub fn empty_slots(&self) -> u64 {
        self.empty_slots
    }

    /// Total search slots so far (the quantity `ξ` bounds).
    pub fn search_slots(&self) -> u64 {
        self.collision_slots + self.empty_slots
    }

    /// Consumes one probe's feedback and advances the replica.
    ///
    /// # Panics
    ///
    /// Panics if called after the search is done — replicas must stop
    /// feeding a finished search (protocol bug, not a runtime condition).
    pub fn feed(&mut self, outcome: SlotOutcome) -> MtsEvent {
        let current = self
            .stack
            .pop()
            .expect("feed called on a finished m-ts search");
        match outcome {
            SlotOutcome::Empty => {
                self.empty_slots += 1;
                self.mark_searched(current);
                self.next_event()
            }
            SlotOutcome::Success => {
                self.mark_searched(current);
                self.next_event()
            }
            SlotOutcome::Collision => {
                self.collision_slots += 1;
                if current.width == 1 {
                    // Leaf collision: the caller tie-breaks; the leaf then
                    // counts as searched.
                    self.mark_searched(current);
                    MtsEvent::LeafCollision { leaf: current.lo }
                } else {
                    let m = self.shape.branching();
                    let child = current.width / m;
                    for i in (0..m).rev() {
                        self.stack.push(Interval {
                            lo: current.lo + i * child,
                            width: child,
                        });
                    }
                    MtsEvent::Continue
                }
            }
        }
    }

    fn mark_searched(&mut self, interval: Interval) {
        let hi = interval.lo + interval.width - 1;
        self.highest_searched = Some(self.highest_searched.map_or(hi, |h| h.max(hi)));
    }

    fn next_event(&self) -> MtsEvent {
        if self.is_done() {
            MtsEvent::Done
        } else {
            MtsEvent::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_tree::{closed_form, search as ground_truth, TreeShape};

    fn shape(m: u64, n: u32) -> TreeShape {
        TreeShape::new(m, n).unwrap()
    }

    /// Drives the automaton against a known set of active leaves, the way
    /// the channel would, and returns (slots, transmissions in order).
    fn drive(search: &mut MtsSearch, active: &[u64]) -> (u64, Vec<u64>) {
        let mut transmitted = Vec::new();
        let mut remaining: Vec<u64> = active.to_vec();
        while let Some(interval) = search.current() {
            let inside: Vec<u64> = remaining
                .iter()
                .copied()
                .filter(|&l| interval.contains(l))
                .collect();
            let outcome = match inside.len() {
                0 => SlotOutcome::Empty,
                1 => {
                    transmitted.push(inside[0]);
                    remaining.retain(|&l| l != inside[0]);
                    SlotOutcome::Success
                }
                _ => SlotOutcome::Collision,
            };
            match search.feed(outcome) {
                MtsEvent::LeafCollision { .. } => {
                    panic!("distinct leaves cannot collide on a single leaf")
                }
                MtsEvent::Continue | MtsEvent::Done => {}
            }
        }
        (search.search_slots(), transmitted)
    }

    #[test]
    fn starts_with_root_children_left_to_right() {
        let s = MtsSearch::new(shape(4, 3));
        assert_eq!(s.current(), Some(Interval { lo: 0, width: 16 }));
        assert_eq!(s.frontier(), 0);
        assert!(!s.is_done());
    }

    #[test]
    fn matches_ground_truth_search_costs() {
        // Against the analytically validated recursive search of ddcr-tree:
        // slot count must be exactly the same minus the root collision
        // (the automaton starts past the root).
        for (m, n) in [(2u64, 3u32), (3, 2), (4, 2)] {
            let sh = shape(m, n);
            let t = sh.leaves();
            let subsets: Vec<Vec<u64>> = vec![
                vec![],
                vec![0],
                vec![t - 1],
                vec![0, t - 1],
                vec![0, 1],
                (0..t).collect(),
                (0..t).step_by(2).collect(),
            ];
            for active in subsets {
                let mut search = MtsSearch::new(sh);
                let (slots, transmitted) = drive(&mut search, &active);
                let truth = ground_truth::search_active_leaves(sh, &active).unwrap();
                // Ground truth counts the root probe; the automaton starts
                // after it. Root probe cost: collision if ≥2 active (1),
                // success if 1 (0), empty if 0 (1) — but with ≤1 active the
                // ground-truth search never descends, while the automaton
                // always probes the m children.
                if active.len() >= 2 {
                    assert_eq!(slots + 1, truth.search_slots(), "m={m} n={n} {active:?}");
                } else {
                    // Automaton probes m children: for k=0, m empty slots;
                    // for k=1, m−1 empties + 1 free success.
                    let expect = if active.is_empty() { m } else { m - 1 };
                    assert_eq!(slots, expect, "m={m} n={n} {active:?}");
                }
                let mut sorted = active.clone();
                sorted.sort_unstable();
                assert_eq!(transmitted, sorted);
            }
        }
    }

    #[test]
    fn never_exceeds_xi_bound() {
        let sh = shape(2, 4);
        for seed in 0..64u64 {
            let active: Vec<u64> = (0..16).filter(|i| (seed >> (i % 6)) & 1 == 1).collect();
            let mut search = MtsSearch::new(sh);
            let (slots, _) = drive(&mut search, &active);
            let k = active.len() as u64;
            let bound = closed_form::xi_closed(sh, k).unwrap();
            // +1 because ξ includes the root collision the automaton skips;
            // the automaton can also pay m empties on an empty tree.
            assert!(slots <= bound + sh.branching(), "seed {seed}: {slots} > {bound}");
        }
    }

    #[test]
    fn leaf_collision_reported_and_search_resumable() {
        // Two messages on the same leaf (index 2 of an 4-leaf binary tree).
        let mut s = MtsSearch::new(shape(2, 2));
        // Probe [0,2): suppose both colliders are at leaf 2 → empty.
        assert_eq!(s.feed(SlotOutcome::Empty), MtsEvent::Continue);
        // Probe [2,4): collision.
        assert_eq!(s.feed(SlotOutcome::Collision), MtsEvent::Continue);
        // Probe [2,3): both messages share leaf 2 → leaf collision.
        assert_eq!(
            s.feed(SlotOutcome::Collision),
            MtsEvent::LeafCollision { leaf: 2 }
        );
        assert_eq!(s.frontier(), 3);
        // Tie-break happens outside; the search then resumes at [3,4).
        assert_eq!(s.current(), Some(Interval { lo: 3, width: 1 }));
        assert_eq!(s.feed(SlotOutcome::Empty), MtsEvent::Done);
        assert!(s.is_done());
    }

    #[test]
    fn frontier_equals_current_lo() {
        // Invariant: while running, f* + 1 == current interval's lo.
        let sh = shape(2, 3);
        let active = vec![1u64, 3, 6];
        let mut s = MtsSearch::new(sh);
        let mut remaining = active.clone();
        while let Some(interval) = s.current() {
            assert_eq!(s.frontier(), interval.lo);
            let inside: Vec<u64> = remaining
                .iter()
                .copied()
                .filter(|&l| interval.contains(l))
                .collect();
            let outcome = match inside.len() {
                0 => SlotOutcome::Empty,
                1 => {
                    remaining.retain(|&l| l != inside[0]);
                    SlotOutcome::Success
                }
                _ => SlotOutcome::Collision,
            };
            s.feed(outcome);
        }
        assert_eq!(s.highest_searched(), Some(7));
    }

    #[test]
    #[should_panic(expected = "finished m-ts search")]
    fn feeding_done_search_panics() {
        let mut s = MtsSearch::new(shape(2, 1));
        s.feed(SlotOutcome::Empty);
        s.feed(SlotOutcome::Empty);
        assert!(s.is_done());
        s.feed(SlotOutcome::Empty);
    }

    #[test]
    fn single_level_tree_probes_each_leaf() {
        let mut s = MtsSearch::new(shape(4, 1));
        for i in 0..4 {
            assert_eq!(s.current(), Some(Interval { lo: i, width: 1 }));
            s.feed(SlotOutcome::Empty);
        }
        assert!(s.is_done());
        assert_eq!(s.empty_slots(), 4);
    }
}
