//! # ddcr-core — CSMA/DDCR: deadline-driven collision resolution
//!
//! The primary contribution of *"A Protocol and Correctness Proofs for
//! Real-Time High-Performance Broadcast Networks"* (Hermant & Le Lann,
//! ICDCS 1998): a deterministic Ethernet-like MAC protocol that emulates
//! distributed non-preemptive EDF over a broadcast medium, together with
//! the computable feasibility conditions that make it a *provable* solution
//! to the Hard Real-Time Distributed Multiaccess (HRTDM) problem.
//!
//! ## Components
//!
//! * [`EdfQueue`] — the local algorithm LA: per-source EDF queue whose head
//!   is `msg*`;
//! * [`mts`] — the deterministic m-ary tree search automaton `m-ts`, driven
//!   by replicated channel feedback;
//! * [`DdcrStation`] — the full protocol state machine: time tree searches
//!   (TTs) over deadline equivalence classes, static tree searches (STs)
//!   for same-class tie-breaking, compressed time, CSMA-CD attempt slots,
//!   and optional Gigabit-Ethernet packet bursting (§5);
//! * [`StaticAllocation`] — the partition of static tree leaves over
//!   sources (`ν_i` indices each);
//! * [`feasibility`] — the §4.3 feasibility conditions
//!   (`r(M)`, `u(M)`, `v(M)`, `B_DDCR`), built on the P1/P2 analysis of
//!   [`ddcr_tree`];
//! * [`dimensioning`] — automated search of the protocol parameter space
//!   for a provably feasible configuration (the "essential tool" of §2.2);
//! * [`multibus`] — parallel broadcast media with class→bus partitioning
//!   ("many such media can be used in parallel", §3.1);
//! * [`federate`] — chained broadcast segments behind deterministic
//!   bridges, advancing in epoch-aligned rounds on a shared virtual
//!   clock;
//! * [`network`] — one-call assembly of a simulated DDCR network over
//!   [`ddcr_sim`].
//!
//! ## Quickstart
//!
//! ```
//! use ddcr_core::{feasibility, DdcrConfig, StaticAllocation};
//! use ddcr_sim::{MediumConfig, Ticks};
//! use ddcr_traffic::scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = scenario::uniform(8, 8_000, Ticks(5_000_000), 0.3)?;
//! let medium = MediumConfig::ethernet();
//! let c = ddcr_core::network::recommended_class_width(&set, 64, &medium);
//! let config = DdcrConfig::for_sources(8, c)?;
//! let allocation = StaticAllocation::round_robin(config.static_tree, 8)?;
//! let report = feasibility::evaluate(&set, &config, &allocation, &medium)?;
//! println!("feasible: {}", report.feasible());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
pub mod dimensioning;
mod edf;
mod error;
pub mod feasibility;
pub mod federate;
mod indices;
pub mod inversions;
pub mod membership;
pub mod mts;
pub mod multibus;
pub mod network;
mod protocol;

pub use config::{BurstConfig, DdcrConfig};
pub use edf::EdfQueue;
pub use error::DdcrError;
pub use indices::StaticAllocation;
pub use membership::{AdmissionDecision, FlowRequest, Membership, TransitionReceipt};
pub use protocol::{DdcrStation, ProtocolCounters};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DdcrConfig>();
        assert_send_sync::<DdcrStation>();
        assert_send_sync::<StaticAllocation>();
        assert_send_sync::<DdcrError>();
    }
}
