//! Dynamic membership and online admission control.
//!
//! The paper dimensions the `ν_i` static-tree indices offline for a fixed
//! station set (§3.2) and proves `B_DDCR` for that set (§4.3). A production
//! broadcast fabric churns: stations join, leave, and crash. This module
//! makes the static allocation a *live* object — [`Membership`] tracks
//! which stations are currently attached, re-dimensions the leaf partition
//! online as they come and go, and turns the feasibility conditions into an
//! admission predicate for new flows.
//!
//! ## Safety argument
//!
//! The governing invariant is: **no membership transition or admission ever
//! invalidates the `B_DDCR` bound of an already-admitted flow.**
//!
//! * **Join** grants a station leaves from the free pool. A join adds no
//!   traffic (the station has no admitted flows yet), and granting unowned
//!   leaves changes no other source's `ν_i`, so every existing class's
//!   `r(M)`, `u(M)`, `v(M)` — hence its bound — is untouched. At the
//!   protocol layer the joiner enters through the PR 3 resync handshake: it
//!   is receive-only until it observes an epoch stamped after its join, so
//!   the "reserved contention window" it acquires its indices through is
//!   provably silent.
//! * **Leave** reclaims the leaver's leaves and drops its flows. Removing
//!   classes from `MSG` only shrinks every survivor's interference `u(M)`,
//!   so surviving bounds only improve. (In the engine the reclamation lands
//!   at the next epoch boundary; analytically the pre-reclaim bound is the
//!   conservative one, so checking either side is sound.)
//! * **Admission** evaluates the *candidate* message set — every admitted
//!   flow plus the applicant — with [`feasibility::evaluate`]. The flow is
//!   admitted iff every class of the candidate set stays feasible, so an
//!   accepted applicant can never push an incumbent past its deadline. The
//!   evaluation reuses the memoized P2 multi-tree bound cache, so repeated
//!   admissions against a stable configuration stay cheap.
//!
//! [`Membership::force_admit`] is the operator override that skips the
//! predicate; it is the one door through which the invariant can break, and
//! every use that actually breaks it is counted in
//! [`Membership::safety_violations`] so a serving process can refuse to
//! exit cleanly (the `ddcr serve` contract).

use crate::config::DdcrConfig;
use crate::error::DdcrError;
use crate::feasibility::{self, ClassFeasibility, FeasibilityReport};
use crate::indices::StaticAllocation;
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
pub use ddcr_sim::MembershipChange;
use ddcr_traffic::{DensityBound, MessageClass, MessageSet};

/// A flow admission request: one message class a station asks to add.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRequest {
    /// The requesting station (must be a present member).
    pub source: SourceId,
    /// Human-readable flow label.
    pub name: String,
    /// Data-Link PDU bit length `l`.
    pub bits: u64,
    /// Relative hard deadline `d`.
    pub deadline: Ticks,
    /// Density numerator `a`: arrivals per window.
    pub arrivals: u64,
    /// Density window `w`.
    pub window: Ticks,
}

/// The outcome of evaluating one [`FlowRequest`] against the live bound.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdmissionDecision {
    /// Every class of the candidate set stays feasible; the flow is in.
    Admitted {
        /// The id assigned to the admitted class.
        class: ClassId,
        /// The applicant's own `B_DDCR` bound, ticks.
        bound: f64,
        /// The smallest slack across the whole candidate set, ticks.
        slack: f64,
    },
    /// Admitting the flow would break a deadline; the flow is refused.
    Rejected {
        /// The binding (most violated) class of the candidate set — either
        /// the applicant itself or an incumbent the applicant would push
        /// past its deadline. Carries the full `B_DDCR` decomposition, so
        /// the refusal can cite the violated term
        /// ([`ClassFeasibility::dominant_term`]).
        binding: ClassFeasibility,
    },
}

/// What a membership transition did to the leaf partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionReceipt {
    /// The station that joined or left.
    pub station: SourceId,
    /// Leaves granted (join) or reclaimed (leave), ascending.
    pub leaves: Vec<u64>,
    /// Admitted flows dropped by a leave (empty on join).
    pub dropped_flows: Vec<ClassId>,
}

/// Live membership state: the attached-station set, the online leaf
/// partition, and the admitted flow set the admission predicate runs over.
#[derive(Debug, Clone)]
pub struct Membership {
    config: DdcrConfig,
    medium: MediumConfig,
    allocation: StaticAllocation,
    present: Vec<bool>,
    admitted: Vec<MessageClass>,
    /// Leaves granted to each joiner (clamped to what the free pool holds).
    join_nu: u64,
    next_class: u32,
    violations: u64,
}

impl Membership {
    /// An empty fabric of `z` attachment points: nobody present, every
    /// static leaf free, no flows admitted. Each joiner is granted up to
    /// `join_nu` leaves from the free pool (at least one).
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] for `z = 0`, `join_nu = 0`, or
    /// a configuration whose static tree cannot seat `z` sources.
    pub fn new(
        config: DdcrConfig,
        medium: MediumConfig,
        z: u32,
        join_nu: u64,
    ) -> Result<Self, DdcrError> {
        if z == 0 {
            return Err(DdcrError::InvalidConfig(
                "membership needs at least one attachment point".into(),
            ));
        }
        if join_nu == 0 {
            return Err(DdcrError::InvalidConfig(
                "join_nu must be at least 1: a member without static \
                 indices can never transmit"
                    .into(),
            ));
        }
        if config.static_tree.leaves() < u64::from(z) {
            return Err(DdcrError::InvalidConfig(format!(
                "static tree has {} leaves, fewer than {z} attachment points",
                config.static_tree.leaves()
            )));
        }
        Ok(Membership {
            allocation: StaticAllocation::detached(config.static_tree, z),
            config,
            medium,
            present: vec![false; z as usize],
            admitted: Vec::new(),
            join_nu,
            next_class: 0,
            violations: 0,
        })
    }

    /// The live leaf partition.
    pub fn allocation(&self) -> &StaticAllocation {
        &self.allocation
    }

    /// The currently admitted flows.
    pub fn admitted(&self) -> &[MessageClass] {
        &self.admitted
    }

    /// Whether `station` is currently a member.
    pub fn is_present(&self, station: SourceId) -> bool {
        self.present
            .get(station.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of present members.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|p| **p).count()
    }

    /// Times [`Membership::force_admit`] actually broke the feasible-set
    /// invariant. Non-zero means the analytic guarantee no longer covers
    /// the admitted set.
    pub fn safety_violations(&self) -> u64 {
        self.violations
    }

    /// Applies one membership transition.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] for an unknown station, a join
    /// of a present member, a leave of an absent one, or a join when the
    /// free pool is empty.
    pub fn apply(&mut self, change: MembershipChange) -> Result<TransitionReceipt, DdcrError> {
        match change {
            MembershipChange::Join { station } => self.join(SourceId(station)),
            MembershipChange::Leave { station } => self.leave(SourceId(station)),
        }
    }

    fn member_slot(&self, station: SourceId) -> Result<usize, DdcrError> {
        let idx = station.0 as usize;
        if idx >= self.present.len() {
            return Err(DdcrError::InvalidConfig(format!(
                "station {} outside the fabric's {} attachment points",
                station.0,
                self.present.len()
            )));
        }
        Ok(idx)
    }

    /// Admits `station` to the fabric, granting it the lowest free leaves
    /// (up to `join_nu` of them). Deterministic: the same join sequence
    /// always yields the same partition.
    pub fn join(&mut self, station: SourceId) -> Result<TransitionReceipt, DdcrError> {
        let idx = self.member_slot(station)?;
        if self.present[idx] {
            return Err(DdcrError::InvalidConfig(format!(
                "station {} is already a member",
                station.0
            )));
        }
        let mut free = self.allocation.free_leaves();
        if free.is_empty() {
            return Err(DdcrError::InvalidConfig(format!(
                "no free static leaves to seat station {}",
                station.0
            )));
        }
        free.truncate(self.join_nu as usize);
        self.allocation.grant(station, free.clone())?;
        self.present[idx] = true;
        Ok(TransitionReceipt {
            station,
            leaves: free,
            dropped_flows: Vec::new(),
        })
    }

    /// Removes `station` from the fabric: its leaves return to the free
    /// pool and its admitted flows are dropped (both only *improve* every
    /// survivor's bound; see the module-level safety argument).
    pub fn leave(&mut self, station: SourceId) -> Result<TransitionReceipt, DdcrError> {
        let idx = self.member_slot(station)?;
        if !self.present[idx] {
            return Err(DdcrError::InvalidConfig(format!(
                "station {} is not a member",
                station.0
            )));
        }
        let leaves = self.allocation.reclaim(station)?;
        let dropped_flows = self
            .admitted
            .iter()
            .filter(|c| c.source == station)
            .map(|c| c.id)
            .collect();
        self.admitted.retain(|c| c.source != station);
        self.present[idx] = false;
        Ok(TransitionReceipt {
            station,
            leaves,
            dropped_flows,
        })
    }

    fn build_class(&mut self, flow: &FlowRequest) -> Result<MessageClass, DdcrError> {
        let idx = self.member_slot(flow.source)?;
        if !self.present[idx] {
            return Err(DdcrError::InvalidConfig(format!(
                "station {} is not a member; join before requesting flows",
                flow.source.0
            )));
        }
        let density = DensityBound::new(flow.arrivals, flow.window).map_err(|e| {
            DdcrError::InvalidConfig(format!("flow '{}': {e}", flow.name))
        })?;
        if flow.bits == 0 {
            return Err(DdcrError::InvalidConfig(format!(
                "flow '{}': zero-bit messages are not schedulable",
                flow.name
            )));
        }
        if self.next_class == u32::MAX {
            return Err(DdcrError::InvalidConfig(
                "flow id space exhausted".into(),
            ));
        }
        Ok(MessageClass {
            id: ClassId(self.next_class),
            name: flow.name.clone(),
            source: flow.source,
            bits: flow.bits,
            deadline: flow.deadline,
            density,
        })
    }

    /// Evaluates the candidate set (admitted flows + applicant) without
    /// mutating anything.
    fn evaluate_candidate(
        &self,
        candidate: &MessageClass,
    ) -> Result<FeasibilityReport, DdcrError> {
        let mut classes = self.admitted.clone();
        classes.push(candidate.clone());
        let set = MessageSet::new(self.present.len() as u32, classes)
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))?;
        feasibility::evaluate(&set, &self.config, &self.allocation, &self.medium)
    }

    fn decide(
        candidate: &MessageClass,
        report: &FeasibilityReport,
    ) -> AdmissionDecision {
        // An infeasible report is never empty (the candidate itself is in
        // the set), so the binding class always exists on this branch.
        if !report.feasible() {
            if let Some(binding) = report.tightest() {
                return AdmissionDecision::Rejected {
                    binding: binding.clone(),
                };
            }
        }
        let own = report
            .per_class
            .iter()
            .find(|c| c.class == candidate.id)
            .map(|c| c.bound)
            .unwrap_or(0.0);
        let slack = report
            .tightest()
            .map(ClassFeasibility::slack)
            .unwrap_or(0.0);
        AdmissionDecision::Admitted {
            class: candidate.id,
            bound: own,
            slack,
        }
    }

    /// Evaluates a flow request against the live `B_DDCR` predicate and
    /// admits it iff every class of the candidate set stays feasible.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] for malformed requests (absent
    /// station, zero-bit flow, degenerate density) — a *rejection* is not
    /// an error but an [`AdmissionDecision::Rejected`].
    pub fn admit(&mut self, flow: &FlowRequest) -> Result<AdmissionDecision, DdcrError> {
        let candidate = self.build_class(flow)?;
        let report = self.evaluate_candidate(&candidate)?;
        let decision = Self::decide(&candidate, &report);
        if matches!(decision, AdmissionDecision::Admitted { .. }) {
            self.admitted.push(candidate);
            self.next_class += 1;
        }
        Ok(decision)
    }

    /// Admits a flow *regardless* of the predicate — the operator override.
    ///
    /// The returned decision is what [`Membership::admit`] would have said;
    /// when it says `Rejected`, the flow is admitted anyway and the breach
    /// is counted in [`Membership::safety_violations`].
    ///
    /// # Errors
    ///
    /// Malformed requests still fail with [`DdcrError::InvalidConfig`];
    /// the override skips the feasibility predicate, not input validation.
    pub fn force_admit(&mut self, flow: &FlowRequest) -> Result<AdmissionDecision, DdcrError> {
        let candidate = self.build_class(flow)?;
        let report = self.evaluate_candidate(&candidate)?;
        let decision = Self::decide(&candidate, &report);
        if matches!(decision, AdmissionDecision::Rejected { .. }) {
            self.violations += 1;
        }
        self.admitted.push(candidate);
        self.next_class += 1;
        Ok(decision)
    }

    /// Evaluates a flow request against the *multichannel* predicate: the
    /// candidate set is sharded over `channels` parallel media with
    /// [`multibus::balance_by_load`] and admitted iff every channel's
    /// projected set stays feasible (§3.1: "many such media can be used in
    /// parallel"). Less conservative than [`Membership::admit`] — a flow
    /// infeasible on one shared medium may fit once interference is split —
    /// while still sound per channel. Also returns the per-channel ξ
    /// budgets ([`multibus::channel_budgets`]) for operator reporting.
    ///
    /// # Errors
    ///
    /// Same contract as [`Membership::admit`].
    ///
    /// [`multibus::balance_by_load`]: crate::multibus::balance_by_load
    /// [`multibus::channel_budgets`]: crate::multibus::channel_budgets
    pub fn admit_multichannel(
        &mut self,
        flow: &FlowRequest,
        channels: usize,
    ) -> Result<(AdmissionDecision, Vec<crate::multibus::ChannelXiBudget>), DdcrError> {
        let candidate = self.build_class(flow)?;
        let mut classes = self.admitted.clone();
        classes.push(candidate.clone());
        let set = MessageSet::new(self.present.len() as u32, classes)
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))?;
        let assignment = crate::multibus::balance_by_load(&set, channels);
        let reports = crate::multibus::evaluate(
            &set,
            &assignment,
            &self.config,
            &self.allocation,
            &self.medium,
        )?;
        let budgets = crate::multibus::channel_budgets(
            &set,
            &assignment,
            &self.config,
            &self.allocation,
            &self.medium,
        )?;
        let binding = reports
            .iter()
            .filter(|r| !r.feasible())
            .filter_map(FeasibilityReport::tightest)
            .min_by(|a, b| a.slack().total_cmp(&b.slack()))
            .cloned();
        let decision = match binding {
            Some(binding) => AdmissionDecision::Rejected { binding },
            None => {
                let own = reports
                    .iter()
                    .flat_map(|r| r.per_class.iter())
                    .find(|c| c.class == candidate.id)
                    .map(|c| c.bound)
                    .unwrap_or(0.0);
                let slack = reports
                    .iter()
                    .filter_map(FeasibilityReport::tightest)
                    .map(ClassFeasibility::slack)
                    .min_by(f64::total_cmp)
                    .unwrap_or(0.0);
                AdmissionDecision::Admitted {
                    class: candidate.id,
                    bound: own,
                    slack,
                }
            }
        };
        if matches!(decision, AdmissionDecision::Admitted { .. }) {
            self.admitted.push(candidate);
            self.next_class += 1;
        }
        Ok((decision, budgets))
    }

    /// The admitted flows as a message set (what the engine schedules).
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] if the admitted set is not a
    /// valid message set (cannot happen through the public API).
    pub fn message_set(&self) -> Result<MessageSet, DdcrError> {
        MessageSet::new(self.present.len() as u32, self.admitted.clone())
            .map_err(|e| DdcrError::InvalidConfig(e.to_string()))
    }

    /// Re-evaluates the whole admitted set against the current partition.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures ([`DdcrError::InvalidConfig`]).
    pub fn evaluate(&self) -> Result<FeasibilityReport, DdcrError> {
        let set = self.message_set()?;
        feasibility::evaluate(&set, &self.config, &self.allocation, &self.medium)
    }

    /// Checks the membership invariants: every admitted flow's source is a
    /// present member with at least one leaf, and — unless an operator
    /// override already broke it — the admitted set is feasible.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] naming the first breach.
    pub fn check_invariants(&self) -> Result<(), DdcrError> {
        for class in &self.admitted {
            let idx = class.source.0 as usize;
            if !self.present.get(idx).copied().unwrap_or(false) {
                return Err(DdcrError::InvalidConfig(format!(
                    "admitted flow {} belongs to absent station {}",
                    class.id.0, class.source.0
                )));
            }
            if self.allocation.nu(class.source) == 0 {
                return Err(DdcrError::InvalidConfig(format!(
                    "member {} has admitted flows but no static leaves",
                    class.source.0
                )));
            }
        }
        if self.violations == 0 && !self.admitted.is_empty() {
            let report = self.evaluate()?;
            if !report.feasible() {
                return Err(DdcrError::InvalidConfig(
                    "admitted set became infeasible without an operator \
                     override — admission invariant broken"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(z: u32) -> Membership {
        let config = DdcrConfig::for_sources(z, Ticks(100_000)).unwrap();
        Membership::new(config, MediumConfig::ethernet(), z, 1).unwrap()
    }

    fn roomy_flow(source: u32, name: &str) -> FlowRequest {
        FlowRequest {
            source: SourceId(source),
            name: name.into(),
            bits: 8_000,
            deadline: Ticks(50_000_000),
            arrivals: 1,
            window: Ticks(10_000_000),
        }
    }

    #[test]
    fn join_then_admit_then_leave_round_trip() {
        let mut m = fabric(4);
        let r = m.join(SourceId(0)).unwrap();
        assert_eq!(r.leaves.len(), 1);
        assert!(m.is_present(SourceId(0)));
        let d = m.admit(&roomy_flow(0, "telemetry")).unwrap();
        assert!(matches!(d, AdmissionDecision::Admitted { .. }), "{d:?}");
        assert_eq!(m.admitted().len(), 1);
        m.check_invariants().unwrap();
        let r = m.leave(SourceId(0)).unwrap();
        assert_eq!(r.dropped_flows.len(), 1);
        assert!(m.admitted().is_empty());
        assert_eq!(m.allocation().nu(SourceId(0)), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn join_reuses_reclaimed_leaves_deterministically() {
        let mut m = fabric(3);
        let first = m.join(SourceId(0)).unwrap().leaves;
        m.leave(SourceId(0)).unwrap();
        let second = m.join(SourceId(1)).unwrap().leaves;
        assert_eq!(first, second, "lowest free leaves must be reused");
    }

    #[test]
    fn overload_is_rejected_citing_the_binding_class() {
        let mut m = fabric(2);
        m.join(SourceId(0)).unwrap();
        // An absurdly dense flow that cannot meet its own deadline.
        let hog = FlowRequest {
            source: SourceId(0),
            name: "hog".into(),
            bits: 8_000,
            deadline: Ticks(500_000),
            arrivals: 1_000,
            window: Ticks(100_000),
        };
        match m.admit(&hog).unwrap() {
            AdmissionDecision::Rejected { binding } => {
                assert!(binding.slack() < 0.0);
                assert!(!binding.dominant_term().is_empty());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(m.admitted().is_empty(), "rejected flow must not be kept");
        assert_eq!(m.safety_violations(), 0);
    }

    #[test]
    fn rejection_protects_incumbent_flows() {
        let mut m = fabric(2);
        m.join(SourceId(0)).unwrap();
        m.join(SourceId(1)).unwrap();
        assert!(matches!(
            m.admit(&roomy_flow(0, "incumbent")).unwrap(),
            AdmissionDecision::Admitted { .. }
        ));
        let hog = FlowRequest {
            source: SourceId(1),
            name: "hog".into(),
            bits: 1_000_000,
            deadline: Ticks(500_000_000),
            arrivals: 200,
            window: Ticks(300_000),
        };
        // Whatever the verdict, the incumbent must stay feasible afterwards.
        let _ = m.admit(&hog).unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn force_admit_counts_the_breach() {
        let mut m = fabric(2);
        m.join(SourceId(0)).unwrap();
        let hog = FlowRequest {
            source: SourceId(0),
            name: "hog".into(),
            bits: 8_000,
            deadline: Ticks(500_000),
            arrivals: 1_000,
            window: Ticks(100_000),
        };
        let d = m.force_admit(&hog).unwrap();
        assert!(matches!(d, AdmissionDecision::Rejected { .. }));
        assert_eq!(m.admitted().len(), 1, "forced flow is admitted anyway");
        assert_eq!(m.safety_violations(), 1);
    }

    #[test]
    fn multichannel_admission_is_no_stricter_than_single_medium() {
        let mut single = fabric(2);
        let mut multi = fabric(2);
        for m in [&mut single, &mut multi] {
            m.join(SourceId(0)).unwrap();
        }
        // A flow at the edge: dense enough to stress one medium.
        let flow = FlowRequest {
            source: SourceId(0),
            name: "edge".into(),
            bits: 8_000,
            deadline: Ticks(5_000_000),
            arrivals: 4,
            window: Ticks(1_000_000),
        };
        let on_one = single.admit(&flow).unwrap();
        let (on_four, budgets) = multi.admit_multichannel(&flow, 4).unwrap();
        assert_eq!(budgets.len(), 4);
        // Sharding only splits interference: anything a single medium
        // admits, four channels must admit too.
        if matches!(on_one, AdmissionDecision::Admitted { .. }) {
            assert!(matches!(on_four, AdmissionDecision::Admitted { .. }));
        }
        multi.check_invariants().unwrap();
    }

    #[test]
    fn malformed_requests_get_typed_errors() {
        let mut m = fabric(2);
        // Absent station.
        assert!(m.admit(&roomy_flow(0, "early")).is_err());
        m.join(SourceId(0)).unwrap();
        // Unknown station.
        assert!(m.join(SourceId(9)).is_err());
        // Double join / absent leave.
        assert!(m.join(SourceId(0)).is_err());
        assert!(m.leave(SourceId(1)).is_err());
        // Zero-bit flow and zero-window density.
        let mut bad = roomy_flow(0, "empty");
        bad.bits = 0;
        assert!(m.admit(&bad).is_err());
        let mut bad = roomy_flow(0, "degenerate");
        bad.window = Ticks(0);
        assert!(m.admit(&bad).is_err());
        // Nothing was admitted along the way.
        assert!(m.admitted().is_empty());
    }

    #[test]
    fn degenerate_fabric_shapes_are_refused() {
        let config = DdcrConfig::for_sources(4, Ticks(100_000)).unwrap();
        assert!(Membership::new(config, MediumConfig::ethernet(), 0, 1).is_err());
        assert!(Membership::new(config, MediumConfig::ethernet(), 4, 0).is_err());
    }

    #[test]
    fn free_pool_exhaustion_is_an_error_not_a_panic() {
        let config = DdcrConfig::for_sources(2, Ticks(100_000)).unwrap();
        let q = config.static_tree.leaves();
        let mut m =
            Membership::new(config, MediumConfig::ethernet(), 2, q).unwrap();
        // First joiner takes the whole pool.
        assert_eq!(m.join(SourceId(0)).unwrap().leaves.len(), q as usize);
        let err = m.join(SourceId(1)).unwrap_err();
        assert!(matches!(err, DdcrError::InvalidConfig(_)), "{err}");
    }
}
