//! Deadline-inversion accounting — how far a schedule strays from EDF.
//!
//! The paper's design goal is to emulate centralized NP-EDF; its known
//! deviations are the non-preemptable channel, deadline equivalence
//! classes of width `c`, and the compressed-time mode ("θ(c) determines a
//! tradeoff between reducing potential channel idleness and potentially
//! increasing the number of deadline inversions"). This module measures
//! those deviations on delivery records: the number of delivered pairs in
//! anti-EDF order, counted in `O(n log n)` by merge-sort inversion
//! counting, plus magnitude statistics for judging *how bad* the
//! inversions are (a swap between deadlines 1 µs apart is benign; one
//! across 10 ms is not).

use ddcr_sim::{Delivery, Ticks};

/// Summary of the deadline inversions in a delivery sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InversionReport {
    /// Delivered pairs `(i, j)` with `i` before `j` but
    /// `DM(i) > DM(j)` — zero for a perfect EDF schedule.
    pub pairs: u64,
    /// Total pairs compared, `n·(n−1)/2`.
    pub total_pairs: u64,
    /// The largest deadline gap `DM(i) − DM(j)` over inverted pairs
    /// (how far from EDF the worst swap was).
    pub worst_gap: Ticks,
}

impl InversionReport {
    /// Fraction of pairs inverted (0 when fewer than two deliveries).
    pub fn ratio(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.pairs as f64 / self.total_pairs as f64
        }
    }

    /// Whether the sequence is a perfect EDF order.
    pub fn is_edf(&self) -> bool {
        self.pairs == 0
    }
}

/// Counts deadline inversions in delivery (channel) order.
///
/// # Examples
///
/// ```
/// use ddcr_core::inversions::count;
/// use ddcr_sim::{ClassId, Delivery, Message, MessageId, SourceId, Ticks};
///
/// let mk = |id, deadline, done| Delivery {
///     message: Message {
///         id: MessageId(id), source: SourceId(0), class: ClassId(0),
///         bits: 100, arrival: Ticks(0), deadline: Ticks(deadline),
///     },
///     completed_at: Ticks(done),
/// };
/// // Delivered 500 then 100: one inversion of gap 400.
/// let report = count(&[mk(0, 500, 10), mk(1, 100, 20)]);
/// assert_eq!(report.pairs, 1);
/// assert_eq!(report.worst_gap, Ticks(400));
/// assert!(!report.is_edf());
/// ```
pub fn count(deliveries: &[Delivery]) -> InversionReport {
    let n = deliveries.len() as u64;
    let total_pairs = n * n.saturating_sub(1) / 2;
    let mut dms: Vec<u64> = deliveries
        .iter()
        .map(|d| d.message.absolute_deadline().as_u64())
        .collect();
    // Worst gap needs the max prefix-DM exceeding each element.
    let mut worst_gap = 0u64;
    let mut running_max = 0u64;
    for &dm in &dms {
        if running_max > dm {
            worst_gap = worst_gap.max(running_max - dm);
        }
        running_max = running_max.max(dm);
    }
    let pairs = merge_count(&mut dms);
    InversionReport {
        pairs,
        total_pairs,
        worst_gap: Ticks(worst_gap),
    }
}

/// Classic merge-sort inversion count (`a[i] > a[j]` with `i < j`),
/// `O(n log n)`.
fn merge_count(a: &mut [u64]) -> u64 {
    let n = a.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut inv = merge_count(left) + merge_count(right);
    let mut merged = Vec::with_capacity(n);
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            merged.push(left[i]);
            i += 1;
        } else {
            inv += (left.len() - i) as u64;
            merged.push(right[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&left[i..]);
    merged.extend_from_slice(&right[j..]);
    a.copy_from_slice(&merged);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddcr_sim::{ClassId, Message, MessageId, SourceId};

    fn mk(id: u64, deadline: u64) -> Delivery {
        Delivery {
            message: Message {
                id: MessageId(id),
                source: SourceId(0),
                class: ClassId(0),
                bits: 100,
                arrival: Ticks(0),
                deadline: Ticks(deadline),
            },
            completed_at: Ticks(id * 10 + 10),
        }
    }

    #[test]
    fn edf_order_has_no_inversions() {
        let d: Vec<Delivery> = [100, 200, 300, 400].iter().map(|&x| mk(x, x)).collect();
        let r = count(&d);
        assert!(r.is_edf());
        assert_eq!(r.total_pairs, 6);
        assert_eq!(r.ratio(), 0.0);
        assert_eq!(r.worst_gap, Ticks::ZERO);
    }

    #[test]
    fn reverse_order_inverts_every_pair() {
        let d: Vec<Delivery> = [400, 300, 200, 100].iter().map(|&x| mk(x, x)).collect();
        let r = count(&d);
        assert_eq!(r.pairs, 6);
        assert_eq!(r.ratio(), 1.0);
        assert_eq!(r.worst_gap, Ticks(300));
    }

    #[test]
    fn counts_match_quadratic_reference() {
        // Deterministic pseudo-random orders.
        let mut seed = 42u64;
        for len in [0usize, 1, 2, 7, 33, 100] {
            let mut dms = Vec::with_capacity(len);
            for _ in 0..len {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                dms.push((seed >> 33) % 1000 + 1);
            }
            let deliveries: Vec<Delivery> =
                dms.iter().enumerate().map(|(i, &d)| mk(i as u64, d)).collect();
            let mut reference = 0u64;
            for i in 0..len {
                for j in i + 1..len {
                    if dms[i] > dms[j] {
                        reference += 1;
                    }
                }
            }
            assert_eq!(count(&deliveries).pairs, reference, "len {len}");
        }
    }

    #[test]
    fn ties_are_not_inversions() {
        let d: Vec<Delivery> = [100, 100, 100].iter().map(|&x| mk(x, x)).collect();
        assert!(count(&d).is_edf());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(count(&[]).is_edf());
        assert_eq!(count(&[]).total_pairs, 0);
        assert!(count(&[mk(0, 5)]).is_edf());
    }
}
