//! CSMA/DDCR protocol parameters.

use crate::error::DdcrError;
use ddcr_sim::Ticks;
use ddcr_tree::TreeShape;
use serde::{Deserialize, Serialize};

/// Gigabit-Ethernet-style packet bursting (§5): after acquiring the channel
/// a source may keep transmitting EDF-ranked queued messages back to back,
/// up to a byte budget, signalling continuation in the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Total Data-Link bits a burst may carry beyond the first frame
    /// (the 802.3z limit is 512 bytes = 4096 bits).
    pub max_extra_bits: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            max_extra_bits: 512 * 8,
        }
    }
}

/// Complete parameterisation of CSMA/DDCR (§3.2).
///
/// # Examples
///
/// ```
/// use ddcr_core::DdcrConfig;
/// use ddcr_sim::Ticks;
///
/// # fn main() -> Result<(), ddcr_core::DdcrError> {
/// // 8 sources, 64-leaf quaternary time tree, 100 µs deadline classes.
/// let config = DdcrConfig::for_sources(8, Ticks(100_000))?;
/// assert_eq!(config.time_tree.leaves(), 64);
/// assert!(config.static_tree.leaves() >= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdcrConfig {
    /// Shape of the time tree: `F` leaves (deadline equivalence classes),
    /// branching degree `m`. The scheduling horizon is `c·F`.
    pub time_tree: TreeShape,
    /// Shape of the static tree: `q ≥ z` leaves over the source indices.
    pub static_tree: TreeShape,
    /// Width `c` of one deadline equivalence class.
    pub class_width: Ticks,
    /// The tunable `α` letting messages enter a time tree search "before it
    /// is too late" (a static tree search may outlast `c`).
    pub alpha: Ticks,
    /// Compressed-time increment: when a time tree search ends empty,
    /// `reft += θ(c)` with `θ(c) = theta_numerator · c`. Zero disables the
    /// compressed-time mode.
    pub theta_numerator: u64,
    /// Optional packet bursting (§5). `None` disables bursting.
    pub bursting: Option<BurstConfig>,
}

impl DdcrConfig {
    /// A reasonable default deployment for `z` sources: quaternary 64-leaf
    /// time tree, the smallest quaternary static tree with at least `z`
    /// leaves, class width `c`, `α = c`, compressed time off, no bursting.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] if `z` is zero or `c` is zero.
    pub fn for_sources(z: u32, class_width: Ticks) -> Result<Self, DdcrError> {
        if z == 0 {
            return Err(DdcrError::InvalidConfig(
                "at least one source is required".into(),
            ));
        }
        if class_width == Ticks::ZERO {
            return Err(DdcrError::InvalidConfig(
                "deadline class width c must be positive".into(),
            ));
        }
        let mut n = 1u32;
        while 4u64.pow(n) < u64::from(z) {
            n += 1;
        }
        let static_tree = TreeShape::new(4, n).map_err(DdcrError::Tree)?;
        Ok(DdcrConfig {
            time_tree: TreeShape::new(4, 3).map_err(DdcrError::Tree)?,
            static_tree,
            class_width,
            alpha: class_width,
            theta_numerator: 0,
            bursting: None,
        })
    }

    /// Sets the time tree shape.
    pub fn with_time_tree(mut self, shape: TreeShape) -> Self {
        self.time_tree = shape;
        self
    }

    /// Sets the static tree shape.
    pub fn with_static_tree(mut self, shape: TreeShape) -> Self {
        self.static_tree = shape;
        self
    }

    /// Enables compressed time with `θ(c) = numerator · c`.
    pub fn with_compressed_time(mut self, numerator: u64) -> Self {
        self.theta_numerator = numerator;
        self
    }

    /// Enables packet bursting.
    pub fn with_bursting(mut self, burst: BurstConfig) -> Self {
        self.bursting = Some(burst);
        self
    }

    /// Sets `α`.
    pub fn with_alpha(mut self, alpha: Ticks) -> Self {
        self.alpha = alpha;
        self
    }

    /// The compressed-time increment `θ(c)`.
    pub fn theta(&self) -> Ticks {
        Ticks(self.theta_numerator * self.class_width.as_u64())
    }

    /// The scheduling horizon `c·F`.
    pub fn horizon(&self) -> Ticks {
        Ticks(self.class_width.as_u64() * self.time_tree.leaves())
    }

    /// Validates the configuration against a source count.
    ///
    /// # Errors
    ///
    /// Returns [`DdcrError::InvalidConfig`] when the static tree has fewer
    /// leaves than sources or `c` is zero.
    pub fn validate(&self, sources: u32) -> Result<(), DdcrError> {
        if self.class_width == Ticks::ZERO {
            return Err(DdcrError::InvalidConfig(
                "deadline class width c must be positive".into(),
            ));
        }
        if self.static_tree.leaves() < u64::from(sources) {
            return Err(DdcrError::InvalidConfig(format!(
                "static tree has {} leaves but there are {} sources (q ≥ z required)",
                self.static_tree.leaves(),
                sources
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_sources_picks_smallest_static_tree() {
        let c = Ticks(100_000);
        assert_eq!(DdcrConfig::for_sources(3, c).unwrap().static_tree.leaves(), 4);
        assert_eq!(DdcrConfig::for_sources(4, c).unwrap().static_tree.leaves(), 4);
        assert_eq!(DdcrConfig::for_sources(5, c).unwrap().static_tree.leaves(), 16);
        assert_eq!(DdcrConfig::for_sources(64, c).unwrap().static_tree.leaves(), 64);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(DdcrConfig::for_sources(0, Ticks(1)).is_err());
        assert!(DdcrConfig::for_sources(4, Ticks::ZERO).is_err());
    }

    #[test]
    fn horizon_is_c_times_f() {
        let cfg = DdcrConfig::for_sources(4, Ticks(1000)).unwrap();
        assert_eq!(cfg.horizon(), Ticks(64_000));
    }

    #[test]
    fn theta_scales_with_c() {
        let cfg = DdcrConfig::for_sources(4, Ticks(1000))
            .unwrap()
            .with_compressed_time(3);
        assert_eq!(cfg.theta(), Ticks(3000));
        let off = DdcrConfig::for_sources(4, Ticks(1000)).unwrap();
        assert_eq!(off.theta(), Ticks::ZERO);
    }

    #[test]
    fn validate_checks_q_at_least_z() {
        let cfg = DdcrConfig::for_sources(4, Ticks(1000)).unwrap();
        assert!(cfg.validate(4).is_ok());
        assert!(cfg.validate(5).is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = DdcrConfig::for_sources(4, Ticks(1000))
            .unwrap()
            .with_alpha(Ticks(500))
            .with_bursting(BurstConfig::default())
            .with_time_tree(ddcr_tree::TreeShape::new(2, 6).unwrap());
        assert_eq!(cfg.alpha, Ticks(500));
        assert!(cfg.bursting.is_some());
        assert_eq!(cfg.time_tree.branching(), 2);
    }
}
