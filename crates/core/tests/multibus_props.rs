//! Property-based tests of the parallel-media planner: partitions are
//! total and disjoint, balancing is sane, and feasibility composes
//! monotonically with bus count.

use ddcr_core::{feasibility, multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet};
use proptest::prelude::*;

fn random_set(z: u32, per_source: usize, seed: u64) -> MessageSet {
    let mut s = seed;
    let mut next = move |range: std::ops::RangeInclusive<u64>| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        range.start() + (s >> 33) % (range.end() - range.start() + 1)
    };
    let mut classes = Vec::new();
    let mut id = 0u32;
    for src in 0..z {
        for _ in 0..per_source {
            classes.push(MessageClass {
                id: ClassId(id),
                name: format!("c{id}"),
                source: SourceId(src),
                bits: next(1_000..=16_000),
                deadline: Ticks(next(500_000..=8_000_000)),
                density: DensityBound::new(next(1..=3), Ticks(next(500_000..=4_000_000)))
                    .unwrap(),
            });
            id += 1;
        }
    }
    MessageSet::new(z, classes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Balancing always produces a total, in-range assignment whose
    /// projections partition the class set exactly.
    #[test]
    fn balance_partitions_exactly(
        z in 2u32..6,
        per_source in 1usize..4,
        buses in 1usize..5,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let assignment = multibus::balance_by_load(&set, buses);
        prop_assert_eq!(assignment.buses(), buses);
        let mut seen = 0usize;
        let mut total_load = 0.0;
        for bus in 0..buses {
            let projected = assignment.project(&set, bus).unwrap();
            seen += projected.classes().len();
            total_load += projected.offered_load();
            for class in projected.classes() {
                prop_assert_eq!(assignment.bus_of(class.id), bus);
            }
        }
        prop_assert_eq!(seen, set.classes().len());
        prop_assert!((total_load - set.offered_load()).abs() < 1e-9);
    }

    /// LPT balancing: no bus carries more than the lightest bus plus one
    /// largest class (the classical LPT guarantee shape).
    #[test]
    fn balance_is_roughly_even(
        z in 2u32..6,
        per_source in 2usize..4,
        buses in 2usize..4,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let assignment = multibus::balance_by_load(&set, buses);
        let loads: Vec<f64> = (0..buses)
            .map(|b| assignment.project(&set, b).unwrap().offered_load())
            .collect();
        let max_class = set
            .classes()
            .iter()
            .map(|c| c.offered_load())
            .fold(0.0, f64::max);
        let hi = loads.iter().cloned().fold(0.0, f64::max);
        let lo = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(hi <= lo + max_class + 1e-9, "{loads:?}, max class {max_class}");
    }

    /// Splitting over more busses never turns a feasible projection
    /// infeasible: per-bus minimum slack is monotone non-decreasing in the
    /// bus count when classes only ever move apart.
    #[test]
    fn single_bus_feasible_implies_multibus_feasible(
        z in 2u32..5,
        per_source in 1usize..3,
        buses in 2usize..4,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let medium = MediumConfig::ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        let single = feasibility::evaluate(&set, &config, &allocation, &medium).unwrap();
        prop_assume!(single.feasible());
        let assignment = multibus::balance_by_load(&set, buses);
        let reports =
            multibus::evaluate(&set, &assignment, &config, &allocation, &medium).unwrap();
        for report in &reports {
            prop_assert!(
                report.feasible(),
                "splitting a feasible set made a bus infeasible"
            );
        }
    }
}
