//! Property-based tests of the parallel-channel planner: partitions are
//! total and disjoint, balancing is sane and deterministic, and
//! feasibility composes monotonically with channel count.

use ddcr_core::{feasibility, multibus, network, DdcrConfig, StaticAllocation};
use ddcr_sim::{ClassId, MediumConfig, SourceId, Ticks};
use ddcr_traffic::{DensityBound, MessageClass, MessageSet};
use proptest::prelude::*;

fn random_set(z: u32, per_source: usize, seed: u64) -> MessageSet {
    let mut s = seed;
    let mut next = move |range: std::ops::RangeInclusive<u64>| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        range.start() + (s >> 33) % (range.end() - range.start() + 1)
    };
    let mut classes = Vec::new();
    let mut id = 0u32;
    for src in 0..z {
        for _ in 0..per_source {
            classes.push(MessageClass {
                id: ClassId(id),
                name: format!("c{id}"),
                source: SourceId(src),
                bits: next(1_000..=16_000),
                deadline: Ticks(next(500_000..=8_000_000)),
                density: DensityBound::new(next(1..=3), Ticks(next(500_000..=4_000_000)))
                    .unwrap(),
            });
            id += 1;
        }
    }
    MessageSet::new(z, classes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Balancing always produces a total, in-range assignment whose
    /// projections partition the class set exactly.
    #[test]
    fn balance_partitions_exactly(
        z in 2u32..6,
        per_source in 1usize..4,
        channels in 1usize..5,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let assignment = multibus::balance_by_load(&set, channels);
        prop_assert_eq!(assignment.channels(), channels);
        let mut seen = 0usize;
        let mut total_load = 0.0;
        for channel in 0..channels {
            let projected = assignment.project(&set, channel).unwrap();
            seen += projected.classes().len();
            total_load += projected.offered_load();
            for class in projected.classes() {
                prop_assert_eq!(assignment.channel_of(class.id), channel);
            }
        }
        prop_assert_eq!(seen, set.classes().len());
        prop_assert!((total_load - set.offered_load()).abs() < 1e-9);
    }

    /// Balancing is a pure function of the set: repeated invocations
    /// produce identical assignments, and routing a schedule through the
    /// assignment twice yields identical per-channel splits.
    #[test]
    fn balance_is_deterministic(
        z in 2u32..6,
        per_source in 1usize..4,
        channels in 1usize..5,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let first = multibus::balance_by_load(&set, channels);
        let second = multibus::balance_by_load(&set, channels);
        prop_assert_eq!(&first, &second);
    }

    /// LPT balancing: no channel carries more than the lightest channel
    /// plus one largest class (the classical LPT guarantee shape).
    #[test]
    fn balance_is_roughly_even(
        z in 2u32..6,
        per_source in 2usize..4,
        channels in 2usize..4,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let assignment = multibus::balance_by_load(&set, channels);
        let loads: Vec<f64> = (0..channels)
            .map(|c| assignment.project(&set, c).unwrap().offered_load())
            .collect();
        let max_class = set
            .classes()
            .iter()
            .map(|c| c.offered_load())
            .fold(0.0, f64::max);
        let hi = loads.iter().cloned().fold(0.0, f64::max);
        let lo = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(hi <= lo + max_class + 1e-9, "{loads:?}, max class {max_class}");
    }

    /// Splitting over more channels never turns a feasible projection
    /// infeasible: per-channel minimum slack is monotone non-decreasing in
    /// the channel count when classes only ever move apart.
    #[test]
    fn single_channel_feasible_implies_multichannel_feasible(
        z in 2u32..5,
        per_source in 1usize..3,
        channels in 2usize..4,
        seed in any::<u64>(),
    ) {
        let set = random_set(z, per_source, seed);
        let medium = MediumConfig::ethernet();
        let c = network::recommended_class_width(&set, 64, &medium);
        let config = DdcrConfig::for_sources(z, c).unwrap();
        let allocation = StaticAllocation::round_robin(config.static_tree, z).unwrap();
        let single = feasibility::evaluate(&set, &config, &allocation, &medium).unwrap();
        prop_assume!(single.feasible());
        let assignment = multibus::balance_by_load(&set, channels);
        let reports =
            multibus::evaluate(&set, &assignment, &config, &allocation, &medium).unwrap();
        for report in &reports {
            prop_assert!(
                report.feasible(),
                "splitting a feasible set made a channel infeasible"
            );
        }
    }
}
